//! The defender's workflow the paper motivates: evaluate candidate
//! obfuscation placements *without running the attacker on each one*.
//!
//! A trained ICNet screens dozens of candidate placements in milliseconds;
//! the defender then verifies only the most promising candidate with a real
//! attack, and weighs it against its area overhead.
//!
//! ```text
//! cargo run --release -p bench --example obfuscation_sweep
//! ```

use attack::{attack_locked, AttackConfig};
use dataset::{generate, graph_features, DatasetConfig};
use icnet::{
    encode_features, Aggregation, CircuitGraph, FeatureSet, GraphModel, ModelKind, TrainConfig,
};
use obfuscate::{lut_lock, overhead::overhead, select_gates, SchemeKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let scheme = SchemeKind::LutLock { lut_size: 2 };

    // 1. Train a runtime predictor on attack data from one base circuit.
    let mut config = DatasetConfig::quick_demo();
    config.scheme = scheme;
    config.num_instances = 24;
    config.key_range = (1, 8);
    let data = generate(&config)?;
    println!(
        "training data: {} attacked instances on {}",
        data.instances.len(),
        data.circuit.name()
    );

    let graph = CircuitGraph::from_circuit(&data.circuit);
    let op = Arc::new(ModelKind::ICNet.operator(&graph));
    let xs = graph_features(&data.circuit, &data.instances, FeatureSet::All);
    let ys = data.labels();
    let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 16, 16, 9);
    icnet::train(&mut model, &op, &xs, &ys, &TrainConfig::default());

    // 2. Screen 20 candidate placements of 6 key gates each — pure
    //    inference, no SAT attack.
    let candidates = 20;
    let mut best: Option<(u64, f64, Vec<netlist::GateId>)> = None;
    println!("\nscreening {candidates} candidate placements (6 LUTs each):");
    for cand in 0..candidates {
        let mut rng = StdRng::seed_from_u64(1000 + cand);
        let selected = select_gates(&data.circuit, scheme, 6, &mut rng)?;
        let x = encode_features(&data.circuit, &selected, FeatureSet::All);
        let predicted = model.predict(&op, &x);
        if best.as_ref().is_none_or(|(_, p, _)| predicted > *p) {
            best = Some((1000 + cand, predicted, selected));
        }
        println!("  candidate {cand:>2}: predicted ln(runtime) = {predicted:+.3}");
    }
    let (seed, predicted, selected) = best.expect("candidates screened");

    // 3. Verify the winner with a real attack and report the trade-off.
    let mut rng = StdRng::seed_from_u64(seed);
    let selected = {
        // Re-derive the same selection, then lock with it.
        let sel = select_gates(&data.circuit, scheme, 6, &mut rng)?;
        assert_eq!(sel, selected);
        sel
    };
    let locked = lut_lock(&data.circuit, &selected, 2, &mut rng)?;
    let result = attack_locked(&locked, &AttackConfig::default())?;
    let cost = overhead(&locked);
    println!("\nbest candidate (seed {seed}): predicted {predicted:+.3} ln(s)");
    println!(
        "verified by real attack: {:.4} ln(s) ({} DIPs)",
        result
            .runtime
            .seconds(attack::RuntimeMeasure::SolverWork)
            .max(1e-6)
            .ln(),
        result.iterations
    );
    println!("overhead: {cost}");
    Ok(())
}
