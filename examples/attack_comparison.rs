//! Compares the SAT-attack hardness of the three locking families at equal
//! key-gate counts: XOR/XNOR key gates, MUX locking with decoys, and the
//! paper's LUT-based obfuscation.
//!
//! ```text
//! cargo run --release -p bench --example attack_comparison
//! ```

use attack::{attack_locked, AttackConfig, RuntimeMeasure};
use obfuscate::{lock_random, overhead::overhead, SchemeKind};
use std::error::Error;
use synth::GeneratorConfig;

fn main() -> Result<(), Box<dyn Error>> {
    let base = synth::generate(&GeneratorConfig::new("demo", 16, 8, 180).with_seed(3));
    println!("base circuit: {base}");
    println!(
        "\n{:<12} {:>6} {:>9} {:>7} {:>12} {:>12} {:>9}",
        "scheme", "gates", "key bits", "DIPs", "work", "synth sec", "area x"
    );

    let schemes = [
        SchemeKind::XorLock,
        SchemeKind::MuxLock,
        SchemeKind::LutLock { lut_size: 2 },
        SchemeKind::LutLock { lut_size: 4 },
    ];
    for scheme in schemes {
        for gates in [4usize, 8] {
            let locked = lock_random(&base, scheme, gates, 17)?;
            let config = AttackConfig {
                work_budget: Some(200_000_000),
                ..AttackConfig::default()
            };
            let result = attack_locked(&locked, &config)?;
            let verified = result
                .key()
                .map(|k| locked.verify_key(k))
                .transpose()?
                .unwrap_or(false);
            println!(
                "{:<12} {:>6} {:>9} {:>7} {:>12} {:>12.4} {:>9.2}{}",
                scheme.to_string(),
                gates,
                locked.key_len(),
                result.iterations,
                result.runtime.work,
                result.runtime.seconds(RuntimeMeasure::SolverWork),
                overhead(&locked).area_factor(),
                if verified { "" } else { "  (budget)" }
            );
        }
    }
    println!(
        "\nLUT locking buys far more SAT hardness per locked gate than XOR \
         locking — at a much higher area cost (the paper's motivating trade-off)."
    );
    Ok(())
}
