//! Quickstart: lock a circuit, break it with the SAT attack, and train a
//! tiny runtime predictor.
//!
//! ```text
//! cargo run --release -p bench --example quickstart
//! ```

use attack::{attack_locked, AttackConfig, AttackOutcome};
use dataset::{generate, graph_features, DatasetConfig};
use icnet::{Aggregation, CircuitGraph, FeatureSet, GraphModel, ModelKind, TrainConfig};
use obfuscate::{lock_random, SchemeKind};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Take a circuit (the genuine ISCAS-85 c17) and lock three gates
    //    with the paper's LUT-based obfuscation (LUT size 2 here: c17's
    //    NANDs have two inputs).
    let original = netlist::c17();
    println!("original circuit : {original}");
    let locked = lock_random(&original, SchemeKind::LutLock { lut_size: 2 }, 3, 42)?;
    println!("locked circuit   : {}", locked.locked);
    println!("correct key      : {}", locked.key);

    // 2. Run the oracle-guided SAT attack (Subramanyan et al.).
    let result = attack_locked(&locked, &AttackConfig::default())?;
    match &result.outcome {
        AttackOutcome::KeyRecovered(key) => {
            println!(
                "attack recovered a key in {} DIP iterations ({})",
                result.iterations, result.runtime
            );
            println!("functionally correct: {}", locked.verify_key(key)?);
        }
        AttackOutcome::BudgetExceeded => println!("attack hit its budget"),
        AttackOutcome::TimedOut(which) => println!("attack hit its {}", which.describe()),
        AttackOutcome::Cancelled => println!("attack was cancelled"),
        AttackOutcome::MemoryExceeded => println!("attack hit its memory budget"),
    }

    // 3. Generate a small labeled dataset (obfuscate -> attack -> record
    //    runtime) and train ICNet to predict the runtime from the netlist
    //    topology + encryption locations alone.
    let config = DatasetConfig::quick_demo();
    let data = generate(&config)?;
    println!(
        "\ndataset: {} instances on {} ({} gates)",
        data.instances.len(),
        data.circuit.name(),
        data.circuit.num_gates()
    );

    let graph = CircuitGraph::from_circuit(&data.circuit);
    let op = Arc::new(ModelKind::ICNet.operator(&graph));
    let xs = graph_features(&data.circuit, &data.instances, FeatureSet::All);
    let ys = data.labels();
    let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 16, 16, 1);
    let report = icnet::train(&mut model, &op, &xs, &ys, &TrainConfig::default());
    println!(
        "trained ICNet-NN for {} epochs (final train MSE {:.4})",
        report.epochs_run, report.final_loss
    );

    for (i, inst) in data.instances.iter().take(4).enumerate() {
        let pred = model.predict(&op, &xs[i]);
        println!(
            "  instance {i}: {} key gates, actual ln(s) = {:+.2}, predicted = {:+.2}",
            inst.num_selected(),
            inst.log_seconds,
            pred
        );
    }
    Ok(())
}
