//! Parallel, checkpointed dataset generation.
//!
//! Runs the quick-demo sweep three ways — serially, on four workers, and
//! resumed from a checkpoint — and shows that all three produce the same
//! dataset. Usage:
//!
//! ```text
//! cargo run --release --example parallel_generation [-- --trace t.jsonl] [--progress] [--fault-plan <spec>]
//! ```

use bench::cli;
use dataset::{generate, generate_parallel_with, CheckpointLog, DatasetConfig};
use std::time::Instant;

fn main() {
    // The shared CLI plumbing (`--trace` / `--progress` / `--fault-plan` /
    // SIGINT handling) comes from `bench::cli`, same as every binary — the
    // example no longer re-implements flag parsing.
    let opts = cli::Options::from_env();
    opts.init_runtime();

    let mut config = DatasetConfig::quick_demo();
    config.num_instances = 16;

    println!("== serial sweep ==");
    let start = Instant::now();
    let serial = generate(&config).expect("serial generation");
    println!(
        "{} instances in {:.2?}\n",
        serial.instances.len(),
        start.elapsed()
    );

    println!("== 4-worker sweep (no checkpoint) ==");
    let start = Instant::now();
    let (parallel, report) = generate_parallel_with(&config, 4, None).expect("parallel generation");
    println!(
        "{} instances in {:.2?}",
        parallel.instances.len(),
        start.elapsed()
    );
    print!("{}", report.summary());
    assert_eq!(serial, parallel, "worker count must not change the dataset");
    println!("byte-identical to the serial sweep\n");

    println!("== checkpointed sweep, interrupted and resumed ==");
    let path = std::env::temp_dir().join("parallel_generation_example.ckpt");
    let _ = std::fs::remove_file(&path);
    let mut log = CheckpointLog::open(&path).expect("checkpoint opens");
    let (_, report) = generate_parallel_with(&config, 2, Some(&mut log)).expect("first pass");
    println!("first pass: {} attacked", report.attacked());
    drop(log);

    // Simulate a crash that lost the last five records.
    let text = std::fs::read_to_string(&path).unwrap();
    let keep: Vec<&str> = text.lines().take(1 + config.num_instances - 5).collect();
    std::fs::write(&path, format!("{}\n", keep.join("\n"))).unwrap();

    let mut log = CheckpointLog::open(&path).expect("checkpoint reopens");
    println!("after crash: {} instances on record", log.len());
    let start = Instant::now();
    let (resumed, report) = generate_parallel_with(&config, 4, Some(&mut log)).expect("resume");
    println!(
        "resume: {} reused, {} re-attacked in {:.2?}",
        report.reused(),
        report.attacked(),
        start.elapsed()
    );
    assert_eq!(serial, resumed, "resume must reproduce the full sweep");
    println!("byte-identical to the uninterrupted sweep");
    let _ = std::fs::remove_file(&path);

    cli::exit_if_interrupted();
    cli::finish_observability();
}
