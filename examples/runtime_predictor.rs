//! End-to-end runtime prediction: generate a labeled dataset, train ICNet
//! and a spread of classical baselines, and compare held-out MSE — a
//! miniature of the paper's Table I.
//!
//! ```text
//! cargo run --release -p bench --example runtime_predictor
//! ```

use bench::harness::{evaluate_baselines, evaluate_gnn};
use bench::methods::BaselineKind;
use dataset::{generate, train_test_split, DatasetConfig, FlatAggregation};
use icnet::{Aggregation, FeatureSet, ModelKind};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = 32;
    config.key_range = (1, 12);
    let data = generate(&config)?;
    println!(
        "dataset: {} instances on {} ({:.0}% censored)",
        data.instances.len(),
        data.circuit.name(),
        data.censored_fraction() * 100.0
    );

    let split = train_test_split(data.instances.len(), 0.25, 5);
    println!(
        "split: {} train / {} test\n",
        split.train.len(),
        split.test.len()
    );

    println!("{:<12} {:>12}", "method", "test MSE");
    let roster = [
        BaselineKind::Lr,
        BaselineKind::Rr,
        BaselineKind::Lasso,
        BaselineKind::SvrRbf,
        BaselineKind::Omp,
    ];
    for result in evaluate_baselines(
        &data,
        &split,
        &roster,
        FeatureSet::All,
        FlatAggregation::Sum,
    ) {
        println!(
            "{:<12} {:>12}",
            result.method,
            bench::harness::format_mse(result.mse)
        );
    }

    for (kind, agg) in [
        (ModelKind::Gcn, Aggregation::Nn),
        (ModelKind::ChebNet { k: 3 }, Aggregation::Nn),
        (ModelKind::ICNet, Aggregation::Nn),
    ] {
        let (result, model) = evaluate_gnn(&data, &split, kind, agg, FeatureSet::All, 200, 5);
        println!(
            "{:<12} {:>12}",
            result.method,
            bench::harness::format_mse(result.mse)
        );
        if kind == ModelKind::ICNet {
            if let Some(attn) = model.feature_attention() {
                println!(
                    "\nICNet feature attention: gate mask {:.1}% / gate types {:.1}%",
                    attn[0] * 100.0,
                    attn[1..].iter().sum::<f64>() * 100.0
                );
            }
        }
    }
    Ok(())
}
