//! Deployment workflow: train a runtime predictor once, save it to disk,
//! reload it later (e.g. inside an EDA flow) and predict without retraining.
//!
//! ```text
//! cargo run --release -p bench --example model_persistence
//! ```

use dataset::{generate, graph_features, DatasetConfig};
use icnet::{Aggregation, CircuitGraph, FeatureSet, GraphModel, ModelKind, TrainConfig};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // Train.
    let data = generate(&DatasetConfig::quick_demo())?;
    let graph = CircuitGraph::from_circuit(&data.circuit);
    let op = Arc::new(ModelKind::ICNet.operator(&graph));
    let xs = graph_features(&data.circuit, &data.instances, FeatureSet::All);
    let ys = data.labels();
    let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 16, 16, 11);
    let report = icnet::train(&mut model, &op, &xs, &ys, &TrainConfig::default());
    println!(
        "trained {model} in {} epochs (train MSE {:.4})",
        report.epochs_run, report.final_loss
    );

    // Save.
    let path = std::env::temp_dir().join("icnet_demo_model.txt");
    std::fs::write(&path, model.to_text())?;
    println!(
        "saved to {} ({} bytes)",
        path.display(),
        model.to_text().len()
    );

    // Reload in a "fresh process" and verify predictions are identical.
    let text = std::fs::read_to_string(&path)?;
    let reloaded = GraphModel::from_text(&text)?;
    let mut max_diff = 0.0f64;
    for x in &xs {
        let a = model.predict(&op, x);
        let b = reloaded.predict(&op, x);
        max_diff = max_diff.max((a - b).abs());
    }
    println!("max prediction difference after reload: {max_diff:e}");
    assert!(max_diff < 1e-9, "persistence must be lossless");
    if let Some(attn) = reloaded.feature_attention() {
        println!(
            "reloaded feature attention: mask {:.1}% / types {:.1}%",
            attn[0] * 100.0,
            attn[1..].iter().sum::<f64>() * 100.0
        );
    }
    std::fs::remove_file(&path)?;
    Ok(())
}
