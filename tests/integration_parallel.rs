//! Parallel generation and checkpointing, end to end: worker-count
//! invariance, interrupted-sweep resume, and the parallel speedup the
//! pipeline exists for.

use dataset::{generate, generate_parallel, generate_parallel_with, CheckpointLog, DatasetConfig};
use std::path::PathBuf;
use std::time::Instant;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("icnet_integration_parallel");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn quick_demo_is_worker_count_invariant() {
    let config = DatasetConfig::quick_demo();
    let serial = generate(&config).expect("serial sweep");
    for jobs in [1, 2, 4] {
        let parallel = generate_parallel(&config, jobs).expect("parallel sweep");
        assert_eq!(
            serial, parallel,
            "dataset must be byte-identical with {jobs} workers"
        );
    }
}

#[test]
fn interrupted_sweep_resumes_to_the_uninterrupted_result() {
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = 8;
    let n = config.num_instances;
    let k = 3; // records surviving the simulated crash

    let uninterrupted = generate(&config).expect("reference sweep");

    // First run records all n instances...
    let path = tmp("resume.ckpt");
    let mut log = CheckpointLog::open(&path).unwrap();
    let (_, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
    assert_eq!(report.attacked(), n);
    drop(log);

    // ...then the "crash": keep the header and the first k records only.
    let text = std::fs::read_to_string(&path).unwrap();
    let keep: Vec<&str> = text.lines().take(1 + k).collect();
    std::fs::write(&path, format!("{}\n", keep.join("\n"))).unwrap();

    // Resume re-attacks exactly the n - k missing instances, and the final
    // dataset equals the uninterrupted run.
    let mut log = CheckpointLog::open(&path).unwrap();
    assert_eq!(log.len(), k);
    let (resumed, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
    assert_eq!(report.reused(), k);
    assert_eq!(report.attacked(), n - k);
    assert_eq!(resumed, uninterrupted);
    assert_eq!(log.len(), n, "resume completes the log");
}

#[test]
fn checkpointed_and_plain_runs_agree() {
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = 6;
    let path = tmp("plain_vs_ckpt.ckpt");
    let mut log = CheckpointLog::open(&path).unwrap();
    let (with_log, _) = generate_parallel_with(&config, 3, Some(&mut log)).unwrap();
    let (without_log, _) = generate_parallel_with(&config, 3, None).unwrap();
    assert_eq!(with_log, without_log);
}

#[test]
fn four_workers_beat_serial_on_a_quick_demo_scale_sweep() {
    // Enough instances that no single attack dominates the schedule; the
    // acceptance bar is 2x, asserted against the *serial parallel* path so
    // both sides pay identical per-instance costs. The wall-clock assertion
    // only applies where the hardware can express it — on fewer than four
    // cores the run still verifies byte-identity, because a speedup measured
    // against a physically impossible bar is noise, not signal.
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = 24;
    config.key_range = (1, 10);

    let warm = generate_parallel(&config, 1).expect("warmup"); // prime allocator/caches
    let start = Instant::now();
    let serial = generate_parallel(&config, 1).expect("serial sweep");
    let serial_time = start.elapsed();
    assert_eq!(warm, serial);

    let start = Instant::now();
    let parallel = generate_parallel(&config, 4).expect("parallel sweep");
    let parallel_time = start.elapsed();

    assert_eq!(serial, parallel);
    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "4 workers must be at least 2x faster on {cores} cores (serial \
             {serial_time:.2?}, parallel {parallel_time:.2?}, speedup {speedup:.2}x)"
        );
    } else {
        eprintln!(
            "# speedup assertion skipped: {cores} core(s) available \
             (measured {speedup:.2}x; serial {serial_time:.2?}, parallel {parallel_time:.2?})"
        );
    }
}
