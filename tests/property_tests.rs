//! Property-based tests (proptest) over the core data structures and
//! invariants: solver soundness, encoding/simulation agreement, locking
//! correctness, sparse/dense algebra parity, metric ranges, and autodiff
//! gradients.

use proptest::prelude::*;
use sat::{Lit, SolveResult, Solver};
use tensor::{CsrMatrix, Matrix, Tape};

/// Strategy: a random CNF over `nv` variables.
fn cnf_strategy() -> impl Strategy<Value = (usize, Vec<Vec<i64>>)> {
    (2usize..12).prop_flat_map(|nv| {
        let clause = proptest::collection::vec(
            (1i64..=nv as i64).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
            1..4,
        );
        proptest::collection::vec(clause, 1..30).prop_map(move |cs| (nv, cs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any model the solver returns satisfies every clause it was given.
    #[test]
    fn solver_models_satisfy_all_clauses((nv, clauses) in cnf_strategy()) {
        let mut solver = Solver::new();
        solver.new_vars(nv);
        for clause in &clauses {
            solver.add_clause(clause.iter().map(|&l| Lit::from_dimacs(l)));
        }
        if let SolveResult::Sat(model) = solver.solve() {
            for clause in &clauses {
                prop_assert!(
                    clause.iter().any(|&l| model.lit_value(Lit::from_dimacs(l))),
                    "model violates clause {clause:?}"
                );
            }
        }
    }

    /// UNSAT verdicts agree with exhaustive enumeration (small formulas).
    #[test]
    fn solver_unsat_is_confirmed_by_enumeration((nv, clauses) in cnf_strategy()) {
        prop_assume!(nv <= 8);
        let mut solver = Solver::new();
        solver.new_vars(nv);
        for clause in &clauses {
            solver.add_clause(clauses_to_lits(clause));
        }
        let brute_sat = (0u32..(1 << nv)).any(|bits| {
            clauses.iter().all(|clause| {
                clause.iter().any(|&l| {
                    let v = (l.unsigned_abs() - 1) as u32;
                    let val = (bits >> v) & 1 == 1;
                    if l > 0 { val } else { !val }
                })
            })
        });
        match solver.solve() {
            SolveResult::Sat(_) => prop_assert!(brute_sat),
            SolveResult::Unsat => prop_assert!(!brute_sat),
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }
}

fn clauses_to_lits(clause: &[i64]) -> Vec<Lit> {
    clause.iter().map(|&l| Lit::from_dimacs(l)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated circuits always round-trip through the bench format
    /// structurally (ids, kinds, ports).
    #[test]
    fn bench_round_trip_is_identity(seed in 0u64..5000, gates in 5usize..60) {
        let circuit = synth::generate(
            &synth::GeneratorConfig::new("p", 6, 3, gates).with_seed(seed),
        );
        let reparsed = netlist::Circuit::from_bench("p", &circuit.to_bench()).unwrap();
        prop_assert_eq!(circuit, reparsed);
    }

    /// Locked circuits round-trip through the bench format too: key inputs
    /// keep their `keyinput` prefix and survive reparsing for every scheme.
    #[test]
    fn bench_round_trips_locked_circuits(
        seed in 0u64..2000,
        keys in 1usize..5,
        scheme in prop_oneof![
            Just(obfuscate::SchemeKind::XorLock),
            Just(obfuscate::SchemeKind::MuxLock),
            Just(obfuscate::SchemeKind::LutLock { lut_size: 2 }),
            Just(obfuscate::SchemeKind::LutLock { lut_size: 4 }),
            Just(obfuscate::SchemeKind::AntiSat { key_width: 3 }),
        ],
    ) {
        let base = synth::generate(
            &synth::GeneratorConfig::new("p", 8, 4, 80).with_seed(seed),
        );
        let locked = obfuscate::lock_random(&base, scheme, keys, seed).unwrap();
        let text = locked.locked.to_bench();
        let reparsed = netlist::Circuit::from_bench(locked.locked.name(), &text).unwrap();
        // Ids shift (the writer groups all INPUT lines first, the builder
        // interleaves key inputs), so the round trip is functional + textual,
        // not structural: same ports, same text, same behaviour per key.
        prop_assert_eq!(reparsed.keys().len(), locked.key.bits().len());
        prop_assert_eq!(reparsed.inputs().len(), locked.locked.inputs().len());
        prop_assert_eq!(reparsed.outputs().len(), locked.locked.outputs().len());
        prop_assert_eq!(&text, &reparsed.to_bench());
        let words: Vec<u64> = (0..8).map(|i| seed.rotate_left(i * 7) ^ 0xF00D).collect();
        let key_words: Vec<u64> = locked
            .key
            .bits()
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        prop_assert_eq!(
            locked.locked.simulate(&words, &key_words).unwrap(),
            reparsed.simulate(&words, &key_words).unwrap()
        );
    }

    /// Applying a key produces 0-input LUT constants; those must survive the
    /// `LUT 0x..` extension of the format, and the reparsed circuit must
    /// simulate identically to the one that was written.
    #[test]
    fn bench_round_trips_applied_key_circuits(seed in 0u64..2000, keys in 1usize..4) {
        let base = synth::generate(
            &synth::GeneratorConfig::new("p", 7, 3, 60).with_seed(seed),
        );
        let locked = obfuscate::lock_random(
            &base,
            obfuscate::SchemeKind::LutLock { lut_size: 3 },
            keys,
            seed,
        ).unwrap();
        let applied = locked.apply_key(&locked.key).unwrap();
        let reparsed = netlist::Circuit::from_bench(applied.name(), &applied.to_bench()).unwrap();
        prop_assert_eq!(&applied, &reparsed);
        let words: Vec<u64> = (0..7).map(|i| seed.rotate_left(i * 11) ^ 0x5A5A).collect();
        prop_assert_eq!(
            applied.simulate(&words, &[]).unwrap(),
            reparsed.simulate(&words, &[]).unwrap()
        );
    }

    /// Writing is a left inverse of parsing as *text*, not just as structure:
    /// write(parse(write(c))) == write(c), so the format is canonical.
    #[test]
    fn bench_text_is_canonical(seed in 0u64..3000, gates in 5usize..50) {
        let circuit = synth::generate(
            &synth::GeneratorConfig::new("p", 6, 3, gates).with_seed(seed),
        );
        let text = circuit.to_bench();
        let reparsed = netlist::Circuit::from_bench("p", &text).unwrap();
        prop_assert_eq!(text, reparsed.to_bench());
    }

    /// The correct key always restores the original function.
    #[test]
    fn correct_key_always_verifies(seed in 0u64..2000, keys in 1usize..5) {
        let base = synth::generate(
            &synth::GeneratorConfig::new("p", 8, 4, 60).with_seed(seed),
        );
        let locked = obfuscate::lock_random(
            &base,
            obfuscate::SchemeKind::LutLock { lut_size: 3 },
            keys,
            seed,
        ).unwrap();
        prop_assert!(locked.verify_key(&locked.key).unwrap());
    }

    /// Truth tables are consistent between construction and evaluation.
    #[test]
    fn truth_table_from_fn_eval_consistent(bits in any::<u64>(), k in 0usize..=6) {
        let table = netlist::TruthTable::new(k, bits).unwrap();
        let rebuilt = netlist::TruthTable::from_fn(k, |vals| table.eval(vals)).unwrap();
        prop_assert_eq!(table, rebuilt);
    }

    /// Word-parallel simulation equals 64 single-pattern simulations.
    #[test]
    fn word_simulation_matches_scalar(seed in 0u64..1000) {
        let circuit = synth::generate(
            &synth::GeneratorConfig::new("p", 5, 3, 40).with_seed(seed),
        );
        let words: Vec<u64> = (0..5).map(|i| seed.rotate_left(i * 13) ^ 0xABCD).collect();
        let outs = circuit.simulate(&words, &[]).unwrap();
        for p in [0usize, 17, 63] {
            let bits: Vec<bool> = words.iter().map(|w| (w >> p) & 1 == 1).collect();
            let scalar = circuit.simulate_bool(&bits, &[]).unwrap();
            for (o, w) in scalar.iter().zip(&outs) {
                prop_assert_eq!(*o, (w >> p) & 1 == 1);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sparse-dense product agrees with densified matmul.
    #[test]
    fn spmm_matches_dense(
        triplets in proptest::collection::vec((0usize..8, 0usize..8, -4i32..=4), 0..24),
        cols in 1usize..5,
    ) {
        let trip: Vec<(usize, usize, f64)> =
            triplets.iter().map(|&(r, c, v)| (r, c, v as f64)).collect();
        let sparse = CsrMatrix::from_triplets(8, 8, &trip);
        let dense = Matrix::from_fn(8, cols, |r, c| ((r * 3 + c * 5) % 7) as f64 - 3.0);
        let expect = sparse.to_dense().matmul(&dense);
        prop_assert_eq!(sparse.spmm(&dense), expect);
        // Transpose parity too.
        let expect_t = sparse.to_dense().transpose();
        prop_assert_eq!(sparse.transpose().to_dense(), expect_t);
    }

    /// Correlations always land in [-1, 1].
    #[test]
    fn correlations_are_bounded(
        a in proptest::collection::vec(-100.0f64..100.0, 3..30),
    ) {
        let b: Vec<f64> = a.iter().map(|&x| (x * 1.7).sin() * 10.0 + x * 0.2).collect();
        let p = regress::metrics::pearson(&a, &b);
        let s = regress::metrics::spearman(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&p), "pearson {p}");
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s), "spearman {s}");
    }

    /// Autodiff matmul gradients match central finite differences.
    #[test]
    fn autodiff_matches_finite_difference(
        vals in proptest::collection::vec(-2.0f64..2.0, 6),
    ) {
        let w = Matrix::from_vec(3, 2, vals);
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0]]);
        let forward = |w: &Matrix| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let wv = tape.leaf(w.clone());
            let h = tape.matmul(xv, wv);
            let r = tape.relu(h);
            let sq = tape.hadamard(r, r);
            let loss = tape.sum_all(sq);
            (tape.value(loss).get(0, 0), tape, wv, loss)
        };
        let (_, mut tape, wv, loss) = forward(&w);
        tape.backward(loss);
        let grad = tape.grad(wv).clone();
        let eps = 1e-5;
        for r in 0..3 {
            for c in 0..2 {
                // Skip non-differentiable kinks of the ReLU.
                let pre = x.matmul(&w);
                if pre.as_slice().iter().any(|v| v.abs() < 1e-3) {
                    continue;
                }
                let mut wp = w.clone();
                wp.set(r, c, w.get(r, c) + eps);
                let mut wm = w.clone();
                wm.set(r, c, w.get(r, c) - eps);
                let numeric = (forward(&wp).0 - forward(&wm).0) / (2.0 * eps);
                prop_assert!(
                    (grad.get(r, c) - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                    "grad ({r},{c}): {} vs {}",
                    grad.get(r, c),
                    numeric
                );
            }
        }
    }

    /// The netlist optimizer never changes circuit function.
    #[test]
    fn optimizer_preserves_function(seed in 0u64..2000, keys in 1usize..4) {
        let base = synth::generate(
            &synth::GeneratorConfig::new("p", 6, 3, 40).with_seed(seed),
        );
        // Locked + key applied: rich in constants and MUX trees.
        let locked = obfuscate::lock_random(
            &base,
            obfuscate::SchemeKind::LutLock { lut_size: 3 },
            keys,
            seed,
        ).unwrap();
        let applied = locked.apply_key(&locked.key).unwrap();
        let (optimized, stats) = netlist::opt::optimize(&applied).unwrap();
        prop_assert!(applied.equiv_random(&optimized, &[], &[], 8, seed).unwrap());
        prop_assert!(stats.gates_after <= stats.gates_before);
    }

    /// Keys round-trip through hex for arbitrary lengths.
    #[test]
    fn key_hex_round_trip(bits in proptest::collection::vec(any::<bool>(), 0..128)) {
        let key = obfuscate::Key::from_bits(bits.clone());
        let parsed = obfuscate::Key::from_hex(&key.to_hex(), bits.len()).unwrap();
        prop_assert_eq!(key, parsed);
    }
}

// ---------------------------------------------------------------------------
// Anti-SAT correctness: SAT-certified equivalence under the right key, a
// guaranteed observable flip under a wrong one.

use cnf::ClauseSink as _;

/// Encodes an equivalence miter between `original` and `locked` under the
/// fixed `key`: both circuits share their primary-input variables, the key
/// variables are pinned to `key`, and the returned literal asserts "some
/// output pair disagrees". UNSAT with that assumption is a proof of
/// functional equivalence over *all* 2^n inputs — strictly stronger than any
/// sampled simulation check.
fn equivalence_diff_lit(
    original: &netlist::Circuit,
    locked: &netlist::Circuit,
    key: &[bool],
    solver: &mut Solver,
) -> (Lit, Vec<sat::Var>) {
    let inputs: Vec<sat::Var> = (0..original.inputs().len())
        .map(|_| solver.fresh_var())
        .collect();
    let enc_orig = cnf::encode_circuit_with(
        original,
        solver,
        cnf::EncodeOptions {
            input_vars: Some(inputs.clone()),
            key_vars: None,
        },
    );
    let key_vars: Vec<sat::Var> = (0..locked.keys().len())
        .map(|_| solver.fresh_var())
        .collect();
    let enc_lock = cnf::encode_circuit_with(
        locked,
        solver,
        cnf::EncodeOptions {
            input_vars: Some(inputs.clone()),
            key_vars: Some(key_vars.clone()),
        },
    );
    cnf::fix_vars(solver, &key_vars, key);
    let diffs: Vec<Lit> = enc_orig
        .output_vars(original)
        .iter()
        .zip(&enc_lock.output_vars(locked))
        .map(|(&a, &b)| Lit::positive(cnf::encode_xor(solver, Lit::positive(a), Lit::positive(b))))
        .collect();
    (Lit::positive(cnf::encode_or(solver, &diffs)), inputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under the correct key, the Anti-SAT-locked circuit is miter-UNSAT
    /// equivalent to the original: no input whatsoever distinguishes them.
    #[test]
    fn anti_sat_correct_key_is_miter_unsat_equivalent(
        seed in 0u64..2000,
        key_width in 2usize..6,
        blocks in 1usize..3,
    ) {
        let base = synth::generate(
            &synth::GeneratorConfig::new("p", 8, 4, 60).with_seed(seed),
        );
        let locked = obfuscate::lock_random(
            &base,
            obfuscate::SchemeKind::AntiSat { key_width },
            blocks,
            seed,
        ).unwrap();
        let mut solver = Solver::new();
        let (diff, _) = equivalence_diff_lit(
            &locked.original,
            &locked.locked,
            locked.key.bits(),
            &mut solver,
        );
        prop_assert!(
            matches!(solver.solve_with_assumptions(&[diff]), SolveResult::Unsat),
            "correct key must be UNSAT-equivalent"
        );
    }

    /// A key whose K1/K2 halves disagree in one bit flips at least one
    /// output for some input: the equivalence miter is SAT. (Halves that
    /// *agree* on a different alpha are functionally correct by design —
    /// that is the scheme's 2^w-correct-keys property — so the wrong key
    /// here is always a disagreeing-halves one.)
    #[test]
    fn anti_sat_disagreeing_halves_flip_an_output(
        seed in 0u64..2000,
        key_width in 2usize..6,
        flip in 0usize..6,
    ) {
        let base = synth::generate(
            &synth::GeneratorConfig::new("p", 8, 4, 60).with_seed(seed),
        );
        let locked = obfuscate::lock_random(
            &base,
            obfuscate::SchemeKind::AntiSat { key_width },
            1,
            seed,
        ).unwrap();
        // Flip one bit of the K1 half only: K1 != K2 breaks Y ≡ 0.
        let mut bits = locked.key.bits().to_vec();
        let j = flip % key_width;
        bits[j] = !bits[j];
        let mut solver = Solver::new();
        let (diff, input_vars) =
            equivalence_diff_lit(&locked.original, &locked.locked, &bits, &mut solver);
        match solver.solve_with_assumptions(&[diff]) {
            SolveResult::Sat(model) => {
                // The model is a concrete witness: replay it through both
                // simulators and confirm the disagreement is real.
                let pattern: Vec<bool> = input_vars.iter().map(|&v| model.value(v)).collect();
                let want = locked.original.simulate_bool(&pattern, &[]).unwrap();
                let got = locked.locked.simulate_bool(&pattern, &bits).unwrap();
                prop_assert_ne!(want, got, "SAT witness must replay as a real flip");
            }
            SolveResult::Unsat => prop_assert!(false, "disagreeing halves must be detectable"),
            other => prop_assert!(false, "unexpected solve result: {other:?}"),
        }
        prop_assert!(
            !locked.verify_key(&obfuscate::Key::from_bits(bits)).unwrap(),
            "verify_key must reject a disagreeing-halves key"
        );
    }
}

// ---------------------------------------------------------------------------
// Checkpoint-log robustness: corruption is detected, quarantine is replayed.

use dataset::{CheckpointLog, DatasetError, Instance};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh temp path per proptest case, so shrinking never reuses a file.
fn ckpt_tmp() -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("icnet_property_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "case_{}_{}.ckpt",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Writes a small, valid checkpoint log and returns its path.
fn seeded_checkpoint() -> std::path::PathBuf {
    let path = ckpt_tmp();
    let mut log = CheckpointLog::open(&path).unwrap();
    for i in 0..3usize {
        log.record(
            0xA0 + i as u64,
            i,
            &Instance {
                selected: vec![netlist::GateId::from_index(i)],
                key_bits: i + 1,
                iterations: 2 * i,
                work: 1000 + i as u64,
                seconds: 0.25,
                log_seconds: 0.25f64.ln(),
                censored: false,
            },
        )
        .unwrap();
    }
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-byte substitution inside a checkpoint record is detected
    /// at reopen — never silently deserialized into a bogus label.
    #[test]
    fn corrupted_checkpoint_byte_is_detected(pos in 0usize..10_000, replacement in 33u8..127) {
        let path = seeded_checkpoint();
        let text = std::fs::read_to_string(&path).unwrap();
        let header_end = text.find('\n').unwrap();
        // Candidate positions: every byte of every record line (the header
        // has its own check; newlines would change the line structure).
        let candidates: Vec<usize> = (header_end + 1..text.len())
            .filter(|&i| text.as_bytes()[i] != b'\n')
            .collect();
        let target = candidates[pos % candidates.len()];
        let mut bytes = text.into_bytes();
        prop_assume!(bytes[target] != replacement);
        bytes[target] = replacement;
        std::fs::write(&path, bytes).unwrap();
        let reopened = CheckpointLog::open(&path);
        match &reopened {
            Err(DatasetError::Checkpoint { line, .. }) => prop_assert!(*line >= 2),
            other => prop_assert!(false, "corruption at byte {target} not detected: {other:?}"),
        }
    }

    /// A garbage line spliced into the middle of the log is reported as
    /// corruption, not skipped or misparsed.
    #[test]
    fn garbage_checkpoint_line_is_detected(
        garbage in proptest::collection::vec(33u8..127, 1..30),
        at in 0usize..3,
    ) {
        let path = seeded_checkpoint();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let line = String::from_utf8(garbage).unwrap();
        lines.insert(1 + at.min(lines.len() - 1), line);
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        prop_assert!(
            matches!(
                CheckpointLog::open(&path),
                Err(DatasetError::Checkpoint { .. })
            ),
            "garbage line accepted"
        );
    }

    /// After a sweep quarantines some instances, a resumed sweep skips
    /// exactly those instances: nothing is re-attacked, every healthy label
    /// is reused, and the replayed quarantine set matches the sick set.
    #[test]
    fn resume_skips_exactly_the_quarantined_instances(
        sick in proptest::collection::vec(0usize..6, 0..4),
    ) {
        let mut sick: Vec<usize> = sick;
        sick.sort_unstable();
        sick.dedup();
        let mut config = dataset::DatasetConfig::quick_demo();
        config.num_instances = 6;
        let bad = sick.clone();
        config.attack_hook = Some(std::sync::Arc::new(move |index, locked, cfg| {
            if bad.contains(&index) {
                Err(attack::AttackError::OracleInconsistent)
            } else {
                attack::attack_locked(locked, cfg)
            }
        }));
        let path = ckpt_tmp();

        let mut log = CheckpointLog::open(&path).unwrap();
        let (first, report) =
            dataset::generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
        prop_assert_eq!(report.attacked(), 6 - sick.len());
        let found: Vec<usize> = report.failures.iter().map(|f| f.index).collect();
        prop_assert_eq!(&found, &sick);
        drop(log);

        let mut log = CheckpointLog::open(&path).unwrap();
        prop_assert_eq!(log.num_quarantined(), sick.len());
        let (second, report) =
            dataset::generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
        prop_assert_eq!(report.attacked(), 0);
        prop_assert_eq!(report.reused(), 6 - sick.len());
        let replayed: Vec<usize> = report.failures.iter().map(|f| f.index).collect();
        prop_assert_eq!(&replayed, &sick);
        prop_assert!(report.failures.iter().all(|f| f.reused));
        prop_assert_eq!(first, second);
    }
}

/// A crash (or an injected `checkpoint.append` fault) can truncate the
/// append-only log after *any* byte. Exhaustively, every prefix must reopen
/// silently — keeping exactly the records whose lines survived complete —
/// and stay appendable; torn tails (including a torn header, which once
/// left the next open failing loudly) are dropped, never misparsed.
#[test]
fn every_truncation_offset_recovers_the_intact_prefix() {
    let full = seeded_checkpoint();
    let bytes = std::fs::read(&full).unwrap();
    let newlines: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| (b == b'\n').then_some(i))
        .collect();
    let header_end = newlines[0];
    for k in 0..=bytes.len() {
        let path = ckpt_tmp();
        std::fs::write(&path, &bytes[..k]).unwrap();
        let log = CheckpointLog::open(&path)
            .unwrap_or_else(|e| panic!("offset {k}: truncation must recover silently: {e}"));
        let expected = if k <= header_end {
            0 // torn header: the log restarts fresh
        } else {
            newlines.iter().skip(1).filter(|&&n| n < k).count()
        };
        assert_eq!(log.len(), expected, "offset {k}: surviving records");
        drop(log);
        // Recovery must leave a log that accepts appends and then reopens
        // cleanly — i.e. the truncated tail was physically removed, not
        // left to corrupt the next record.
        let mut log = CheckpointLog::open(&path).unwrap();
        log.record(
            0xFFFF,
            9,
            &Instance {
                selected: vec![netlist::GateId::from_index(9)],
                key_bits: 9,
                iterations: 1,
                work: 42,
                seconds: 0.125,
                log_seconds: 0.125f64.ln(),
                censored: false,
            },
        )
        .unwrap();
        drop(log);
        let reopened = CheckpointLog::open(&path)
            .unwrap_or_else(|e| panic!("offset {k}: append after recovery broke the log: {e}"));
        assert_eq!(reopened.len(), expected + 1, "offset {k}: appended record");
        let _ = std::fs::remove_file(&path);
    }
}
