//! Property-based tests (proptest) over the core data structures and
//! invariants: solver soundness, encoding/simulation agreement, locking
//! correctness, sparse/dense algebra parity, metric ranges, and autodiff
//! gradients.

use proptest::prelude::*;
use sat::{Lit, SolveResult, Solver};
use tensor::{CsrMatrix, Matrix, Tape};

/// Strategy: a random CNF over `nv` variables.
fn cnf_strategy() -> impl Strategy<Value = (usize, Vec<Vec<i64>>)> {
    (2usize..12).prop_flat_map(|nv| {
        let clause = proptest::collection::vec(
            (1i64..=nv as i64).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
            1..4,
        );
        proptest::collection::vec(clause, 1..30).prop_map(move |cs| (nv, cs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any model the solver returns satisfies every clause it was given.
    #[test]
    fn solver_models_satisfy_all_clauses((nv, clauses) in cnf_strategy()) {
        let mut solver = Solver::new();
        solver.new_vars(nv);
        for clause in &clauses {
            solver.add_clause(clause.iter().map(|&l| Lit::from_dimacs(l)));
        }
        if let SolveResult::Sat(model) = solver.solve() {
            for clause in &clauses {
                prop_assert!(
                    clause.iter().any(|&l| model.lit_value(Lit::from_dimacs(l))),
                    "model violates clause {clause:?}"
                );
            }
        }
    }

    /// UNSAT verdicts agree with exhaustive enumeration (small formulas).
    #[test]
    fn solver_unsat_is_confirmed_by_enumeration((nv, clauses) in cnf_strategy()) {
        prop_assume!(nv <= 8);
        let mut solver = Solver::new();
        solver.new_vars(nv);
        for clause in &clauses {
            solver.add_clause(clauses_to_lits(clause));
        }
        let brute_sat = (0u32..(1 << nv)).any(|bits| {
            clauses.iter().all(|clause| {
                clause.iter().any(|&l| {
                    let v = (l.unsigned_abs() - 1) as u32;
                    let val = (bits >> v) & 1 == 1;
                    if l > 0 { val } else { !val }
                })
            })
        });
        match solver.solve() {
            SolveResult::Sat(_) => prop_assert!(brute_sat),
            SolveResult::Unsat => prop_assert!(!brute_sat),
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }
}

fn clauses_to_lits(clause: &[i64]) -> Vec<Lit> {
    clause.iter().map(|&l| Lit::from_dimacs(l)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated circuits always round-trip through the bench format
    /// structurally (ids, kinds, ports).
    #[test]
    fn bench_round_trip_is_identity(seed in 0u64..5000, gates in 5usize..60) {
        let circuit = synth::generate(
            &synth::GeneratorConfig::new("p", 6, 3, gates).with_seed(seed),
        );
        let reparsed = netlist::Circuit::from_bench("p", &circuit.to_bench()).unwrap();
        prop_assert_eq!(circuit, reparsed);
    }

    /// Locked circuits round-trip through the bench format too: key inputs
    /// keep their `keyinput` prefix and survive reparsing for every scheme.
    #[test]
    fn bench_round_trips_locked_circuits(
        seed in 0u64..2000,
        keys in 1usize..5,
        scheme in prop_oneof![
            Just(obfuscate::SchemeKind::XorLock),
            Just(obfuscate::SchemeKind::MuxLock),
            Just(obfuscate::SchemeKind::LutLock { lut_size: 2 }),
            Just(obfuscate::SchemeKind::LutLock { lut_size: 4 }),
        ],
    ) {
        let base = synth::generate(
            &synth::GeneratorConfig::new("p", 8, 4, 80).with_seed(seed),
        );
        let locked = obfuscate::lock_random(&base, scheme, keys, seed).unwrap();
        let text = locked.locked.to_bench();
        let reparsed = netlist::Circuit::from_bench(locked.locked.name(), &text).unwrap();
        // Ids shift (the writer groups all INPUT lines first, the builder
        // interleaves key inputs), so the round trip is functional + textual,
        // not structural: same ports, same text, same behaviour per key.
        prop_assert_eq!(reparsed.keys().len(), locked.key.bits().len());
        prop_assert_eq!(reparsed.inputs().len(), locked.locked.inputs().len());
        prop_assert_eq!(reparsed.outputs().len(), locked.locked.outputs().len());
        prop_assert_eq!(&text, &reparsed.to_bench());
        let words: Vec<u64> = (0..8).map(|i| seed.rotate_left(i * 7) ^ 0xF00D).collect();
        let key_words: Vec<u64> = locked
            .key
            .bits()
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        prop_assert_eq!(
            locked.locked.simulate(&words, &key_words).unwrap(),
            reparsed.simulate(&words, &key_words).unwrap()
        );
    }

    /// Applying a key produces 0-input LUT constants; those must survive the
    /// `LUT 0x..` extension of the format, and the reparsed circuit must
    /// simulate identically to the one that was written.
    #[test]
    fn bench_round_trips_applied_key_circuits(seed in 0u64..2000, keys in 1usize..4) {
        let base = synth::generate(
            &synth::GeneratorConfig::new("p", 7, 3, 60).with_seed(seed),
        );
        let locked = obfuscate::lock_random(
            &base,
            obfuscate::SchemeKind::LutLock { lut_size: 3 },
            keys,
            seed,
        ).unwrap();
        let applied = locked.apply_key(&locked.key).unwrap();
        let reparsed = netlist::Circuit::from_bench(applied.name(), &applied.to_bench()).unwrap();
        prop_assert_eq!(&applied, &reparsed);
        let words: Vec<u64> = (0..7).map(|i| seed.rotate_left(i * 11) ^ 0x5A5A).collect();
        prop_assert_eq!(
            applied.simulate(&words, &[]).unwrap(),
            reparsed.simulate(&words, &[]).unwrap()
        );
    }

    /// Writing is a left inverse of parsing as *text*, not just as structure:
    /// write(parse(write(c))) == write(c), so the format is canonical.
    #[test]
    fn bench_text_is_canonical(seed in 0u64..3000, gates in 5usize..50) {
        let circuit = synth::generate(
            &synth::GeneratorConfig::new("p", 6, 3, gates).with_seed(seed),
        );
        let text = circuit.to_bench();
        let reparsed = netlist::Circuit::from_bench("p", &text).unwrap();
        prop_assert_eq!(text, reparsed.to_bench());
    }

    /// The correct key always restores the original function.
    #[test]
    fn correct_key_always_verifies(seed in 0u64..2000, keys in 1usize..5) {
        let base = synth::generate(
            &synth::GeneratorConfig::new("p", 8, 4, 60).with_seed(seed),
        );
        let locked = obfuscate::lock_random(
            &base,
            obfuscate::SchemeKind::LutLock { lut_size: 3 },
            keys,
            seed,
        ).unwrap();
        prop_assert!(locked.verify_key(&locked.key).unwrap());
    }

    /// Truth tables are consistent between construction and evaluation.
    #[test]
    fn truth_table_from_fn_eval_consistent(bits in any::<u64>(), k in 0usize..=6) {
        let table = netlist::TruthTable::new(k, bits).unwrap();
        let rebuilt = netlist::TruthTable::from_fn(k, |vals| table.eval(vals)).unwrap();
        prop_assert_eq!(table, rebuilt);
    }

    /// Word-parallel simulation equals 64 single-pattern simulations.
    #[test]
    fn word_simulation_matches_scalar(seed in 0u64..1000) {
        let circuit = synth::generate(
            &synth::GeneratorConfig::new("p", 5, 3, 40).with_seed(seed),
        );
        let words: Vec<u64> = (0..5).map(|i| seed.rotate_left(i * 13) ^ 0xABCD).collect();
        let outs = circuit.simulate(&words, &[]).unwrap();
        for p in [0usize, 17, 63] {
            let bits: Vec<bool> = words.iter().map(|w| (w >> p) & 1 == 1).collect();
            let scalar = circuit.simulate_bool(&bits, &[]).unwrap();
            for (o, w) in scalar.iter().zip(&outs) {
                prop_assert_eq!(*o, (w >> p) & 1 == 1);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sparse-dense product agrees with densified matmul.
    #[test]
    fn spmm_matches_dense(
        triplets in proptest::collection::vec((0usize..8, 0usize..8, -4i32..=4), 0..24),
        cols in 1usize..5,
    ) {
        let trip: Vec<(usize, usize, f64)> =
            triplets.iter().map(|&(r, c, v)| (r, c, v as f64)).collect();
        let sparse = CsrMatrix::from_triplets(8, 8, &trip);
        let dense = Matrix::from_fn(8, cols, |r, c| ((r * 3 + c * 5) % 7) as f64 - 3.0);
        let expect = sparse.to_dense().matmul(&dense);
        prop_assert_eq!(sparse.spmm(&dense), expect);
        // Transpose parity too.
        let expect_t = sparse.to_dense().transpose();
        prop_assert_eq!(sparse.transpose().to_dense(), expect_t);
    }

    /// Correlations always land in [-1, 1].
    #[test]
    fn correlations_are_bounded(
        a in proptest::collection::vec(-100.0f64..100.0, 3..30),
    ) {
        let b: Vec<f64> = a.iter().map(|&x| (x * 1.7).sin() * 10.0 + x * 0.2).collect();
        let p = regress::metrics::pearson(&a, &b);
        let s = regress::metrics::spearman(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&p), "pearson {p}");
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s), "spearman {s}");
    }

    /// Autodiff matmul gradients match central finite differences.
    #[test]
    fn autodiff_matches_finite_difference(
        vals in proptest::collection::vec(-2.0f64..2.0, 6),
    ) {
        let w = Matrix::from_vec(3, 2, vals);
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0]]);
        let forward = |w: &Matrix| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let wv = tape.leaf(w.clone());
            let h = tape.matmul(xv, wv);
            let r = tape.relu(h);
            let sq = tape.hadamard(r, r);
            let loss = tape.sum_all(sq);
            (tape.value(loss).get(0, 0), tape, wv, loss)
        };
        let (_, mut tape, wv, loss) = forward(&w);
        tape.backward(loss);
        let grad = tape.grad(wv).clone();
        let eps = 1e-5;
        for r in 0..3 {
            for c in 0..2 {
                // Skip non-differentiable kinks of the ReLU.
                let pre = x.matmul(&w);
                if pre.as_slice().iter().any(|v| v.abs() < 1e-3) {
                    continue;
                }
                let mut wp = w.clone();
                wp.set(r, c, w.get(r, c) + eps);
                let mut wm = w.clone();
                wm.set(r, c, w.get(r, c) - eps);
                let numeric = (forward(&wp).0 - forward(&wm).0) / (2.0 * eps);
                prop_assert!(
                    (grad.get(r, c) - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                    "grad ({r},{c}): {} vs {}",
                    grad.get(r, c),
                    numeric
                );
            }
        }
    }

    /// The netlist optimizer never changes circuit function.
    #[test]
    fn optimizer_preserves_function(seed in 0u64..2000, keys in 1usize..4) {
        let base = synth::generate(
            &synth::GeneratorConfig::new("p", 6, 3, 40).with_seed(seed),
        );
        // Locked + key applied: rich in constants and MUX trees.
        let locked = obfuscate::lock_random(
            &base,
            obfuscate::SchemeKind::LutLock { lut_size: 3 },
            keys,
            seed,
        ).unwrap();
        let applied = locked.apply_key(&locked.key).unwrap();
        let (optimized, stats) = netlist::opt::optimize(&applied).unwrap();
        prop_assert!(applied.equiv_random(&optimized, &[], &[], 8, seed).unwrap());
        prop_assert!(stats.gates_after <= stats.gates_before);
    }

    /// Keys round-trip through hex for arbitrary lengths.
    #[test]
    fn key_hex_round_trip(bits in proptest::collection::vec(any::<bool>(), 0..128)) {
        let key = obfuscate::Key::from_bits(bits.clone());
        let parsed = obfuscate::Key::from_hex(&key.to_hex(), bits.len()).unwrap();
        prop_assert_eq!(key, parsed);
    }
}
