//! Fuzz-hardening of the `.bench` netlist parser: whatever bytes arrive —
//! random garbage, bench-flavoured token soup, or a valid file that was
//! truncated/spliced in flight — `parse_bench` must return a typed
//! [`netlist::NetlistError`] or a valid circuit, and never panic or hang.
//!
//! This is the parser the prediction service feeds straight off a socket
//! (`crates/serve`), so "attacker-controlled input" is its normal diet, not
//! a corner case.

use netlist::{parse_bench, Circuit};
use proptest::prelude::*;

/// A small but representative valid netlist: plain gates, a key input, the
/// LUT extension, comments — every syntactic feature the writer emits.
const SEED_TEXT: &str = "\
# seed circuit
INPUT(a)
INPUT(b)
INPUT(keyinput0)
OUTPUT(y)
OUTPUT(z)
w = NAND(a, b)
v = XOR(w, keyinput0)  # locked
y = LUT 0x8 (v, a)
z = NOT(v)
";

/// If parsing succeeds, the circuit must uphold its structural invariants;
/// if it fails, the error must be a typed variant (guaranteed by the return
/// type). Either way: no panic, no hang.
fn parse_is_total(text: &str) {
    if let Ok(circuit) = parse_bench("fuzz", text) {
        // Light sanity: every output resolves and the gate count is
        // consistent (exercises the accessors on whatever parsed).
        for &out in circuit.outputs() {
            let _ = circuit.gate(out).name();
        }
        assert!(circuit.num_gates() >= circuit.outputs().len().min(circuit.num_gates()));
        // A parsed circuit must also re-serialize and re-parse.
        let text2 = circuit.to_bench();
        let again = Circuit::from_bench("fuzz2", &text2).expect("writer output parses");
        assert_eq!(again.num_gates(), circuit.num_gates());
    }
}

fn garbage_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..512)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Bench-flavoured token soup: characters weighted toward the grammar so
/// mutations reach deep parser states (directives, `=`, parens, hex, LUT)
/// instead of dying at the first unrecognized line. Multi-byte characters
/// are included deliberately — a byte-indexing bug turns them into panics.
fn benchish_strategy() -> impl Strategy<Value = String> {
    let pool: Vec<char> = "INPUTOUTLANDXORMUXBF=(),#\n\t 0123456789xabyz_\u{c0}\u{20ac}\u{7f}"
        .chars()
        .collect();
    let n = pool.len();
    proptest::collection::vec(0usize..n, 0..256)
        .prop_map(move |picks| picks.into_iter().map(|i| pool[i]).collect())
}

/// Truncate the seed file at an arbitrary char boundary, then splice a few
/// arbitrary bytes at an arbitrary position — the shape of torn uploads and
/// bit rot.
fn mutated_seed_strategy() -> impl Strategy<Value = String> {
    (
        0usize..=SEED_TEXT.len(),
        0usize..=SEED_TEXT.len(),
        proptest::collection::vec(any::<u8>(), 0..8),
    )
        .prop_map(|(cut, splice_at, splice)| {
            let mut cut = cut;
            while !SEED_TEXT.is_char_boundary(cut) {
                cut -= 1;
            }
            let mut text = SEED_TEXT[..cut].to_owned();
            let at = splice_at.min(text.len());
            let mut at = at;
            while !text.is_char_boundary(at) {
                at -= 1;
            }
            let tail = text.split_off(at);
            text.push_str(&String::from_utf8_lossy(&splice));
            text.push_str(&tail);
            text
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn random_garbage_never_panics(text in garbage_strategy()) {
        parse_is_total(&text);
    }

    #[test]
    fn bench_flavoured_soup_never_panics(text in benchish_strategy()) {
        parse_is_total(&text);
    }

    #[test]
    fn mutated_valid_files_never_panic(text in mutated_seed_strategy()) {
        parse_is_total(&text);
    }
}

#[test]
fn seed_text_parses() {
    let c = parse_bench("seed", SEED_TEXT).expect("seed netlist is valid");
    assert_eq!(c.outputs().len(), 2);
    assert_eq!(c.keys().len(), 1);
}

/// The regression that motivated the hardening: a directive-length prefix
/// falling inside a multi-byte character used to slice at a non-boundary
/// and panic. These inputs must now be ordinary parse errors.
#[test]
fn multibyte_directives_are_typed_errors() {
    for text in [
        "\u{c0}\u{c0}\u{c0}\u{c0}\u{c0}(x)\n",
        "\u{20ac}NPUT(a)\n",
        "INPUT(\u{c0})\nOUTPUT(\u{c0})\n",
        "\u{c0} = AND(a, b)\n",
        "IN\u{20ac}UT(a)\n",
    ] {
        let _ = parse_bench("mb", text);
    }
    // And a fully valid non-ASCII signal name still works.
    let ok = parse_bench("mb", "INPUT(\u{c0})\nOUTPUT(\u{c0})\n");
    assert!(ok.is_ok(), "non-ASCII signal names are legal: {ok:?}");
}
