//! Crash-safe training: end-of-epoch checkpoints, cooperative interruption
//! at epoch boundaries, and **bit-identical** resume — an interrupted run
//! continued from its checkpoint must finish with exactly the parameters an
//! uninterrupted run produces.

use attack::CancelToken;
use icnet::{
    encode_features, train_with, Aggregation, CircuitGraph, FeatureSet, GraphModel, ModelKind,
    TrainCheckpointSpec, TrainConfig, TrainControl,
};
use std::sync::{Arc, Mutex};
use tensor::Matrix;

/// The faults registry is process-global; tests that arm a plan must not
/// overlap.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Disarms the fault plan when a test exits, pass or panic.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        faults::disarm();
    }
}

fn ckpt_path(name: &str) -> String {
    let dir = std::env::temp_dir().join("icnet_integration_train_resume");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}_{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path.display().to_string()
}

/// A tiny c17 training problem: six single-gate encryption masks with
/// distinct synthetic runtimes.
fn setup() -> (Arc<tensor::CsrMatrix>, Vec<Matrix>, Vec<f64>) {
    let circuit = netlist::c17();
    let graph = CircuitGraph::from_circuit(&circuit);
    let op = Arc::new(ModelKind::ICNet.operator(&graph));
    let xs: Vec<Matrix> = (0..6)
        .map(|i| encode_features(&circuit, &[netlist::GateId::from_index(i)], FeatureSet::All))
        .collect();
    let ys: Vec<f64> = (0..6).map(|i| 0.25 + 0.3 * i as f64).collect();
    (op, xs, ys)
}

fn fresh_model() -> GraphModel {
    GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 8, 1)
}

/// `tol: 0` + huge patience: the convergence test can never trigger, so a
/// run deterministically spends all `max_epochs` epochs.
fn config(max_epochs: usize) -> TrainConfig {
    TrainConfig {
        max_epochs,
        lr: 5e-3,
        batch_size: 2,
        tol: 0.0,
        patience: 1000,
        ..TrainConfig::default()
    }
}

fn param_bits(model: &GraphModel) -> Vec<u64> {
    model
        .params()
        .iter()
        .flat_map(|m| m.as_slice().iter().map(|v| v.to_bits()))
        .collect()
}

#[test]
fn checkpointing_a_clean_run_changes_nothing() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (op, xs, ys) = setup();
    let cfg = config(7);

    let mut plain = fresh_model();
    let plain_report = train_with(&mut plain, &op, &xs, &ys, &cfg, &TrainControl::default());

    let path = ckpt_path("clean");
    let control = TrainControl {
        cancel: None,
        checkpoint: Some(TrainCheckpointSpec {
            path: path.clone(),
            resume: true,
        }),
        heartbeat: None,
    };
    let mut saved = fresh_model();
    let saved_report = train_with(&mut saved, &op, &xs, &ys, &cfg, &control);

    assert_eq!(param_bits(&plain), param_bits(&saved));
    assert_eq!(plain_report.loss_history, saved_report.loss_history);
    assert_eq!(saved_report.checkpoint_error, None);
    assert!(!saved_report.interrupted);
    assert!(std::path::Path::new(&path).exists(), "checkpoint persisted");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn interrupted_then_resumed_runs_are_bit_identical() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (op, xs, ys) = setup();
    let epochs = 9usize;
    let cfg = config(epochs);

    let mut clean = fresh_model();
    let clean_report = train_with(&mut clean, &op, &xs, &ys, &cfg, &TrainControl::default());
    let reference = param_bits(&clean);
    assert_eq!(clean_report.epochs_run, epochs);

    // First epoch, a mid-run epoch, and the boundary before the last epoch.
    for k in [1usize, epochs / 2, epochs - 1] {
        let path = ckpt_path(&format!("resume_k{k}"));
        let control = TrainControl {
            cancel: None,
            checkpoint: Some(TrainCheckpointSpec {
                path: path.clone(),
                resume: true,
            }),
            heartbeat: None,
        };

        // Crash leg: the injected interrupt lands at the epoch-k boundary.
        let _cleanup = Disarm;
        faults::arm_str(&format!("train.interrupt:die@o{k}"), None).unwrap();
        let mut interrupted = fresh_model();
        let report = train_with(&mut interrupted, &op, &xs, &ys, &cfg, &control);
        faults::disarm();
        assert!(report.interrupted, "k={k}");
        assert!(!report.converged, "k={k}");
        assert_eq!(report.epochs_run, k, "k={k}: stopped at the boundary");
        assert_eq!(report.loss_history, clean_report.loss_history[..k], "k={k}");

        // Resume leg: restores parameters, ADAM moments, and RNG position.
        let mut resumed = fresh_model();
        let report = train_with(&mut resumed, &op, &xs, &ys, &cfg, &control);
        assert!(!report.interrupted, "k={k}");
        assert_eq!(report.epochs_run, epochs, "k={k}: finished the run");
        assert_eq!(report.loss_history, clean_report.loss_history, "k={k}");
        assert_eq!(
            param_bits(&resumed),
            reference,
            "k={k}: resume must be bit-identical"
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn pre_tripped_token_stops_before_the_first_epoch() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (op, xs, ys) = setup();
    let token = CancelToken::default();
    token.cancel();
    let control = TrainControl {
        cancel: Some(token),
        checkpoint: None,
        heartbeat: None,
    };
    let mut model = fresh_model();
    let initial = param_bits(&model);
    let report = train_with(&mut model, &op, &xs, &ys, &config(9), &control);
    assert!(report.interrupted);
    assert_eq!(report.epochs_run, 0);
    assert!(report.loss_history.is_empty());
    assert!(!report.converged && !report.diverged);
    assert_eq!(param_bits(&model), initial, "no update applied");
}

#[test]
fn pre_tripped_token_on_resume_stops_at_epoch_n() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (op, xs, ys) = setup();
    let cfg = config(9);
    let path = ckpt_path("pretripped_resume");
    let checkpoint = Some(TrainCheckpointSpec {
        path: path.clone(),
        resume: true,
    });

    // Reach epoch 3 via an injected interrupt, leaving a checkpoint behind.
    let _cleanup = Disarm;
    faults::arm_str("train.interrupt:die@o3", None).unwrap();
    let mut first = fresh_model();
    let report = train_with(
        &mut first,
        &op,
        &xs,
        &ys,
        &cfg,
        &TrainControl {
            cancel: None,
            checkpoint: checkpoint.clone(),
            heartbeat: None,
        },
    );
    faults::disarm();
    assert_eq!((report.epochs_run, report.interrupted), (3, true));

    // A resume under an already-tripped token must halt at epoch 3 — i.e.
    // exactly the checkpointed state, no training progress.
    let token = CancelToken::default();
    token.cancel();
    let mut resumed = fresh_model();
    let report = train_with(
        &mut resumed,
        &op,
        &xs,
        &ys,
        &cfg,
        &TrainControl {
            cancel: Some(token),
            checkpoint,
            heartbeat: None,
        },
    );
    assert!(report.interrupted);
    assert_eq!(report.epochs_run, 3, "halted at the restored boundary");
    assert_eq!(
        param_bits(&resumed),
        param_bits(&first),
        "parameters are exactly the checkpointed ones"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn converged_checkpoint_resumes_to_the_same_report() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (op, xs, ys) = setup();
    // Loose tolerance: every epoch counts as stalled, so the run converges
    // after `patience` epochs and the checkpoint records that verdict.
    let cfg = TrainConfig {
        max_epochs: 50,
        lr: 5e-3,
        batch_size: 2,
        tol: f64::INFINITY,
        patience: 3,
        ..TrainConfig::default()
    };
    let path = ckpt_path("converged");
    let control = TrainControl {
        cancel: None,
        checkpoint: Some(TrainCheckpointSpec {
            path: path.clone(),
            resume: true,
        }),
        heartbeat: None,
    };
    let mut model = fresh_model();
    let first = train_with(&mut model, &op, &xs, &ys, &cfg, &control);
    assert!(first.converged);

    let mut reloaded = fresh_model();
    let second = train_with(&mut reloaded, &op, &xs, &ys, &cfg, &control);
    assert!(second.converged);
    assert_eq!(second.epochs_run, first.epochs_run);
    assert_eq!(second.loss_history, first.loss_history);
    assert_eq!(
        param_bits(&reloaded),
        param_bits(&model),
        "a finished run restores, never retrains"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
#[should_panic(expected = "different hyper-parameters")]
fn mismatched_hyperparameters_refuse_to_resume() {
    let (op, xs, ys) = setup();
    let path = ckpt_path("fingerprint_mismatch");
    let control = TrainControl {
        cancel: None,
        checkpoint: Some(TrainCheckpointSpec {
            path: path.clone(),
            resume: true,
        }),
        heartbeat: None,
    };
    let mut model = fresh_model();
    train_with(&mut model, &op, &xs, &ys, &config(3), &control);
    // Same checkpoint, different learning rate: silently mixing the two
    // optimization trajectories would be worse than stopping.
    let mut other = fresh_model();
    let cfg = TrainConfig {
        lr: 1e-4,
        ..config(3)
    };
    train_with(&mut other, &op, &xs, &ys, &cfg, &control);
}
