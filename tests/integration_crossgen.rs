//! Cross-scheme study guarantees, end to end: Anti-SAT locking resists the
//! SAT attack measurably harder than the point-substitution schemes at an
//! equal key-bit budget, its sweeps are bit-identical for every worker
//! count, and the scheme-aware checkpoint fingerprints behave in *both*
//! directions — a raised deadline re-attacks resistant quarantines, while a
//! changed scheme parameter never reuses a stale label.

use dataset::{generate, generate_parallel_with, CheckpointLog, DatasetConfig, RetryPolicy};
use obfuscate::SchemeKind;
use std::path::PathBuf;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("icnet_integration_crossgen");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}_{name}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// A small c432 sweep of `scheme` with every instance locking exactly
/// `gates` gates (a fixed key-bit budget, not a range).
fn sweep(scheme: SchemeKind, gates: usize, instances: usize) -> DatasetConfig {
    let mut config = DatasetConfig::quick_demo();
    config.scheme = scheme;
    config.key_range = (gates, gates);
    config.num_instances = instances;
    config.seed = 11;
    config
}

fn median_iterations(instances: &[dataset::Instance]) -> f64 {
    let mut iters: Vec<usize> = instances.iter().map(|i| i.iterations).collect();
    iters.sort_unstable();
    let mid = iters.len() / 2;
    if iters.len() % 2 == 1 {
        iters[mid] as f64
    } else {
        (iters[mid - 1] + iters[mid]) as f64 / 2.0
    }
}

/// The study's headline claim, reproduced as a test: at an equal total
/// key-bit budget (8 bits per instance), the median DIP count of Anti-SAT
/// sits strictly above every point-substitution baseline, because a wrong
/// disagreeing-halves key is distinguished by only one tap pattern.
#[test]
fn anti_sat_needs_more_dips_than_baselines_at_equal_key_bits() {
    let n = 9;
    // 8 key bits each: 8 XOR gates, 8 MUX gates, 2 LUT-2 gates, 1 w=4 block.
    let antisat = generate(&sweep(SchemeKind::AntiSat { key_width: 4 }, 1, n)).unwrap();
    let xor = generate(&sweep(SchemeKind::XorLock, 8, n)).unwrap();
    let mux = generate(&sweep(SchemeKind::MuxLock, 8, n)).unwrap();
    let lut = generate(&sweep(SchemeKind::LutLock { lut_size: 2 }, 2, n)).unwrap();

    let resistant = median_iterations(&antisat.instances);
    for (label, baseline) in [("xor", &xor), ("mux", &mux), ("lut2", &lut)] {
        let med = median_iterations(&baseline.instances);
        assert!(
            resistant > med,
            "antisat median DIPs {resistant} must exceed {label}'s {med}"
        );
    }
    // The wrong-key space has 2^(2w) - 2^w disagreeing-halves keys, each
    // eliminated by a single tap pattern: the DIP count scales with 2^w.
    assert!(
        resistant >= 8.0,
        "a w=4 block must cost at least ~2^(w-1) DIPs, got {resistant}"
    );
}

/// Anti-SAT sweeps keep the pipeline's bit-identity guarantee: every worker
/// count produces the same labels as the serial reference.
#[test]
fn anti_sat_generation_is_bit_identical_across_worker_counts() {
    let config = sweep(SchemeKind::AntiSat { key_width: 3 }, 2, 6);
    let serial = generate(&config).unwrap();
    for jobs in [2, 3, 5] {
        let (parallel, report) = generate_parallel_with(&config, jobs, None).unwrap();
        assert_eq!(report.quarantined(), 0);
        assert_eq!(
            serial.instances, parallel.instances,
            "jobs={jobs} must be bit-identical to the serial sweep"
        );
    }
}

/// Direction one of the supervision fingerprint: quarantines recorded under
/// a hopeless deadline must be re-attacked when the deadline is raised on
/// the same resume log — a verdict reached under tighter supervision is
/// never replayed as if it still applied.
#[test]
fn raised_deadline_reattacks_anti_sat_quarantines() {
    let mut config = sweep(SchemeKind::AntiSat { key_width: 4 }, 1, 4);
    config.retry = RetryPolicy {
        max_attempts: 1,
        escalation: 2,
    };
    config.attack.deadline = Some(Duration::ZERO);
    let path = tmp("raised_deadline.ckpt");

    let mut log = CheckpointLog::open(&path).unwrap();
    let (data, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
    assert!(data.instances.is_empty(), "zero deadline quarantines all");
    assert_eq!(report.quarantined(), 4);
    drop(log);

    config.attack.deadline = Some(Duration::from_secs(600));
    let mut log = CheckpointLog::open(&path).unwrap();
    let (data, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
    assert_eq!(report.quarantined(), 0, "no stale quarantine replayed");
    assert_eq!(report.attacked(), 4, "every instance re-attacked");
    assert_eq!(data.instances.len(), 4);

    // The recovered labels match a deadline-free sweep bit for bit.
    let mut clean = config.clone();
    clean.attack.deadline = None;
    assert_eq!(data.instances, generate(&clean).unwrap().instances);
}

/// Direction two: changing a scheme *parameter* (here the Anti-SAT key
/// width) re-fingerprints both checkpoint keys, so a resume under the new
/// parameters reuses nothing — labels attacked under w=3 must never leak
/// into a w=4 sweep that shares the log file.
#[test]
fn changed_scheme_parameters_never_reuse_stale_labels() {
    let config = sweep(SchemeKind::AntiSat { key_width: 3 }, 1, 5);
    let path = tmp("scheme_params.ckpt");

    let mut log = CheckpointLog::open(&path).unwrap();
    let (first, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
    assert_eq!(report.attacked(), 5);
    assert_eq!(log.len(), 5);
    drop(log);

    // Identical config on the same log: everything is reused.
    let mut log = CheckpointLog::open(&path).unwrap();
    let (second, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
    assert_eq!(report.attacked(), 0, "identical config resumes for free");
    assert_eq!(report.reused(), 5);
    assert_eq!(first, second);
    drop(log);

    // Same scheme family, different parameter: every instance re-attacks.
    let mut wider = config.clone();
    wider.scheme = SchemeKind::AntiSat { key_width: 4 };
    let mut log = CheckpointLog::open(&path).unwrap();
    let (widened, report) = generate_parallel_with(&wider, 2, Some(&mut log)).unwrap();
    assert_eq!(report.reused(), 0, "w=3 labels must not leak into w=4");
    assert_eq!(report.attacked(), 5);
    assert_ne!(
        first.instances, widened.instances,
        "wider blocks change the labels themselves"
    );

    // And the original width still resumes from its own records.
    let mut log = CheckpointLog::open(&path).unwrap();
    let (third, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
    assert_eq!(report.attacked(), 0, "w=3 records survived the w=4 sweep");
    assert_eq!(first, third);
}
