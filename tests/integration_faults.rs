//! The DESIGN.md §6f recovery matrix, driven end-to-end through
//! `faults::FaultPlan` — every (site × stage) entry injects the fault at a
//! real call site, lets the stack's recovery machinery react, and compares
//! the final artifacts against a clean run. No hand-built corrupt inputs:
//! if a fault cannot be reached by a plan, it is not covered here.

use bench::harness::{dataset_cache_path, load_or_generate_parallel, unseal_csv};
use dataset::{dataset_to_csv, generate_parallel_with, CheckpointLog, DatasetConfig, FailureKind};
use std::sync::Mutex;

/// Faults and the obs sink are process-global; tests must not overlap.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Disarms the fault plan when a test exits, pass or panic.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        faults::disarm();
    }
}

fn tmp_dir(name: &str) -> String {
    let dir = std::env::temp_dir()
        .join("icnet_integration_faults")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.display().to_string()
}

fn demo_config(n: usize) -> DatasetConfig {
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = n;
    config
}

/// sat.solve × panic → the supervisor's `catch_unwind` isolates the worker,
/// the retry policy re-attacks with untouched deterministic budgets, and
/// the sweep finishes with labels byte-identical to a fault-free run.
#[test]
fn solver_panic_is_retried_to_identical_labels() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = demo_config(4);
    let (reference, _) = generate_parallel_with(&config, 1, None).expect("clean sweep");

    let _cleanup = Disarm;
    faults::arm_str("sat.solve:panic@o0", None).unwrap();
    let (injected, report) = generate_parallel_with(&config, 1, None).expect("supervised sweep");
    assert_eq!(faults::fired().len(), 1, "the plan fired exactly once");
    assert_eq!(
        dataset_to_csv(&injected.instances),
        dataset_to_csv(&reference.instances),
        "a retried panic must not change any label"
    );
    assert!(report.failures.is_empty(), "retry succeeded, no quarantine");
}

/// sat.solve × unknown → a spurious Unknown classifies as budget
/// exhaustion, so the instance is labeled censored instead of poisoning the
/// sweep; every other instance is untouched.
#[test]
fn spurious_unknown_censors_only_the_targeted_instance() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = demo_config(4);
    let (reference, _) = generate_parallel_with(&config, 1, None).expect("clean sweep");

    let _cleanup = Disarm;
    // Context selector: every solve of instance 1's attack goes Unknown.
    faults::arm_str("sat.solve:unknown@c1", None).unwrap();
    let (injected, _) = generate_parallel_with(&config, 1, None).expect("sweep survives");
    assert!(injected.instances[1].censored, "labeled censored, not lost");
    for (i, (a, b)) in injected
        .instances
        .iter()
        .zip(&reference.instances)
        .enumerate()
    {
        if i != 1 {
            assert_eq!(a, b, "instance {i} unaffected");
        }
    }
}

/// sat.solve × panic on *every* attempt of one instance → the retry policy
/// runs out and the instance is quarantined with a Panic record, while every
/// other instance labels identically to a clean sweep. Pins two properties
/// of the arena-core rewrite: the fault site still fires before any solver
/// work (first statement of `solve_with_assumptions`), and a panic unwinding
/// out of arena/preprocessing state is still contained by the supervisor.
#[test]
fn persistent_solver_panic_quarantines_only_that_instance() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = demo_config(4);
    let (reference, _) = generate_parallel_with(&config, 1, None).expect("clean sweep");

    let _cleanup = Disarm;
    faults::arm_str("sat.solve:panic@c1", None).unwrap();
    let (injected, report) = generate_parallel_with(&config, 1, None).expect("keep-going sweep");
    assert_eq!(report.quarantined(), 1, "exactly the targeted instance");
    let failure = &report.failures[0];
    assert_eq!(failure.index, 1);
    assert_eq!(failure.failure.kind, FailureKind::Panic);
    assert!(
        failure.failure.message.contains("sat.solve"),
        "quarantine names the fault site: {}",
        failure.failure.message
    );
    let healthy: Vec<_> = reference
        .instances
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 1)
        .map(|(_, inst)| inst.clone())
        .collect();
    assert_eq!(injected.instances, healthy, "other labels untouched");
}

/// checkpoint.append × torn → the write errors out mid-record (the crash),
/// the reopened log silently drops the torn tail, and the resumed sweep
/// rebuilds a dataset byte-identical to a never-crashed run.
#[test]
fn torn_checkpoint_append_crashes_then_resumes_identically() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = demo_config(4);
    let (reference, _) = generate_parallel_with(&config, 1, None).expect("clean sweep");
    let dir = tmp_dir("torn_append");
    let path = format!("{dir}/sweep.ckpt");

    {
        let _cleanup = Disarm;
        faults::arm_str("checkpoint.append:torn@o2", None).unwrap();
        let mut log = CheckpointLog::open(&path).unwrap();
        let err = generate_parallel_with(&config, 1, Some(&mut log))
            .expect_err("the torn append is a crash");
        assert!(
            err.to_string().contains("checkpoint.append torn"),
            "err: {err}"
        );
    }

    // Post-crash, post-disarm: recover the log and finish the sweep.
    let mut log = CheckpointLog::open(&path).expect("torn tail recovers silently");
    assert!(log.len() < 4, "the crashed sweep was incomplete");
    let (resumed, report) =
        generate_parallel_with(&config, 1, Some(&mut log)).expect("resumed sweep");
    assert!(report.reused() > 0, "finished attacks were not redone");
    assert_eq!(
        dataset_to_csv(&resumed.instances),
        dataset_to_csv(&reference.instances),
        "crash + resume must be invisible in the labels"
    );
}

/// A failed append leaves a *partial* line on disk, so the handle must
/// refuse every later append: in a multi-worker sweep, a still-draining
/// worker would otherwise concatenate its complete record onto the torn
/// tail — welding the two into one checksum-failing line and turning
/// silently recoverable tail damage into a loud interior-corruption error
/// on the next open. (Found by running the chaos CI job with `--jobs 2`.)
#[test]
fn failed_append_poisons_the_log_handle() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("poisoned_append");
    let path = format!("{dir}/sweep.ckpt");
    let instance = dataset::Instance {
        selected: vec![netlist::GateId::from_index(0)],
        key_bits: 2,
        iterations: 3,
        work: 100,
        seconds: 0.5,
        log_seconds: (0.5f64).ln(),
        censored: false,
    };

    let _cleanup = Disarm;
    faults::arm_str("checkpoint.append:torn@o1", None).unwrap();
    let mut log = CheckpointLog::open(&path).unwrap();
    log.record(1, 0, &instance).expect("first append is clean");
    log.record(2, 1, &instance)
        .expect_err("second append tears");
    let err = log
        .record(3, 2, &instance)
        .expect_err("poisoned handle refuses further appends");
    assert!(err.to_string().contains("reopen to recover"), "err: {err}");

    // Because nothing wrote past the torn tail, reopening recovers cleanly:
    // record 1 survives, the partial record 2 is dropped, and the fresh
    // handle accepts appends again.
    faults::disarm();
    let mut log = CheckpointLog::open(&path).expect("tail-only damage recovers");
    assert_eq!(log.len(), 1);
    assert!(log.lookup(1).is_some());
    log.record(3, 2, &instance)
        .expect("recovered handle writes");
}

/// cache.write × torn → a torn prefix lands at the cache path; the next run
/// flags the checksum mismatch, downgrades to a miss, and regenerates an
/// identical dataset (then re-seals the cache).
#[test]
fn torn_cache_write_is_a_checksum_miss_next_run() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = demo_config(4);
    let out_dir = tmp_dir("torn_cache");

    let first = {
        let _cleanup = Disarm;
        faults::arm_str("cache.write:torn@o0", None).unwrap();
        load_or_generate_parallel(&config, &out_dir, 1, None)
    };
    let path = dataset_cache_path(&config, &out_dir);
    let torn = std::fs::read_to_string(&path).expect("torn prefix was written");
    let err = unseal_csv(&torn).expect_err("torn cache must not verify");
    assert!(
        err.contains("missing checksum footer") || err.contains("checksum mismatch"),
        "err: {err}"
    );

    let second = load_or_generate_parallel(&config, &out_dir, 1, None);
    assert_eq!(second.instances, first.instances, "regenerated identically");
    let sealed = std::fs::read_to_string(&path).unwrap();
    unseal_csv(&sealed).expect("cache re-sealed after the miss");
    let third = load_or_generate_parallel(&config, &out_dir, 1, None);
    assert_eq!(third.instances, first.instances, "now a clean cache hit");
}

/// dataset.worker × die → the killed worker's instance lands in quarantine
/// with an `InstanceFailure` naming the site, the keep-going sweep reports
/// it in `SweepReport::failures`, and the surviving workers finish the rest.
#[test]
fn worker_death_is_quarantined_naming_the_site() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = demo_config(6);
    assert!(config.keep_going, "keep-going is the default");

    let _cleanup = Disarm;
    faults::arm_str("dataset.worker:die@c2", None).unwrap();
    let (data, report) = generate_parallel_with(&config, 2, None).expect("keep-going sweep");
    assert_eq!(data.instances.len(), 5, "only the killed instance is lost");
    assert_eq!(report.failures.len(), 1);
    let failure = &report.failures[0];
    assert_eq!(failure.index, 2);
    assert!(!failure.reused);
    assert_eq!(failure.failure.kind, FailureKind::Death);
    assert!(
        failure.failure.message.contains("dataset.worker"),
        "failure must name the fault site: {}",
        failure.failure.message
    );
}

/// dataset.worker × die on every instance → all workers die and the sweep
/// reports the loss loudly instead of returning a silently empty dataset.
#[test]
fn total_worker_loss_fails_loudly() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = demo_config(4);

    let _cleanup = Disarm;
    faults::arm_str("dataset.worker:die@o0+", None).unwrap();
    let err = generate_parallel_with(&config, 2, None).expect_err("no worker survives");
    assert!(err.to_string().contains("workers died"), "err: {err}");
}

/// train.epoch × nan → the poisoned loss trips the divergence guard before
/// the update is applied: the report says diverged and the parameters stay
/// finite (the last healthy epoch's values).
#[test]
fn poisoned_epoch_diverges_with_finite_parameters() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let circuit = netlist::c17();
    let graph = icnet::CircuitGraph::from_circuit(&circuit);
    let op = std::sync::Arc::new(icnet::ModelKind::ICNet.operator(&graph));
    let xs: Vec<tensor::Matrix> = (0..4)
        .map(|i| {
            icnet::encode_features(
                &circuit,
                &[netlist::GateId::from_index(i)],
                icnet::FeatureSet::All,
            )
        })
        .collect();
    let ys = vec![0.5, 1.0, 1.5, 2.0];
    let config = icnet::TrainConfig {
        max_epochs: 6,
        lr: 5e-3,
        batch_size: 2,
        ..icnet::TrainConfig::default()
    };
    let mut model =
        icnet::GraphModel::new(icnet::ModelKind::ICNet, icnet::Aggregation::Nn, 7, 8, 8, 1);

    let _cleanup = Disarm;
    faults::arm_str("train.epoch:nan@o2", None).unwrap();
    let report = icnet::train_with(
        &mut model,
        &op,
        &xs,
        &ys,
        &config,
        &icnet::TrainControl::default(),
    );
    assert!(report.diverged, "poison must be detected, not trained on");
    assert_eq!(report.epochs_run, 3, "died in the third epoch");
    assert_eq!(
        report.loss_history.len(),
        2,
        "poisoned epoch never recorded"
    );
    assert!(
        model
            .params()
            .iter()
            .all(|m| m.as_slice().iter().all(|v| v.is_finite())),
        "the poisoned update was never applied"
    );
}

/// train.checkpoint × torn (persistent) → every save attempt fails, the
/// report carries the first error, the on-disk checkpoint stays at its
/// last good epoch, and a post-crash resume from it is bit-identical.
#[test]
fn torn_training_checkpoint_keeps_the_last_good_epoch() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let circuit = netlist::c17();
    let graph = icnet::CircuitGraph::from_circuit(&circuit);
    let op = std::sync::Arc::new(icnet::ModelKind::ICNet.operator(&graph));
    let xs: Vec<tensor::Matrix> = (0..4)
        .map(|i| {
            icnet::encode_features(
                &circuit,
                &[netlist::GateId::from_index(i)],
                icnet::FeatureSet::All,
            )
        })
        .collect();
    let ys = vec![0.5, 1.0, 1.5, 2.0];
    let config = icnet::TrainConfig {
        max_epochs: 8,
        lr: 5e-3,
        batch_size: 2,
        tol: 0.0,
        patience: 1000,
        ..icnet::TrainConfig::default()
    };
    let fresh =
        || icnet::GraphModel::new(icnet::ModelKind::ICNet, icnet::Aggregation::Nn, 7, 8, 8, 1);
    let bits = |m: &icnet::GraphModel| -> Vec<u64> {
        m.params()
            .iter()
            .flat_map(|p| p.as_slice().iter().map(|v| v.to_bits()))
            .collect()
    };
    let mut clean = fresh();
    let clean_report = icnet::train_with(
        &mut clean,
        &op,
        &xs,
        &ys,
        &config,
        &icnet::TrainControl::default(),
    );

    let dir = tmp_dir("torn_train_ckpt");
    let control = icnet::TrainControl {
        cancel: None,
        checkpoint: Some(icnet::TrainCheckpointSpec {
            path: format!("{dir}/train.ckpt"),
            resume: true,
        }),
        heartbeat: None,
    };
    // Saves succeed through epoch 3; every later one tears mid-write.
    let _cleanup = Disarm;
    faults::arm_str("train.checkpoint:torn@o3+", None).unwrap();
    let mut torn = fresh();
    let report = icnet::train_with(&mut torn, &op, &xs, &ys, &config, &control);
    faults::disarm();
    assert_eq!(report.epochs_run, 8, "a failing save never stops training");
    let error = report.checkpoint_error.expect("save failure reported");
    assert!(error.contains("train.checkpoint torn"), "error: {error}");
    assert_eq!(bits(&torn), bits(&clean), "training itself was untouched");

    // The checkpoint on disk is the last *good* save (epoch 3): resuming
    // replays epochs 3..8 to the same bit-exact parameters.
    let mut resumed = fresh();
    let report = icnet::train_with(&mut resumed, &op, &xs, &ys, &config, &control);
    assert_eq!(report.epochs_run, 8);
    assert_eq!(report.checkpoint_error, None);
    assert_eq!(
        report.loss_history[3..],
        clean_report.loss_history[3..],
        "resume picked up at the torn boundary"
    );
    assert_eq!(bits(&resumed), bits(&clean), "bit-identical after the tear");
}

/// obs.trace.write × torn → the trace flush stops mid-stream and the
/// failure is reported in the summary, never silently swallowed.
#[test]
fn torn_trace_write_surfaces_in_the_summary() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("torn_trace");

    let _cleanup = Disarm;
    faults::arm_str("obs.trace.write:torn@o0", None).unwrap();
    obs::init(obs::ObsConfig {
        trace: Some(format!("{dir}/trace.jsonl")),
        progress: false,
    });
    for i in 0..10u64 {
        obs::emit(obs::EventKind::TrainCheckpointSaved { epoch: i });
    }
    let summary = obs::finish().expect("sink was initialised");
    let error = summary.trace_error.expect("torn write reported");
    assert!(
        error.contains("injected fault: obs.trace.write"),
        "error: {error}"
    );
}

/// Fired faults surface as `fault.injected` obs events when armed with the
/// binaries' observer, carrying the site, action, and occurrence.
#[test]
fn fired_faults_are_obs_events() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("fault_events");
    let trace = format!("{dir}/trace.jsonl");
    obs::init(obs::ObsConfig {
        trace: Some(trace.clone()),
        progress: false,
    });

    let _cleanup = Disarm;
    let observe: faults::Observer = |site, action, occurrence| {
        obs::emit(obs::EventKind::FaultInjected {
            site: site.to_owned(),
            action,
            occurrence,
        });
    };
    faults::arm_str("sat.solve:unknown@o0", Some(observe)).unwrap();
    let mut solver = sat::Solver::new();
    solver.new_var();
    solver.add_clause([sat::Lit::from_dimacs(1)]);
    assert!(
        matches!(solver.solve(), sat::SolveResult::Unknown),
        "fault fired"
    );
    faults::disarm();

    let summary = obs::finish().expect("sink was initialised");
    assert!(summary.trace_error.is_none(), "{:?}", summary.trace_error);
    let text = std::fs::read_to_string(&trace).unwrap();
    let line = text
        .lines()
        .find(|l| l.contains("\"kind\":\"fault.injected\""))
        .expect("fault.injected event in trace");
    assert!(line.contains("sat.solve"), "line: {line}");
    assert!(line.contains("unknown"), "line: {line}");
}

/// The disabled-faults equivalence half of the acceptance criteria: with a
/// plan armed that matches no site, the full generate → cache → train
/// pipeline produces byte-identical CSV and bit-identical parameters to a
/// run with the framework never armed at all.
#[test]
fn armed_but_unmatched_plan_perturbs_nothing() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = demo_config(4);
    let epochs = 5;
    let seed = 7;

    let run = || {
        let out_dir = tmp_dir("equivalence");
        let data = load_or_generate_parallel(&config, &out_dir, 2, None);
        let csv = dataset_to_csv(&data.instances);
        let split = dataset::train_test_split(data.instances.len(), 0.25, seed);
        let (_, trained) = bench::harness::evaluate_gnn(
            &data,
            &split,
            icnet::ModelKind::ICNet,
            icnet::Aggregation::Nn,
            icnet::FeatureSet::All,
            epochs,
            seed,
        );
        let bits: Vec<u64> = trained
            .model
            .params()
            .iter()
            .flat_map(|m| m.as_slice().iter().map(|v| v.to_bits()))
            .collect();
        (csv, bits)
    };

    let reference = run();

    let _cleanup = Disarm;
    faults::arm_str("seed=9;no.such.site:panic;also.not.a.site.*:die@o0+", None).unwrap();
    let armed = run();
    assert!(faults::fired().is_empty(), "nothing may fire");
    assert_eq!(armed.0, reference.0, "dataset CSV must be byte-identical");
    assert_eq!(armed.1, reference.1, "parameters must be bit-identical");
}
