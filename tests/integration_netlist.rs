//! Cross-crate consistency between the three semantic views of a circuit:
//! bit-parallel simulation, CNF encoding, and the `.bench` text format.

use cnf::{encode_circuit, fix_vars};
use netlist::Circuit;
use obfuscate::{lock_random, SchemeKind};
use sat::{SolveResult, Solver};
use synth::GeneratorConfig;

/// Deterministic pattern stream.
fn patterns(seed: u64, n: usize, count: usize) -> Vec<Vec<bool>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    (0..count)
        .map(|_| (0..n).map(|_| next() & 1 == 1).collect())
        .collect()
}

/// The CNF encoding and the simulator must agree on sampled patterns.
fn check_cnf_sim_agreement(circuit: &Circuit, seed: u64) {
    let n_in = circuit.inputs().len();
    let n_key = circuit.keys().len();
    for pattern in patterns(seed, n_in + n_key, 8) {
        let (ins, keys) = pattern.split_at(n_in);
        let mut solver = Solver::new();
        let enc = encode_circuit(circuit, &mut solver);
        fix_vars(&mut solver, &enc.input_vars(circuit), ins);
        fix_vars(&mut solver, &enc.key_vars(circuit), keys);
        let model = match solver.solve() {
            SolveResult::Sat(m) => m,
            other => panic!("fully constrained encoding must be SAT, got {other:?}"),
        };
        let sim = circuit.simulate_bool(ins, keys).expect("simulates");
        let cnf_out: Vec<bool> = enc
            .output_vars(circuit)
            .iter()
            .map(|&v| model.value(v))
            .collect();
        assert_eq!(cnf_out, sim, "{}", circuit.name());
    }
}

#[test]
fn cnf_matches_simulation_on_synthetic_circuits() {
    for seed in 0..4 {
        let circuit = synth::generate(&GeneratorConfig::new("x", 10, 5, 150).with_seed(seed));
        check_cnf_sim_agreement(&circuit, seed * 31 + 7);
    }
}

#[test]
fn cnf_matches_simulation_on_locked_circuits() {
    let base = synth::generate(&GeneratorConfig::new("x", 8, 4, 80).with_seed(9));
    for scheme in [
        SchemeKind::XorLock,
        SchemeKind::MuxLock,
        SchemeKind::LutLock { lut_size: 3 },
    ] {
        let locked = lock_random(&base, scheme, 3, 5).expect("lockable");
        check_cnf_sim_agreement(&locked.locked, 1234);
    }
}

#[test]
fn bench_text_preserves_function_for_synthetic_circuits() {
    for seed in 0..4 {
        let circuit = synth::generate(&GeneratorConfig::new("x", 10, 5, 150).with_seed(seed));
        let reparsed = Circuit::from_bench("rt", &circuit.to_bench()).expect("parses back");
        assert!(circuit
            .equiv_random(&reparsed, &[], &[], 16, seed)
            .expect("same ports"));
    }
}

#[test]
fn iscas_profiles_generate_and_simulate() {
    for name in synth::iscas::names() {
        // The largest profiles are expensive to simulate repeatedly; shape
        // checks are enough there.
        let circuit = synth::iscas::circuit(name, 1).expect("known profile");
        assert!(circuit.num_gates() > 0, "{name}");
        assert!(!circuit.outputs().is_empty(), "{name}");
        if circuit.num_gates() < 1000 {
            let zeros = vec![0u64; circuit.inputs().len()];
            let outs = circuit.simulate(&zeros, &[]).expect("simulates");
            assert_eq!(outs.len(), circuit.outputs().len());
        }
    }
}

#[test]
fn applied_key_restores_equivalence_end_to_end() {
    let base = synth::generate(&GeneratorConfig::new("x", 10, 5, 100).with_seed(21));
    // Lock seed 0 places at least one LUT on an *observable* gate. Randomly
    // generated circuits carry heavy redundancy — for most lock seeds every
    // selected gate is unobservable, and then the inverted-key assertion
    // below cannot hold no matter how correct the locking is.
    let locked = lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 5, 0).expect("lockable");
    let applied = locked.apply_key(&locked.key).expect("key fits");
    assert!(base
        .equiv_random(&applied, &[], &[], 32, 99)
        .expect("same ports"));

    // A fully inverted key must break equivalence somewhere in 32 random
    // words (every replaced gate becomes its complement).
    let bad: Vec<bool> = locked.key.bits().iter().map(|b| !b).collect();
    let applied_bad = locked
        .apply_key(&obfuscate::Key::from_bits(bad))
        .expect("key fits");
    assert!(!base
        .equiv_random(&applied_bad, &[], &[], 32, 99)
        .expect("same ports"));
}

#[test]
fn levelization_bounds_hold_for_generated_circuits() {
    use netlist::topo::{dead_gates, levelize};
    let circuit = synth::generate(&GeneratorConfig::new("x", 16, 8, 300).with_seed(5));
    let levels = levelize(&circuit);
    for (id, gate) in circuit.iter() {
        for &f in gate.fanin() {
            assert!(levels.level(f) < levels.level(id));
        }
    }
    // The generator picks outputs from likely sinks; dead logic should be a
    // small minority of the netlist.
    let dead = dead_gates(&circuit).len();
    assert!(
        dead * 4 < circuit.num_gates(),
        "{dead} dead gates out of {}",
        circuit.num_gates()
    );
}
