//! Cross-crate integration: netlist ↔ obfuscate ↔ cnf ↔ sat ↔ attack.
//!
//! These tests exercise the full de-obfuscation stack on synthetic circuits
//! that are big enough to be non-trivial but solve in milliseconds.

use attack::{attack, attack_locked, AttackConfig, AttackError, AttackOutcome, SimOracle};
use obfuscate::{lock_random, SchemeKind};
use synth::GeneratorConfig;

fn base_circuit(seed: u64) -> netlist::Circuit {
    synth::generate(&GeneratorConfig::new("itest", 12, 6, 120).with_seed(seed))
}

#[test]
fn attack_recovers_correct_key_for_every_scheme() {
    let base = base_circuit(1);
    for scheme in [
        SchemeKind::XorLock,
        SchemeKind::MuxLock,
        SchemeKind::LutLock { lut_size: 2 },
        SchemeKind::LutLock { lut_size: 4 },
    ] {
        let locked = lock_random(&base, scheme, 4, 9).expect("lockable");
        let result = attack_locked(&locked, &AttackConfig::default()).expect("attack runs");
        let key = result
            .key()
            .unwrap_or_else(|| panic!("{scheme} attack should finish"));
        assert!(
            locked.verify_key(key).expect("verification simulates"),
            "{scheme}: recovered key must be functionally correct"
        );
    }
}

#[test]
fn attack_runtime_scales_with_difficulty() {
    let base = base_circuit(2);
    let easy = lock_random(&base, SchemeKind::XorLock, 2, 5).expect("lockable");
    let hard = lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 8, 5).expect("lockable");
    let easy_result = attack_locked(&easy, &AttackConfig::default()).expect("attack runs");
    let hard_result = attack_locked(&hard, &AttackConfig::default()).expect("attack runs");
    assert!(
        hard_result.solver_stats.work() > easy_result.solver_stats.work(),
        "8 LUT-4 gates ({}) must out-work 2 XOR gates ({})",
        hard_result.solver_stats.work(),
        easy_result.solver_stats.work()
    );
}

#[test]
fn attack_works_on_a_bench_round_tripped_netlist() {
    // Lock, serialize to .bench, parse back, attack the reparsed netlist.
    let base = base_circuit(3);
    let locked = lock_random(&base, SchemeKind::XorLock, 5, 2).expect("lockable");
    let text = locked.locked.to_bench();
    let reparsed = netlist::Circuit::from_bench("reparsed", &text).expect("parses back");
    assert_eq!(reparsed.keys().len(), 5);

    let mut oracle = SimOracle::new(base.clone());
    let result = attack(&reparsed, &mut oracle, &AttackConfig::default()).expect("attack runs");
    let key = result.key().expect("attack finishes");
    // Verify functionally: reparsed(key) ≡ base.
    let key_bools: Vec<bool> = key.bits().to_vec();
    assert!(base
        .equiv_random(&reparsed, &[], &key_bools, 16, 77)
        .expect("port shapes match"));
}

#[test]
fn inconsistent_oracle_is_detected() {
    // Oracle for a *different* function than the locked netlist implements:
    // no key can explain the observed I/O, and the attack reports it.
    let base = base_circuit(4);
    let locked = lock_random(&base, SchemeKind::XorLock, 3, 1).expect("lockable");
    // Build an oracle whose outputs are inverted.
    let inverted = {
        let mut b = netlist::CircuitBuilder::new("inv");
        let mut map = Vec::new();
        for (_, gate) in base.iter() {
            let id = match gate.kind() {
                netlist::GateKind::Input(_) => b.add_input(gate.name().to_owned()).unwrap(),
                kind => {
                    let fanin: Vec<netlist::GateId> =
                        gate.fanin().iter().map(|f| map[f.index()]).collect();
                    b.add_gate(gate.name().to_owned(), kind.clone(), &fanin)
                        .unwrap()
                }
            };
            map.push(id);
        }
        for &out in base.outputs() {
            let inv = b
                .add_gate(
                    format!("inv_{}", base.gate(out).name()),
                    netlist::GateKind::Not,
                    &[map[out.index()]],
                )
                .unwrap();
            b.mark_output(inv);
        }
        b.finish().unwrap()
    };
    let mut oracle = SimOracle::new(inverted);
    let err = attack(&locked.locked, &mut oracle, &AttackConfig::default());
    // Either the constraints become UNSAT mid-loop (OracleInconsistent) or —
    // if an inverting key assignment happens to exist — the attack finishes.
    // For XOR locking on multiple outputs, inversion of every output for
    // every input is not expressible, so inconsistency must surface.
    assert_eq!(err.unwrap_err(), AttackError::OracleInconsistent);
}

#[test]
fn budgeted_attack_reports_partial_work() {
    let base = base_circuit(5);
    let locked = lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 10, 4).expect("lockable");
    let config = AttackConfig {
        work_budget: Some(10_000),
        ..AttackConfig::default()
    };
    let result = attack_locked(&locked, &config).expect("attack runs");
    assert_eq!(result.outcome, AttackOutcome::BudgetExceeded);
    assert!(
        result.runtime.work >= 10_000,
        "work counted up to the budget"
    );
}

#[test]
fn recovered_key_may_differ_from_planted_key_but_is_equivalent() {
    // LUT pad inputs create don't-care key bits: the attack is free to
    // return any functionally correct completion.
    let base = base_circuit(6);
    let locked = lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 3, 8).expect("lockable");
    let result = attack_locked(&locked, &AttackConfig::default()).expect("attack runs");
    let key = result.key().expect("attack finishes");
    assert!(locked.verify_key(key).expect("verifies"));
    // The planted key also verifies, whether or not they coincide.
    assert!(locked.verify_key(&locked.key).expect("verifies"));
}

#[test]
fn dip_count_never_exceeds_input_space() {
    let locked = lock_random(&netlist::c17(), SchemeKind::XorLock, 6, 3).expect("lockable");
    let result = attack_locked(&locked, &AttackConfig::default()).expect("attack runs");
    assert!(result.iterations <= 32, "c17 has 2^5 input patterns");
    assert_eq!(result.oracle_queries, result.iterations);
}
