//! Differential testing of the SAT layer against the netlist simulator:
//! every `Sat` model of the de-obfuscation miter claims a concrete
//! disagreement witness — replaying it through `netlist` simulation must
//! reproduce that disagreement, or the CNF encoding and the simulator
//! have diverged.

use cnf::encode_miter;
use obfuscate::{lock_random, SchemeKind};
use sat::{Lit, SolveResult, Solver};

/// Solves the miter of `locked` for up to `max_models` distinguishing
/// models; for each, replays inputs and both keys through the simulator and
/// asserts the outputs differ. Returns how many models were checked.
fn check_miter_models(locked: &netlist::Circuit, max_models: usize) -> usize {
    let mut solver = Solver::new();
    let miter = encode_miter(locked, &mut solver);
    let mut checked = 0;
    while checked < max_models {
        let model = match solver.solve_with_assumptions(&[miter.diff_lit()]) {
            SolveResult::Sat(model) => model,
            SolveResult::Unsat => break,
            SolveResult::Unknown => panic!("no budget set; solver must decide"),
        };
        let dip: Vec<bool> = miter.inputs.iter().map(|&v| model.value(v)).collect();
        let key1: Vec<bool> = miter.key1.iter().map(|&v| model.value(v)).collect();
        let key2: Vec<bool> = miter.key2.iter().map(|&v| model.value(v)).collect();

        let out1 = locked.simulate_bool(&dip, &key1).expect("copy 1 simulates");
        let out2 = locked.simulate_bool(&dip, &key2).expect("copy 2 simulates");
        assert_ne!(
            out1, out2,
            "SAT said keys {key1:?} and {key2:?} disagree on {dip:?}, \
             but simulation produced identical outputs"
        );

        // The miter's own output variables must mirror the simulator too.
        let enc1: Vec<bool> = miter.outputs1.iter().map(|&v| model.value(v)).collect();
        let enc2: Vec<bool> = miter.outputs2.iter().map(|&v| model.value(v)).collect();
        assert_eq!(enc1, out1, "copy-1 CNF outputs disagree with simulation");
        assert_eq!(enc2, out2, "copy-2 CNF outputs disagree with simulation");

        // Ban this (dip, key1, key2) witness and look for another.
        let mut ban: Vec<Lit> = Vec::new();
        for (&var, &val) in miter
            .inputs
            .iter()
            .chain(&miter.key1)
            .chain(&miter.key2)
            .zip(dip.iter().chain(&key1).chain(&key2))
        {
            ban.push(if val {
                Lit::negative(var)
            } else {
                Lit::positive(var)
            });
        }
        solver.add_clause(ban);
        checked += 1;
    }
    checked
}

#[test]
fn miter_models_reproduce_under_simulation_for_xor_locking() {
    let locked = lock_random(&netlist::c17(), SchemeKind::XorLock, 3, 11).expect("lockable");
    let checked = check_miter_models(&locked.locked, 16);
    assert!(checked > 0, "an XOR-locked c17 miter must have DIPs");
}

#[test]
fn miter_models_reproduce_under_simulation_for_lut_locking() {
    let base = synth::iscas::circuit("c432", 0).expect("profile");
    let locked = lock_random(&base, SchemeKind::LutLock { lut_size: 3 }, 4, 5).expect("lockable");
    let checked = check_miter_models(&locked.locked, 8);
    assert!(checked > 0, "a LUT-locked c432 miter must have DIPs");
}

#[test]
fn miter_models_reproduce_under_simulation_for_mux_locking() {
    let base = synth::iscas::circuit("c432", 0).expect("profile");
    let locked = lock_random(&base, SchemeKind::MuxLock, 5, 2).expect("lockable");
    let checked = check_miter_models(&locked.locked, 8);
    assert!(checked > 0, "a MUX-locked c432 miter must have DIPs");
}
