//! Batched-vs-sequential equivalence battery for the multi-graph engine.
//!
//! The batched engine packs a mini-batch into one block-diagonal operator
//! and must be a pure re-bracketing of the per-instance arithmetic: for a
//! fixed batch layout, training and inference are **bit-identical** to the
//! instance-at-a-time reference engine (DESIGN.md §10); across *different*
//! layouts only the gradient summation order changes, so results agree to
//! floating-point re-association tolerance (1e-12). The forward pass has no
//! cross-instance reduction at all, so a prediction is bit-identical no
//! matter which neighbours share the batch — the property serve-side
//! micro-batching leans on.

use dataset::{generate, graph_features, DatasetConfig};
use icnet::{
    encode_features, train, Aggregation, BatchedGraph, CircuitGraph, FeatureSet, GradEngine,
    GraphModel, ModelKind, TrainConfig,
};
use std::sync::Arc;
use tensor::{CsrMatrix, Matrix};

fn demo_task() -> (Arc<CsrMatrix>, Vec<Matrix>, Vec<f64>) {
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = 12;
    let data = generate(&config).expect("demo dataset generates");
    let graph = CircuitGraph::from_circuit(&data.circuit);
    let op = Arc::new(ModelKind::ICNet.operator(&graph));
    let xs = graph_features(&data.circuit, &data.instances, FeatureSet::All);
    let ys = data.labels();
    (op, xs, ys)
}

/// Tiny deterministic xorshift so layouts are "random" but reproducible.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn batched_training_is_bit_identical_to_per_instance_on_a_real_dataset() {
    let (op, xs, ys) = demo_task();
    // batch_size 5 over 12 instances: two full chunks and a partial one, so
    // the partial-batch weighting path is on the hot path of this test.
    let run = |engine: GradEngine| {
        let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 16, 16, 5);
        let config = TrainConfig {
            max_epochs: 6,
            batch_size: 5,
            engine,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &op, &xs, &ys, &config);
        (report, model.predict_batch(&op, &xs))
    };
    let (ref_report, ref_preds) = run(GradEngine::PerInstance);
    let (bat_report, bat_preds) = run(GradEngine::Batched);
    assert!(!ref_report.diverged);
    assert_eq!(
        ref_report.loss_history, bat_report.loss_history,
        "per-epoch losses must be bit-identical for a fixed layout"
    );
    assert_eq!(
        ref_preds, bat_preds,
        "trained predictions must be bit-identical"
    );
}

#[test]
fn batched_training_matches_the_reference_for_every_convolution() {
    let (op, xs, ys) = demo_task();
    for kind in [
        ModelKind::Gcn,
        ModelKind::ChebNet { k: 3 },
        ModelKind::ICNet,
    ] {
        let run = |engine: GradEngine| {
            let mut model = GraphModel::new(kind, Aggregation::Mean, 7, 8, 8, 3);
            let config = TrainConfig {
                max_epochs: 3,
                batch_size: 4,
                engine,
                ..TrainConfig::default()
            };
            let report = train(&mut model, &op, &xs, &ys, &config);
            (report.loss_history, model.predict_batch(&op, &xs))
        };
        assert_eq!(
            run(GradEngine::PerInstance),
            run(GradEngine::Batched),
            "{kind:?} must train bit-identically under both engines"
        );
    }
}

#[test]
fn forward_values_are_independent_of_co_batched_neighbors() {
    let (op, xs, _) = demo_task();
    let model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 16, 16, 9);
    let baseline: Vec<f64> = xs.iter().map(|x| model.predict(&op, x)).collect();

    // Three random layouts: shuffle the instances, then split them into
    // random-size groups. Every instance must predict exactly its solo
    // value regardless of which neighbours share its block-diagonal batch.
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for round in 0..3 {
        let mut order: Vec<usize> = (0..xs.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i + 1));
        }
        let mut cursor = 0;
        while cursor < order.len() {
            let size = (1 + rng.below(5)).min(order.len() - cursor);
            let group = &order[cursor..cursor + size];
            cursor += size;
            let batch = BatchedGraph::replicate(&op, group.len());
            let grouped: Vec<&Matrix> = group.iter().map(|&i| &xs[i]).collect();
            let values = model.predict_batched(&batch, &grouped);
            for (&i, value) in group.iter().zip(&values) {
                assert_eq!(
                    baseline[i].to_bits(),
                    value.to_bits(),
                    "instance {i} changed in round {round} group {group:?}"
                );
            }
        }
    }
}

#[test]
fn heterogeneous_graphs_batch_bit_identically() {
    // Two genuinely different graphs in one block-diagonal batch: the demo
    // dataset circuit next to c17. Each must predict its solo value.
    let (op_a, xs_a, _) = demo_task();
    let c17 = netlist::c17();
    let graph_b = CircuitGraph::from_circuit(&c17);
    let op_b = Arc::new(ModelKind::ICNet.operator(&graph_b));
    let x_b = encode_features(&c17, &[c17.find("n10").expect("gate")], FeatureSet::All);

    let model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 16, 16, 11);
    let solo_a = model.predict(&op_a, &xs_a[0]);
    let solo_b = model.predict(&op_b, &x_b);

    let batch = BatchedGraph::from_ops(&[op_a.as_ref(), op_b.as_ref()]);
    let values = model.predict_batched(&batch, &[&xs_a[0], &x_b]);
    assert_eq!(values[0].to_bits(), solo_a.to_bits());
    assert_eq!(values[1].to_bits(), solo_b.to_bits());
}

#[test]
fn permuted_batch_layouts_agree_to_reassociation_tolerance() {
    // Permuting the instances inside one full batch changes only the order
    // of the gradient reduction — a floating-point re-association. The two
    // trainings are not bit-identical, but must track each other to 1e-12.
    let (op, xs, ys) = demo_task();
    let n = xs.len();
    let mut rng = XorShift(0x2545f4914f6cdd1d);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.below(i + 1));
    }
    assert_ne!(
        perm,
        (0..n).collect::<Vec<_>>(),
        "permutation is nontrivial"
    );

    let run = |order: &[usize]| {
        let xs_o: Vec<Matrix> = order.iter().map(|&i| xs[i].clone()).collect();
        let ys_o: Vec<f64> = order.iter().map(|&i| ys[i]).collect();
        let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 16, 16, 5);
        let config = TrainConfig {
            max_epochs: 3,
            batch_size: n, // one full batch per epoch: same *set*, new order
            engine: GradEngine::Batched,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &op, &xs_o, &ys_o, &config);
        (report.loss_history, model.predict_batch(&op, &xs))
    };
    let identity: Vec<usize> = (0..n).collect();
    let (loss_a, preds_a) = run(&identity);
    let (loss_b, preds_b) = run(&perm);

    let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0);
    for (e, (&a, &b)) in loss_a.iter().zip(&loss_b).enumerate() {
        assert!(close(a, b), "epoch {e} loss drifted: {a} vs {b}");
    }
    for (i, (&a, &b)) in preds_a.iter().zip(&preds_b).enumerate() {
        assert!(close(a, b), "prediction {i} drifted: {a} vs {b}");
    }
}
