//! The deterministic parallel training & evaluation engine, end to end:
//! bit-identical serial-vs-parallel training on a real generated dataset,
//! job-count invariance of the Table I/II suite, the wall-clock speedup the
//! fan-out exists for, and divergence surfacing as N/A instead of NaN.

use bench::harness::{evaluate_gnn_with, run_mse_suite, run_mse_suite_jobs, EvalResult};
use bench::methods::BaselineKind;
use dataset::{generate, graph_features, train_test_split, Dataset, DatasetConfig};
use icnet::{train, Aggregation, CircuitGraph, FeatureSet, GraphModel, ModelKind, TrainConfig};
use std::sync::Arc;
use std::time::Instant;

fn demo_dataset(instances: usize) -> Dataset {
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = instances;
    generate(&config).expect("demo dataset generates")
}

#[test]
fn parallel_training_is_bit_identical_to_serial_on_a_real_dataset() {
    let data = demo_dataset(10);
    let graph = CircuitGraph::from_circuit(&data.circuit);
    let op = Arc::new(ModelKind::ICNet.operator(&graph));
    let xs = graph_features(&data.circuit, &data.instances, FeatureSet::All);
    let ys = data.labels();

    let run = |jobs: usize| {
        let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 16, 16, 5);
        let config = TrainConfig {
            max_epochs: 8,
            jobs,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &op, &xs, &ys, &config);
        (report, model.predict_batch(&op, &xs))
    };

    let (serial_report, serial_preds) = run(1);
    assert!(!serial_report.diverged);
    for jobs in [2, 4] {
        let (report, preds) = run(jobs);
        assert_eq!(
            serial_report.loss_history, report.loss_history,
            "loss history must be bit-identical at jobs={jobs}"
        );
        assert_eq!(
            serial_preds, preds,
            "predictions must be bit-identical at jobs={jobs}"
        );
    }
}

#[test]
fn mse_suite_is_independent_of_jobs() {
    let data = demo_dataset(12);
    let roster = [BaselineKind::Lr, BaselineKind::Rr, BaselineKind::Theil];
    let serial = run_mse_suite(&data, &roster, 3, 2);
    let parallel = run_mse_suite_jobs(&data, &roster, 3, 2, 4);
    assert_eq!(serial.len(), parallel.len());
    let key = |r: &EvalResult| {
        (
            r.method.clone(),
            r.feature_set.label().to_owned(),
            r.aggregation.clone(),
            r.mse,
            r.note.clone(),
        )
    };
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(key(a), key(b));
    }
}

#[test]
fn four_suite_workers_beat_serial() {
    // The suite is 22 self-contained cells; with four workers the wall
    // clock should approach a 4x cut. As in integration_parallel, the
    // speedup assertion only applies where the hardware can express it —
    // everywhere else the run still verifies job-count invariance.
    let data = demo_dataset(12);
    let roster = [BaselineKind::Lr, BaselineKind::Rr];

    let warm = run_mse_suite_jobs(&data, &roster, 4, 1, 1); // prime allocator/caches
    let start = Instant::now();
    let serial = run_mse_suite_jobs(&data, &roster, 4, 1, 1);
    let serial_time = start.elapsed();
    assert_eq!(warm.len(), serial.len());

    let start = Instant::now();
    let parallel = run_mse_suite_jobs(&data, &roster, 4, 1, 4);
    let parallel_time = start.elapsed();

    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.mse, b.mse, "{} {}", a.method, a.aggregation);
    }
    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "4 suite workers must be at least 2x faster on {cores} cores (serial \
             {serial_time:.2?}, parallel {parallel_time:.2?}, speedup {speedup:.2}x)"
        );
    } else {
        eprintln!(
            "# speedup assertion skipped: {cores} core(s) available \
             (measured {speedup:.2}x; serial {serial_time:.2?}, parallel {parallel_time:.2?})"
        );
    }
}

#[test]
fn divergent_training_surfaces_as_na_not_nan() {
    let data = demo_dataset(10);
    let split = train_test_split(data.instances.len(), 0.25, 1);
    let config = TrainConfig {
        max_epochs: 10,
        lr: 1e80, // absurd on purpose: overflows after the first step
        ..TrainConfig::default()
    };
    let (result, trained) = evaluate_gnn_with(
        &data,
        &split,
        ModelKind::ICNet,
        Aggregation::Nn,
        FeatureSet::All,
        &config,
        1,
    );
    assert!(result.mse.is_none(), "diverged cell must be N/A");
    assert!(result.note.contains("diverged"));
    assert!(
        trained.model.params().iter().all(|p| p.is_finite()),
        "the poisoned update must never be applied"
    );
}
