//! Differential testing of the CDCL core against an independent reference.
//!
//! The arena-backed CDCL solver in `sat` is the engine every runtime label
//! in the dataset depends on, so its verdicts are cross-checked here against
//! `sat::naive` — a deliberately simple DPLL solver sharing no code or data
//! structures with it — over three instance shapes:
//!
//! 1. random 3-CNF around the phase-transition density,
//! 2. random mixed-width CNF (units through 5-literal clauses),
//! 3. de-obfuscation miter formulas from locked circuits (the shape the
//!    SAT attack actually solves).
//!
//! Every case interleaves [`sat::Solver::preprocess`] with clause addition,
//! and every SAT model is re-checked against the *pre-simplification* clause
//! list, so subsumption, self-subsuming resolution, probing, and arena GC
//! must all preserve models — not just verdicts. Each shape runs 256 cases
//! under proptest's deterministic seeding.

use cnf::{encode_miter, ClauseSink, CnfFormula};
use proptest::prelude::*;
use sat::naive::{self, NaiveResult};
use sat::{Lit, SolveResult, Solver};

/// Checks the new core against the naive reference on one formula given as
/// DIMACS-style integer clauses. Preprocessing is interleaved with clause
/// addition, and any SAT model is validated against the raw clause list.
fn differential_check(nv: usize, clauses: &[Vec<i64>], naive_budget: u64) -> Result<(), String> {
    let lits: Vec<Vec<Lit>> = clauses
        .iter()
        .map(|c| c.iter().map(|&l| Lit::from_dimacs(l)).collect())
        .collect();

    let mut solver = Solver::new();
    solver.new_vars(nv);
    // Eager GC so compaction actually runs on these small instances.
    solver.set_gc_fraction(0.0);
    let half = lits.len() / 2;
    for clause in &lits[..half] {
        solver.add_clause(clause.iter().copied());
    }
    solver.preprocess();
    for clause in &lits[half..] {
        solver.add_clause(clause.iter().copied());
    }
    solver.preprocess();
    let verdict = solver.solve();

    match &verdict {
        SolveResult::Sat(model) => {
            // Model soundness against the original, pre-simplification
            // clauses (the solver's internal DB may have rewritten them all).
            for clause in &lits {
                if !clause.iter().any(|&l| model.lit_value(l)) {
                    return Err(format!("model violates original clause {clause:?}"));
                }
            }
        }
        SolveResult::Unsat => {}
        SolveResult::Unknown => return Err("no budget set; solver must decide".into()),
    }

    match naive::solve(nv, &lits, naive_budget) {
        NaiveResult::Sat(m) => {
            if verdict.is_unsat() {
                return Err(format!("CDCL says UNSAT but naive DPLL found model {m}"));
            }
        }
        NaiveResult::Unsat => {
            if verdict.is_sat() {
                return Err("CDCL says SAT but naive DPLL proved UNSAT".into());
            }
        }
        NaiveResult::Unknown => {} // reference ran out of budget: skip agreement
    }
    Ok(())
}

/// Random 3-CNF around the m/n ≈ 4.3 phase transition (mixed verdicts).
fn cnf3_strategy() -> impl Strategy<Value = (usize, Vec<Vec<i64>>)> {
    (4usize..16).prop_flat_map(|nv| {
        let clause = proptest::collection::vec(
            (1i64..=nv as i64).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
            3..4,
        );
        proptest::collection::vec(clause, nv * 3..nv * 5).prop_map(move |cs| (nv, cs))
    })
}

/// Random mixed-width CNF: unit through 5-literal clauses, duplicates and
/// tautologies included — exercising add-time simplification too.
fn mixed_cnf_strategy() -> impl Strategy<Value = (usize, Vec<Vec<i64>>)> {
    (2usize..14).prop_flat_map(|nv| {
        let clause = proptest::collection::vec(
            (1i64..=nv as i64).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
            1..6,
        );
        proptest::collection::vec(clause, 1..40).prop_map(move |cs| (nv, cs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_3cnf_agrees_with_naive_reference((nv, clauses) in cnf3_strategy()) {
        if let Err(msg) = differential_check(nv, &clauses, 2_000_000) {
            prop_assert!(false, "{} (nv={nv}, clauses={clauses:?})", msg);
        }
    }

    #[test]
    fn random_mixed_cnf_agrees_with_naive_reference((nv, clauses) in mixed_cnf_strategy()) {
        if let Err(msg) = differential_check(nv, &clauses, 2_000_000) {
            prop_assert!(false, "{} (nv={nv}, clauses={clauses:?})", msg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Miter formulas — the exact shape the SAT attack solves: two copies of
    /// a locked circuit sharing inputs, constrained to disagree on an
    /// output. SAT means two keys are distinguishable; models must satisfy
    /// the full Tseitin encoding as captured *before* the solver saw it.
    #[test]
    fn miter_formulas_agree_with_naive_reference(
        seed in 0u64..100_000,
        num_keys in 1usize..3,
        gates in 6usize..16,
        scheme in prop_oneof![
            Just(obfuscate::SchemeKind::XorLock),
            Just(obfuscate::SchemeKind::MuxLock),
            Just(obfuscate::SchemeKind::LutLock { lut_size: 2 }),
        ],
    ) {
        let base = synth::generate(
            &synth::GeneratorConfig::new("p", 3, 2, gates).with_seed(seed),
        );
        let Ok(locked) = obfuscate::lock_random(&base, scheme, num_keys, seed) else {
            // Circuit too small for this scheme/key count: nothing to check.
            return Ok(());
        };
        // Capture the encoding as a plain clause list first…
        let mut formula = CnfFormula::new();
        let enc = encode_miter(&locked.locked, &mut formula);
        formula.add_sink_clause(&[enc.diff_lit()]);
        // …then replay the identical clauses through both solvers.
        let clauses: Vec<Vec<i64>> = formula
            .clauses()
            .iter()
            .map(|c| c.iter().map(|l| l.to_dimacs()).collect())
            .collect();
        if let Err(msg) = differential_check(formula.num_vars(), &clauses, 4_000_000) {
            prop_assert!(
                false,
                "{} (seed={seed}, keys={num_keys}, gates={gates}, scheme={scheme:?})",
                msg
            );
        }
    }
}

/// End-to-end determinism pin: the full SAT attack run twice on the same
/// instance must produce identical iteration counts, solver counters, and
/// key — across arena GC, preprocessing, restarts, and clause deletion.
#[test]
fn attack_is_deterministic_across_runs() {
    let locked = obfuscate::lock_random(&netlist::c17(), obfuscate::SchemeKind::XorLock, 4, 7)
        .expect("lockable");
    let run = || attack::attack_locked(&locked, &attack::AttackConfig::default()).expect("attack");
    let (a, b) = (run(), run());
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.solver_stats, b.solver_stats);
    assert_eq!(a.key(), b.key());
    assert_eq!(a.key().expect("recovered"), &locked.key);
}
