//! The observability sink must be observation-only: running the full
//! attack→dataset→training→harness pipeline with tracing enabled has to
//! produce a byte-identical dataset and bit-identical trained parameters,
//! while the JSONL trace captures every instrumented layer.

use bench::harness::{evaluate_gnn, load_or_generate_parallel, run_mse_suite_jobs};
use bench::methods::BaselineKind;
use dataset::{dataset_to_csv, generate_parallel_with, train_test_split, DatasetConfig};
use icnet::{Aggregation, FeatureSet, ModelKind};
use std::path::PathBuf;
use std::sync::Mutex;

/// The obs sink is process-global; tests in this binary must not overlap.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("icnet_integration_observability")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every trained parameter as raw bits, for exact comparison.
fn param_bits(model: &icnet::GraphModel) -> Vec<u64> {
    model
        .params()
        .iter()
        .flat_map(|m| m.as_slice().iter().map(|v| v.to_bits()))
        .collect()
}

/// Extracts the integer following `key` in a JSONL line.
fn field_u64(line: &str, key: &str) -> u64 {
    let start = line
        .find(key)
        .unwrap_or_else(|| panic!("missing {key} in {line}"))
        + key.len();
    line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn tracing_is_invisible_to_results_and_captures_every_event_family() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = DatasetConfig::quick_demo();
    let epochs = 6;
    let seed = 7;

    // Reference run with the sink disabled.
    assert!(!obs::enabled(), "sink must start disabled");
    let (reference, _) = generate_parallel_with(&config, 2, None).expect("reference sweep");
    let reference_csv = dataset_to_csv(&reference.instances);
    let split = train_test_split(reference.instances.len(), 0.25, seed);
    let (_, trained) = evaluate_gnn(
        &reference,
        &split,
        ModelKind::ICNet,
        Aggregation::Nn,
        FeatureSet::All,
        epochs,
        seed,
    );
    let reference_params = param_bits(&trained.model);

    // The same pipeline with the sink collecting a trace.
    let dir = tmp_dir("trace");
    let trace_path = dir.join("trace.jsonl");
    obs::init(obs::ObsConfig {
        trace: Some(trace_path.display().to_string()),
        progress: false,
    });

    let (traced, _) = generate_parallel_with(&config, 2, None).expect("traced sweep");
    assert_eq!(
        dataset_to_csv(&traced.instances),
        reference_csv,
        "tracing must not perturb the generated dataset"
    );
    let (_, retrained) = evaluate_gnn(
        &traced,
        &split,
        ModelKind::ICNet,
        Aggregation::Nn,
        FeatureSet::All,
        epochs,
        seed,
    );
    assert_eq!(
        param_bits(&retrained.model),
        reference_params,
        "tracing must not perturb trained parameters"
    );

    // Exercise the harness layer too, so bench.* events appear: a cache
    // miss + write, then a one-baseline suite.
    let out_dir = dir.join("out");
    let harness_data = load_or_generate_parallel(&config, out_dir.to_str().unwrap(), 2, None);
    assert_eq!(dataset_to_csv(&harness_data.instances), reference_csv);
    let results = run_mse_suite_jobs(&harness_data, &[BaselineKind::Lr], epochs, seed, 1);
    assert!(!results.is_empty());

    let summary = obs::finish().expect("sink was initialised");
    assert!(summary.events > 0);
    assert!(summary.trace_error.is_none(), "{:?}", summary.trace_error);

    // The trace parses line by line, is time-ordered, and contains events
    // from every instrumented layer of the pipeline.
    let text = std::fs::read_to_string(&trace_path).expect("trace written");
    let mut last_ts = 0u64;
    let mut lines = 0u64;
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        let ts = field_u64(line, "\"ts\":");
        assert!(ts >= last_ts, "timestamps must be nondecreasing");
        last_ts = ts;
        lines += 1;
    }
    assert_eq!(lines, summary.events, "trace length matches summary");
    for kind in [
        "solver.progress",
        "attack.iteration",
        "dataset.instance.start",
        "dataset.instance.finish",
        "train.epoch",
        "bench.cache",
        "bench.cell.start",
        "bench.cell.finish",
    ] {
        assert!(
            text.contains(&format!("\"kind\":\"{kind}\"")),
            "trace must contain {kind} events"
        );
    }

    // The rendered profile names the pipeline stages it aggregated.
    let rendered = summary.render();
    assert!(rendered.contains("observability profile"), "{rendered}");
}

#[test]
fn finish_without_init_returns_no_summary() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert!(obs::finish().is_none());
}
