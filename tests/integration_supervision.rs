//! Supervised sweeps, end to end: a deliberately panicking oracle and a
//! deliberately timing-out instance in one multi-worker sweep must cost
//! exactly their own labels — every healthy instance completes, both
//! failures land as typed quarantine records in the sweep report (and the
//! checkpoint log), the process exits cleanly, and a resumed sweep skips
//! exactly the quarantined instances.

use dataset::{
    generate, generate_parallel_with, CheckpointLog, DatasetConfig, FailureKind, RetryPolicy,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const PANICKY: usize = 2;
const SLUGGISH: usize = 5;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("icnet_integration_supervision");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// An 8-instance sweep where instance [`PANICKY`] panics on every attempt
/// and instance [`SLUGGISH`] exceeds a wall-clock deadline on every attempt
/// (through the real deadline code path — the hook only shrinks the
/// deadline to zero before delegating to the genuine attack).
fn faulty_config() -> DatasetConfig {
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = 8;
    config.retry = RetryPolicy {
        max_attempts: 2,
        escalation: 2,
    };
    config.attack_hook = Some(Arc::new(|index, locked, cfg| match index {
        PANICKY => panic!("injected oracle explosion at instance {index}"),
        SLUGGISH => {
            let mut hobbled = cfg.clone();
            hobbled.deadline = Some(Duration::ZERO);
            attack::attack_locked(locked, &hobbled)
        }
        _ => attack::attack_locked(locked, cfg),
    }));
    config
}

/// The labels the healthy instances of [`faulty_config`] must produce:
/// the clean serial sweep minus the two sick indices.
fn healthy_subset() -> Vec<dataset::Instance> {
    let mut clean = faulty_config();
    clean.attack_hook = None;
    let baseline = generate(&clean).expect("clean sweep");
    baseline
        .instances
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != PANICKY && *i != SLUGGISH)
        .map(|(_, inst)| inst)
        .collect()
}

#[test]
fn sick_instances_cost_their_own_labels_for_every_worker_count() {
    let config = faulty_config();
    let expected = healthy_subset();
    for jobs in [1, 2, 4] {
        let (data, report) =
            generate_parallel_with(&config, jobs, None).expect("keep-going sweep completes");
        assert_eq!(
            data.instances, expected,
            "healthy labels byte-identical to the clean sweep (jobs={jobs})"
        );
        assert_eq!(report.quarantined(), 2, "jobs={jobs}");
        let kinds: Vec<(usize, FailureKind)> = report
            .failures
            .iter()
            .map(|f| (f.index, f.failure.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (PANICKY, FailureKind::Panic),
                (SLUGGISH, FailureKind::Timeout)
            ],
            "jobs={jobs}"
        );
        assert!(report.failures.iter().all(|f| f.failure.attempts == 2));
        assert!(report
            .summary()
            .contains(&format!("quarantined instance {PANICKY}")));
    }
}

#[test]
fn resume_skips_exactly_the_quarantined_instances() {
    let config = faulty_config();
    let path = tmp("quarantine_resume.ckpt");

    let mut log = CheckpointLog::open(&path).unwrap();
    let (first, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
    assert_eq!(report.attacked(), 6);
    assert_eq!(report.quarantined(), 2);
    assert_eq!(log.len(), 6, "six labels on record");
    assert_eq!(log.num_quarantined(), 2, "two quarantines on record");
    drop(log);

    // The replay must not re-attack anything: labels are reused from the
    // log, quarantines are replayed from the log (the hook would panic
    // again if the sick instances re-ran — reaching the hook at all would
    // burn wall-clock on the sluggish one, and the panicky one is cheap
    // but must still be skipped by record, which `reused` proves).
    let mut log = CheckpointLog::open(&path).unwrap();
    let (second, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
    assert_eq!(report.attacked(), 0, "nothing re-attacked on resume");
    assert_eq!(report.reused(), 6);
    assert_eq!(report.quarantined(), 2);
    assert!(
        report.failures.iter().all(|f| f.reused),
        "both quarantines replayed from the checkpoint log"
    );
    assert_eq!(first, second, "resumed dataset is byte-identical");
}

#[test]
fn raising_the_deadline_reattacks_quarantined_instances_on_resume() {
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = 4;
    config.retry = RetryPolicy {
        max_attempts: 1,
        escalation: 2,
    };
    config.attack.deadline = Some(Duration::ZERO); // everything times out
    let path = tmp("raised_deadline.ckpt");

    let mut log = CheckpointLog::open(&path).unwrap();
    let (data, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
    assert!(data.instances.is_empty());
    assert_eq!(report.quarantined(), 4);
    assert_eq!(log.num_quarantined(), 4);
    drop(log);

    // Same --resume log, generous deadline: the quarantine verdicts were
    // reached under a tighter supervision policy and must not be trusted —
    // every instance deserves another attack.
    config.attack.deadline = Some(Duration::from_secs(600));
    let mut log = CheckpointLog::open(&path).unwrap();
    let (data, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
    assert_eq!(report.quarantined(), 0, "no stale quarantine replayed");
    assert_eq!(report.attacked(), 4, "every instance re-attacked");
    assert_eq!(data.instances.len(), 4);

    // The recovered labels are byte-identical to a deadline-free sweep:
    // deadlines decide whether an attack finishes, never what label a
    // finished attack gets.
    let mut clean = config.clone();
    clean.attack.deadline = None;
    assert_eq!(data.instances, generate(&clean).unwrap().instances);
}

#[test]
fn no_keep_going_aborts_on_the_first_sick_instance() {
    let mut config = faulty_config();
    config.keep_going = false;
    match generate_parallel_with(&config, 2, None) {
        Err(dataset::DatasetError::Quarantined { instance, .. }) => {
            assert!(
                instance == PANICKY || instance == SLUGGISH,
                "the fatal quarantine names a sick instance, got {instance}"
            );
        }
        other => panic!("expected a fatal quarantine, got {other:?}"),
    }
}

/// Conflict-free instances (pure equivalence chains) generate zero
/// conflicts, so the solver's conflict-interval deadline check never fires;
/// the arena-core rewrite must keep polling the clock on the propagation
/// axis (the PR 4 fix) or a supervised sweep would hang on such instances.
#[test]
fn conflict_free_solves_still_hit_the_deadline_on_the_propagation_axis() {
    use sat::{Lit, SolveResult, Solver};

    // 600 chains of 400 equivalences: ~240k propagations per decision
    // cascade, no conflicts ever, and the all-false model is consistent.
    let mut solver = Solver::new();
    let chains = 600usize;
    let len = 400usize;
    solver.new_vars(chains * len);
    for c in 0..chains {
        for i in 0..len - 1 {
            let a = Lit::from_dimacs((c * len + i + 1) as i64);
            let b = Lit::from_dimacs((c * len + i + 2) as i64);
            solver.add_clause([!a, b]);
            solver.add_clause([a, !b]);
        }
    }
    let start = std::time::Instant::now();
    solver.set_deadline(Some(start + Duration::from_millis(5)));
    let verdict = solver.solve();
    let elapsed = start.elapsed();
    assert_eq!(solver.stats().conflicts, 0, "chains never conflict");
    // The only way to stop a conflict-free solve is the propagation-axis
    // poll; a generous wall-clock bound keeps this robust under parallel
    // test load while still catching an unbounded overshoot (the full
    // solve takes far longer than this in debug builds).
    assert_eq!(
        verdict,
        SolveResult::Unknown,
        "deadline must stop the solve"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "overshoot: a 5ms deadline took {elapsed:?}"
    );
    // The solver survives the expired deadline and stays usable.
    solver.set_deadline(None);
    assert!(matches!(solver.solve(), SolveResult::Sat(_)));
}

#[test]
fn deadline_quarantines_are_not_censored_labels() {
    // A wall-clock timeout must never be labeled (its partial runtime is
    // machine-dependent); a deterministic budget exhaustion must still be.
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = 4;
    config.retry = RetryPolicy {
        max_attempts: 1,
        escalation: 2,
    };
    config.attack.work_budget = Some(1); // everything budget-exhausts
    let (data, report) = generate_parallel_with(&config, 2, None).unwrap();
    assert_eq!(report.quarantined(), 0);
    assert_eq!(data.instances.len(), 4);
    assert!(data.instances.iter().all(|i| i.censored));

    config.attack.work_budget = None;
    config.attack.deadline = Some(Duration::ZERO); // everything times out
    let (data, report) = generate_parallel_with(&config, 2, None).unwrap();
    assert_eq!(report.quarantined(), 4);
    assert!(data.instances.is_empty());
    assert!(report
        .failures
        .iter()
        .all(|f| f.failure.kind == FailureKind::Timeout));
}
