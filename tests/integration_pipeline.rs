//! End-to-end ML pipeline integration: dataset generation → encoding →
//! training → held-out evaluation, spanning the dataset, icnet, regress,
//! and bench crates.

use bench::harness::{evaluate_baselines, evaluate_gnn, take};
use bench::methods::BaselineKind;
use dataset::{
    dataset_from_csv, dataset_to_csv, flat_features, generate, train_test_split, DatasetConfig,
    FlatAggregation, StructureEncoding,
};
use icnet::{Aggregation, FeatureSet, ModelKind};
use regress::metrics;

fn demo_dataset(n: usize) -> dataset::Dataset {
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = n;
    config.key_range = (1, 10);
    generate(&config).expect("demo dataset generates")
}

#[test]
fn icnet_beats_the_mean_predictor_on_held_out_data() {
    // LUT locking over a wide key range gives the labels enough dynamic
    // range that learning is distinguishable from predicting the mean.
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = 32;
    config.scheme = obfuscate::SchemeKind::LutLock { lut_size: 2 };
    config.key_range = (1, 20);
    let data = generate(&config).expect("demo dataset generates");
    let split = train_test_split(data.instances.len(), 0.25, 3);
    let y = data.labels();
    let y_test = take(&y, &split.test);
    let y_train = take(&y, &split.train);
    let mean = y_train.iter().sum::<f64>() / y_train.len() as f64;
    let mean_mse = metrics::mse(&vec![mean; y_test.len()], &y_test);

    let (result, _) = evaluate_gnn(
        &data,
        &split,
        ModelKind::ICNet,
        Aggregation::Nn,
        FeatureSet::All,
        250,
        3,
    );
    let icnet_mse = result.mse.expect("gnn always fits");
    assert!(
        icnet_mse < mean_mse,
        "ICNet-NN ({icnet_mse:.4}) must beat the mean predictor ({mean_mse:.4})"
    );
}

#[test]
fn baselines_learn_the_key_count_signal() {
    // The flat sum encoding exposes #selected gates; linear models must pick
    // it up and beat the mean predictor. LUT locking over a wide key range
    // keeps the key-count/runtime correlation strong (~0.9) — the XOR demo
    // config's labels barely vary on c432 and make this assertion split-luck.
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = 28;
    config.scheme = obfuscate::SchemeKind::LutLock { lut_size: 2 };
    config.key_range = (1, 20);
    let data = generate(&config).expect("demo dataset generates");
    let split = train_test_split(data.instances.len(), 0.25, 4);
    let y = data.labels();
    let y_test = take(&y, &split.test);
    let y_train = take(&y, &split.train);
    let mean = y_train.iter().sum::<f64>() / y_train.len() as f64;
    let mean_mse = metrics::mse(&vec![mean; y_test.len()], &y_test);

    let results = evaluate_baselines(
        &data,
        &split,
        &[BaselineKind::Lr, BaselineKind::Rr],
        FeatureSet::Location,
        FlatAggregation::Sum,
    );
    for result in results {
        let mse = result.mse.expect("fits");
        assert!(
            mse < mean_mse,
            "{} ({mse:.4}) must beat the mean predictor ({mean_mse:.4})",
            result.method
        );
    }
}

#[test]
fn dataset_round_trips_through_csv() {
    let data = demo_dataset(6);
    let text = dataset_to_csv(&data.instances);
    let parsed = dataset_from_csv(&text).expect("parses back");
    assert_eq!(parsed, data.instances);
    // The circuit is regenerable from its profile + seed.
    let config = DatasetConfig::quick_demo();
    let circuit = synth::iscas::circuit(&config.profile, config.circuit_seed).expect("profile");
    assert_eq!(circuit, data.circuit);
}

#[test]
fn flat_and_graph_encodings_agree_on_the_mask_count() {
    let data = demo_dataset(5);
    let flat = flat_features(
        &data.circuit,
        &data.instances,
        FeatureSet::Location,
        StructureEncoding::Adjacency,
        FlatAggregation::Sum,
    );
    let n = data.circuit.num_gates();
    for (row, inst) in data.instances.iter().enumerate() {
        assert_eq!(
            flat.get(row, n),
            inst.num_selected() as f64,
            "mask column aggregates to the key-gate count"
        );
    }
}

#[test]
fn labels_are_log_scale_and_censoring_is_flagged() {
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = 6;
    config.key_range = (8, 12);
    config.attack.work_budget = Some(1_000); // absurdly tight: all censored
    let data = generate(&config).expect("generates");
    assert!(data.censored_fraction() > 0.9);
    for inst in &data.instances {
        assert!((inst.log_seconds - inst.seconds.max(1e-6).ln()).abs() < 1e-12);
    }
}

#[test]
fn attention_distribution_is_a_probability_vector() {
    let data = demo_dataset(16);
    let split = train_test_split(data.instances.len(), 0.25, 9);
    let (_, model) = evaluate_gnn(
        &data,
        &split,
        ModelKind::ICNet,
        Aggregation::Nn,
        FeatureSet::All,
        60,
        9,
    );
    let attn = model.feature_attention().expect("NN aggregation");
    assert_eq!(attn.len(), 7);
    assert!((attn.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(attn.iter().all(|&a| a >= 0.0));
}

#[test]
fn gcn_chebnet_icnet_all_produce_finite_mse() {
    let data = demo_dataset(16);
    let split = train_test_split(data.instances.len(), 0.25, 2);
    for kind in [
        ModelKind::Gcn,
        ModelKind::ChebNet { k: 2 },
        ModelKind::ICNet,
    ] {
        for agg in [Aggregation::Sum, Aggregation::Mean, Aggregation::Nn] {
            let (result, _) = evaluate_gnn(&data, &split, kind, agg, FeatureSet::All, 30, 2);
            assert!(
                result.mse.expect("fits").is_finite(),
                "{kind} {agg} must produce a finite MSE"
            );
        }
    }
}
