//! End-to-end degradation matrix for the prediction service (`crates/serve`).
//!
//! Each test drives a real multi-threaded server over real TCP through one
//! row of the robustness contract: overload sheds without blocking the
//! acceptor, expired deadlines come back typed with the worker surviving,
//! malformed/oversized/truncated input gets a typed refusal, an injected
//! worker death self-heals, and cancellation drains in-flight work before
//! refusing new requests.
//!
//! The fault-injection registry is process-global, and every server hits
//! the `serve.*` sites on its hot path — so *every* test here serializes on
//! [`FAULT_LOCK`], not just the ones that arm a plan.

use serve::protocol::{self, write_frame, FrameType, MAGIC};
use serve::{
    ErrorCode, LoadgenConfig, ModelRegistry, Reply, Request, ServeConfig, Server, Workload,
};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Disarms the fault plan when a test exits, pass or panic.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        faults::disarm();
    }
}

fn demo_registry() -> ModelRegistry {
    let model = icnet::GraphModel::new(
        icnet::ModelKind::Gcn,
        icnet::Aggregation::Sum,
        icnet::NUM_FEATURES_ALL,
        8,
        8,
        7,
    );
    ModelRegistry::from_models([("demo".to_owned(), model)]).expect("demo registry")
}

fn start_server(config: ServeConfig) -> Server {
    Server::start(demo_registry(), config).expect("server binds")
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
}

fn valid_request(deadline_ms: u32) -> Request {
    Request {
        model: "demo".to_owned(),
        deadline_ms,
        mask: vec!["n10".to_owned()],
        bench: netlist::c17().to_bench(),
    }
}

fn expect_prediction(reply: Reply) -> f64 {
    match reply {
        Reply::Prediction { value, .. } => {
            assert!(value.is_finite(), "prediction must be finite: {value}");
            value
        }
        other => panic!("expected a prediction, got {other:?}"),
    }
}

fn expect_error(reply: Reply, code: ErrorCode) -> String {
    match reply {
        Reply::Error { code: got, message } => {
            assert_eq!(got, code, "wrong error code: {message}");
            message
        }
        other => panic!("expected {code:?}, got {other:?}"),
    }
}

#[test]
fn predictions_flow_over_tcp_and_connections_are_reusable() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = start_server(ServeConfig {
        workers: 3,
        ..ServeConfig::default()
    });

    let mut stream = connect(&server);
    protocol::ping(&mut stream).expect("ping answers");
    let first = expect_prediction(protocol::call(&mut stream, &valid_request(0)).unwrap());
    // Same connection, second request: workers serve frames, not sockets.
    let second = expect_prediction(protocol::call(&mut stream, &valid_request(0)).unwrap());
    assert_eq!(first, second, "identical requests predict identically");
    drop(stream);

    let stats = server.shutdown();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.worker_deaths, 0);
}

#[test]
fn overload_sheds_typed_errors_and_the_acceptor_never_blocks() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = start_server(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });

    // Occupy the only worker: an open connection that sends nothing keeps
    // it parked in read_frame until we hang up.
    let busy = connect(&server);
    std::thread::sleep(Duration::from_millis(100));
    // Fill the one queue slot.
    let mut queued = connect(&server);
    std::thread::sleep(Duration::from_millis(100));

    // Everything beyond the queue must shed *promptly* with a typed error —
    // if the acceptor were blocked behind the stuck worker, these reads
    // would time out instead.
    for _ in 0..3 {
        let mut extra = connect(&server);
        let shed_started = Instant::now();
        write_frame(&mut extra, FrameType::Predict, &valid_request(0).encode()).unwrap();
        let reply = protocol::read_reply(&mut extra).expect("shed reply arrives");
        let message = expect_error(reply, ErrorCode::Overloaded);
        assert!(message.contains("queue"), "{message}");
        assert!(
            shed_started.elapsed() < Duration::from_secs(2),
            "shedding must not wait on the busy worker"
        );
    }

    // Release the worker: the queued connection gets served, proving the
    // queue drained rather than wedged.
    drop(busy);
    protocol::ping(&mut queued).expect("queued connection is served after the worker frees up");
    expect_prediction(protocol::call(&mut queued, &valid_request(0)).unwrap());

    let stats = server.shutdown();
    assert!(stats.shed >= 3, "shed {} connections", stats.shed);
    assert_eq!(stats.completed, 1);
}

#[test]
fn expired_deadlines_are_typed_and_the_worker_survives() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = start_server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });

    let mut stream = connect(&server);
    // The first request's deadline clock starts at admission, so aging the
    // connection before sending a 1 ms-deadline request guarantees expiry.
    std::thread::sleep(Duration::from_millis(80));
    let reply = protocol::call(&mut stream, &valid_request(1)).unwrap();
    let message = expect_error(reply, ErrorCode::DeadlineExceeded);
    assert!(message.contains("deadline"), "{message}");

    // Same connection, same worker: a fresh request with the server default
    // deadline succeeds. Deadline refusal is per-request, not per-worker.
    expect_prediction(protocol::call(&mut stream, &valid_request(0)).unwrap());

    let stats = server.shutdown();
    assert_eq!(stats.completed, 1);
    assert!(stats.errors >= 1);
    assert_eq!(stats.worker_deaths, 0);
}

#[test]
fn malformed_input_gets_typed_refusals_and_the_server_stays_healthy() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = start_server(ServeConfig {
        workers: 2,
        max_payload: 64 * 1024,
        ..ServeConfig::default()
    });

    // Bad magic: an HTTP probe, say.
    let mut stream = connect(&server);
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let reply = protocol::read_reply(&mut stream).expect("typed reply to bad magic");
    expect_error(reply, ErrorCode::BadFrame);

    // Unknown frame type.
    let mut stream = connect(&server);
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(0x7f);
    frame.extend_from_slice(&0u32.to_le_bytes());
    stream.write_all(&frame).unwrap();
    let reply = protocol::read_reply(&mut stream).expect("typed reply to bad type");
    expect_error(reply, ErrorCode::BadFrame);

    // Hostile length prefix: refused without reading (or allocating) it.
    let mut stream = connect(&server);
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(FrameType::Predict.byte());
    frame.extend_from_slice(&(512u32 * 1024 * 1024).to_le_bytes());
    stream.write_all(&frame).unwrap();
    let reply = protocol::read_reply(&mut stream).expect("typed reply to oversized frame");
    let message = expect_error(reply, ErrorCode::PayloadTooLarge);
    assert!(message.contains("cap"), "{message}");

    // Structurally broken request payload.
    let mut stream = connect(&server);
    write_frame(&mut stream, FrameType::Predict, &[0xff; 3]).unwrap();
    let reply = protocol::read_reply(&mut stream).expect("typed reply to garbage payload");
    expect_error(reply, ErrorCode::BadFrame);

    // Truncated .bench text: the parser's diagnosis travels to the client.
    let mut stream = connect(&server);
    let mut request = valid_request(0);
    request.bench.truncate(request.bench.len() / 2);
    request.bench.push_str("\nz = FROB(");
    let reply = protocol::call(&mut stream, &request).unwrap();
    expect_error(reply, ErrorCode::BadNetlist);

    // Unknown model and unknown gate are distinct refusals.
    let mut stream = connect(&server);
    let mut request = valid_request(0);
    request.model = "nonexistent".to_owned();
    let message = expect_error(
        protocol::call(&mut stream, &request).unwrap(),
        ErrorCode::UnknownModel,
    );
    assert!(
        message.contains("demo"),
        "names the available models: {message}"
    );
    let mut request = valid_request(0);
    request.mask = vec!["no_such_gate".to_owned()];
    let reply = protocol::call(&mut stream, &request).unwrap();
    expect_error(reply, ErrorCode::UnknownGate);

    // Mid-frame disconnect: write half a header and vanish.
    let mut stream = connect(&server);
    stream.write_all(&MAGIC[..2]).unwrap();
    drop(stream);
    std::thread::sleep(Duration::from_millis(100));

    // After the whole gauntlet, the server still predicts.
    let mut stream = connect(&server);
    expect_prediction(protocol::call(&mut stream, &valid_request(0)).unwrap());

    let stats = server.shutdown();
    assert!(stats.errors >= 7, "typed errors recorded: {}", stats.errors);
    assert_eq!(stats.worker_deaths, 0, "no worker died on bad input");
}

#[test]
fn injected_worker_death_self_heals() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _cleanup = Disarm;
    faults::arm_str("serve.worker:die@o0", None).unwrap();

    let server = start_server(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });

    // The first admitted connection kills its worker: the client sees a
    // dropped connection (no reply), never a hang.
    let mut stream = connect(&server);
    write_frame(&mut stream, FrameType::Predict, &valid_request(0).encode()).unwrap();
    let err = protocol::read_reply(&mut stream).expect_err("connection dies with the worker");
    assert!(
        matches!(
            err.kind(),
            // EOF if the socket closed cleanly, RST if it was dropped with
            // the request bytes still unread — both are a dead connection,
            // neither is a hang.
            std::io::ErrorKind::UnexpectedEof | std::io::ErrorKind::ConnectionReset
        ),
        "{err}"
    );

    // The monitor restores the pool to full strength.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().respawns < 1 {
        assert!(
            Instant::now() < deadline,
            "monitor never respawned a worker"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Both workers (the survivor and the respawn) serve fine afterwards.
    for _ in 0..4 {
        let mut stream = connect(&server);
        expect_prediction(protocol::call(&mut stream, &valid_request(0)).unwrap());
    }

    let stats = server.shutdown();
    assert_eq!(stats.worker_deaths, 1);
    assert!(stats.respawns >= 1);
    assert_eq!(stats.completed, 4);
}

#[test]
fn cancellation_drains_in_flight_work_then_refuses_new_requests() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cancel = attack::CancelToken::new();
    let server = start_server(ServeConfig {
        workers: 1,
        cancel: cancel.clone(),
        ..ServeConfig::default()
    });

    // One connection being served, one admitted and waiting in the queue.
    let mut active = connect(&server);
    expect_prediction(protocol::call(&mut active, &valid_request(0)).unwrap());
    let mut queued = connect(&server);
    std::thread::sleep(Duration::from_millis(100));

    cancel.cancel();

    // The in-flight connection's next request is still answered — then the
    // worker refuses further work on it with a typed ShuttingDown.
    expect_prediction(protocol::call(&mut active, &valid_request(0)).unwrap());
    let reply = protocol::read_reply(&mut active).expect("drain notice");
    expect_error(reply, ErrorCode::ShuttingDown);
    drop(active);

    // The queued connection was admitted before cancel: its request is
    // honoured as part of the drain, not dropped.
    expect_prediction(protocol::call(&mut queued, &valid_request(0)).unwrap());
    let reply = protocol::read_reply(&mut queued).expect("drain notice");
    expect_error(reply, ErrorCode::ShuttingDown);
    drop(queued);

    // join() returns only once the drain is complete.
    let stats = server.join();
    assert_eq!(stats.completed, 3, "every admitted request was answered");
}

#[test]
fn expired_on_arrival_requests_never_reach_inference() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = start_server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });

    // Age the connection past the 1 ms budget before the request is even
    // sent: the deadline clock starts at admission, so this request is dead
    // on arrival and must be refused before any pipeline stage runs.
    let mut stream = connect(&server);
    std::thread::sleep(Duration::from_millis(80));
    let reply = protocol::call(&mut stream, &valid_request(1)).unwrap();
    expect_error(reply, ErrorCode::DeadlineExceeded);
    assert_eq!(
        server.stats().infer_batches,
        0,
        "an expired-on-arrival request must not trigger a forward pass"
    );

    // A healthy request afterwards does run inference — proving the counter
    // above would have moved had the expired request been predicted.
    expect_prediction(protocol::call(&mut stream, &valid_request(0)).unwrap());
    let stats = server.shutdown();
    assert_eq!(stats.infer_batches, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn micro_batched_neighbors_do_not_change_each_others_answers() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = start_server(ServeConfig {
        workers: 4,
        // A generous window so the concurrent requests below reliably land
        // in one batched forward pass instead of racing it.
        batch_window: Duration::from_millis(200),
        max_batch: 8,
        ..ServeConfig::default()
    });

    // Solo baseline: one request, alone in its batch.
    let mut stream = connect(&server);
    let solo = expect_prediction(protocol::call(&mut stream, &valid_request(0)).unwrap());
    drop(stream);

    // Four concurrent requests: whatever grouping the batcher forms, every
    // answer must equal the solo prediction bit-for-bit.
    let addr = server.local_addr();
    let values: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(5)))
                        .unwrap();
                    stream
                        .set_write_timeout(Some(Duration::from_secs(5)))
                        .unwrap();
                    expect_prediction(protocol::call(&mut stream, &valid_request(0)).unwrap())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for value in &values {
        assert_eq!(
            value.to_bits(),
            solo.to_bits(),
            "co-batched neighbours changed an answer: {values:?} vs solo {solo}"
        );
    }

    let stats = server.shutdown();
    assert_eq!(stats.completed, 5);
    assert!(
        stats.batched_requests >= 2,
        "the 200 ms window must have micro-batched at least one group: {stats:?}"
    );
    assert!(
        stats.infer_batches < 5,
        "five solo passes means no batching happened: {stats:?}"
    );
}

#[test]
fn saturating_load_sheds_instead_of_collapsing() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = start_server(ServeConfig {
        workers: 2,
        queue_depth: 4,
        ..ServeConfig::default()
    });

    let workload = Workload {
        model: "demo".to_owned(),
        bench: netlist::c17().to_bench(),
        mask: vec!["n10".to_owned()],
        deadline_ms: 0,
    };
    let config = LoadgenConfig {
        addr: server.local_addr().to_string(),
        rates: vec![50.0, 5000.0],
        requests: 60,
        clients: 6,
        timeout: Duration::from_secs(5),
        probe_timeout: None,
    };
    let reports = serve::run_levels(&config, &workload);

    for report in &reports {
        assert_eq!(
            report.ok + report.overloaded + report.deadline_exceeded + report.other_error,
            report.sent,
            "every offered request is accounted for at {} rps",
            report.offered_rps
        );
        assert!(
            report.ok > 0,
            "the server keeps completing work at {} rps (got {:?})",
            report.offered_rps,
            report
        );
    }
    // The moderate level should be essentially all-success; the saturating
    // level may shed but must not collapse to zero goodput (asserted above).
    assert!(
        reports[0].ok >= reports[0].sent * 9 / 10,
        "50 rps is comfortably under capacity: {:?}",
        reports[0]
    );

    server.shutdown();
}

#[test]
fn slow_loris_partial_frame_is_cut_off_by_the_whole_request_timeout() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = start_server(ServeConfig {
        workers: 1,
        // Each trickled byte lands well inside io_timeout, so only the
        // whole-request deadline can end this.
        io_timeout: Duration::from_secs(2),
        idle_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_millis(400),
        ..ServeConfig::default()
    });

    let mut loris = connect(&server);
    let started = Instant::now();
    // Trickle a valid frame header one byte at a time, forever (from the
    // server's perspective): each byte restarts a plain socket timeout.
    let header = {
        let mut h = MAGIC.to_vec();
        h.push(0x01); // a plausible frame type byte
        h.extend_from_slice(&8u32.to_le_bytes());
        h
    };
    let mut cut_off = false;
    for byte in header.iter().cycle().take(64) {
        if loris.write_all(std::slice::from_ref(byte)).is_err() {
            cut_off = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
        // The server replies BadFrame and closes once the whole-request
        // deadline passes; detect it without blocking forever.
        loris
            .set_read_timeout(Some(Duration::from_millis(1)))
            .unwrap();
        let mut probe = [0u8; 1];
        match std::io::Read::read(&mut loris, &mut probe) {
            Ok(_) => {
                cut_off = true;
                break;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                cut_off = true;
                break;
            }
        }
    }
    assert!(cut_off, "the trickled frame must be cut off");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "cut-off must come from the 400 ms request timeout, not io_timeout ({:?})",
        started.elapsed()
    );
    drop(loris);

    // The single worker is free again: a well-behaved client is served.
    let mut stream = connect(&server);
    expect_prediction(protocol::call(&mut stream, &valid_request(0)).unwrap());
    server.shutdown();
}

#[test]
fn client_that_stops_reading_mid_reply_cannot_wedge_the_worker() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = start_server(ServeConfig {
        workers: 1,
        io_timeout: Duration::from_millis(300),
        // Unlimited requests per connection: the write timeout, not the
        // request cap, must be what frees the worker here.
        max_requests_per_conn: 0,
        ..ServeConfig::default()
    });

    // Pipeline pings without ever reading a pong. Once the client's receive
    // buffer and the server's send buffer fill, the worker's reply write
    // blocks; the write timeout must free it rather than wedge it forever.
    let mut greedy = connect(&server);
    greedy
        .set_write_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let mut wrote_any = false;
    for _ in 0..1_000_000 {
        let mut frame = Vec::new();
        write_frame(&mut frame, FrameType::Ping, &[]).unwrap();
        match greedy.write_all(&frame) {
            Ok(()) => wrote_any = true,
            // Buffers are full: the server is now blocked writing pongs.
            Err(_) => break,
        }
    }
    assert!(wrote_any, "the pipeline never started");

    // Within a bounded wait the write timeout trips, the connection is
    // dropped, and the lone worker serves a fresh client.
    let recovered = Instant::now();
    let mut stream = connect(&server);
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    expect_prediction(protocol::call(&mut stream, &valid_request(0)).unwrap());
    assert!(
        recovered.elapsed() < Duration::from_secs(8),
        "worker must free within the write timeout, not hang ({:?})",
        recovered.elapsed()
    );
    drop(greedy);
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_after_the_idle_timeout() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = start_server(ServeConfig {
        workers: 1,
        idle_timeout: Duration::from_millis(150),
        io_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    });

    let mut idle = connect(&server);
    let started = Instant::now();
    let reply = protocol::read_reply(&mut idle).expect("typed reply before close");
    let message = expect_error(reply, ErrorCode::BadFrame);
    assert!(message.contains("no frame"), "{message}");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "reaped by idle_timeout, not io_timeout ({:?})",
        started.elapsed()
    );
    server.shutdown();
}

#[test]
fn connection_request_cap_closes_with_a_typed_error() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = start_server(ServeConfig {
        workers: 1,
        max_requests_per_conn: 3,
        ..ServeConfig::default()
    });

    let mut stream = connect(&server);
    for _ in 0..3 {
        expect_prediction(protocol::call(&mut stream, &valid_request(0)).unwrap());
    }
    // The 4th request on this connection is refused with a typed error
    // telling the client to reconnect, and the connection closes.
    write_frame(&mut stream, FrameType::Predict, &valid_request(0).encode()).unwrap();
    let reply = protocol::read_reply(&mut stream).expect("cap reply arrives");
    let message = expect_error(reply, ErrorCode::Overloaded);
    assert!(message.contains("reconnect"), "{message}");

    // A fresh connection re-enters admission and is served normally.
    let mut fresh = connect(&server);
    expect_prediction(protocol::call(&mut fresh, &valid_request(0)).unwrap());

    let stats = server.shutdown();
    assert_eq!(stats.completed, 4);
}

#[test]
fn memory_watermark_sheds_overloaded_before_the_oom_killer_would() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // A 1-byte watermark is always exceeded: every connection must shed
    // with a typed Overloaded instead of being admitted.
    let server = start_server(ServeConfig {
        workers: 2,
        mem_watermark: Some(1),
        ..ServeConfig::default()
    });

    let mut stream = connect(&server);
    write_frame(&mut stream, FrameType::Predict, &valid_request(0).encode()).unwrap();
    let reply = protocol::read_reply(&mut stream).expect("shed reply arrives");
    expect_error(reply, ErrorCode::Overloaded);

    let stats = server.shutdown();
    assert!(stats.shed >= 1, "watermark shed {} connections", stats.shed);
    assert_eq!(stats.completed, 0, "nothing admitted past the watermark");
}

#[test]
fn server_meters_the_same_request_bytes_the_client_can_compute() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = start_server(ServeConfig::default());

    let mut stream = connect(&server);
    expect_prediction(protocol::call(&mut stream, &valid_request(0)).unwrap());
    drop(stream);

    // demo_registry registers a Gcn/All-features model; logical bytes are a
    // pure function of the workload, so client and server must agree.
    let workload = Workload {
        model: "demo".to_owned(),
        bench: netlist::c17().to_bench(),
        mask: vec!["n10".to_owned()],
        deadline_ms: 0,
    };
    let expected = serve::loadgen::workload_request_bytes(
        &workload,
        icnet::ModelKind::Gcn,
        icnet::FeatureSet::All,
    )
    .expect("workload parses");
    assert!(expected > 0);

    let stats = server.shutdown();
    assert_eq!(stats.peak_request_bytes, expected);
}
