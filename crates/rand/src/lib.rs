//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment cannot reach the crate registry, so the workspace
//! ships the slice of `rand` it actually uses: [`rngs::StdRng`] (seeded via
//! [`SeedableRng::seed_from_u64`]), the [`Rng`] convenience methods
//! (`gen`, `gen_range`, `gen_bool`), and the [`seq::SliceRandom`] slice
//! helpers (`shuffle`, `choose`, `choose_multiple`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast, high
//! quality, and fully deterministic. Streams differ from upstream `rand`'s
//! ChaCha-based `StdRng`, which is fine here: nothing in the workspace
//! depends on upstream byte streams, only on determinism within this
//! implementation (see `DESIGN.md`).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution of rand 0.8).
pub trait StandardSample {
    /// Draws one value from the full/unit range of the type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to a double in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, bound)` without modulo bias worth caring about
/// (widening-multiply method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                debug_assert!(span <= u64::MAX as u128);
                let off = uniform_below(rng, span as u64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // 53 random bits scaled to close the interval at `hi`.
                let u = ((rng.next_u64() >> 11) as f64
                    / ((1u64 << 53) - 1) as f64) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (see [`StandardSample`]).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`. Panics when the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators (only the `seed_from_u64` entry point is vendored).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: the recommended seeder for xoshiro-family generators.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Not the upstream ChaCha12 `StdRng`; see the crate docs for why that
    /// is acceptable here.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::RngCore;

    /// Random selection/permutation over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them when
        /// `amount >= len`).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(rng, self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for k in 0..amount {
                let j = k + super::uniform_below(rng, (indices.len() - k) as u64) as usize;
                indices.swap(k, j);
            }
            indices
                .into_iter()
                .take(amount)
                .map(|i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_both_endpoints_inclusive() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn choose_multiple_is_distinct_and_complete() {
        let mut rng = StdRng::seed_from_u64(7);
        let pool: Vec<usize> = (0..20).collect();
        let mut picked: Vec<usize> = pool.choose_multiple(&mut rng, 8).copied().collect();
        assert_eq!(picked.len(), 8);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 8, "choose_multiple repeated an element");
        let all: Vec<usize> = pool.choose_multiple(&mut rng, 99).copied().collect();
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn choose_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(8);
        let pool = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[*pool.choose(&mut rng).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "counts {counts:?}");
        assert!(Vec::<i32>::new().choose(&mut rng).is_none());
    }
}
