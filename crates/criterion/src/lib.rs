//! Vendored subset of the `criterion` 0.5 API.
//!
//! The build environment cannot reach the crate registry, so the workspace
//! ships the slice of criterion its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`BatchSize`], and [`black_box`].
//!
//! Measurement is intentionally simple: each benchmark runs a short warmup,
//! then `sample_size` timed samples, and prints min/mean/max wall-clock
//! time per iteration. No statistics, plots, or baselines — enough to spot
//! order-of-magnitude regressions offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] amortizes setup cost. The vendored runner
/// treats every variant the same (one setup per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times the closures a benchmark hands it.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup (also primes caches/allocator).
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Measures `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    // Even counts round down; close enough for trend tracking.
    let median = sorted[sorted.len() / 2];
    println!(
        "{group}/{id}: mean {mean:?}  median {median:?}  min {min:?}  max {max:?}  ({} samples)",
        samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &id.id, &bencher.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        report(&self.name, &id.id, &bencher.samples);
        self
    }

    /// Ends the group (printing happens eagerly; this is API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmarking group `{name}`");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, demo);

    #[test]
    fn group_macro_and_runner_work() {
        benches();
    }
}
