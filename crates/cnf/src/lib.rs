//! CNF infrastructure: Tseitin encoding of netlists and miter construction.
//!
//! This crate bridges the [`netlist`] IR to the [`sat`] solver. Its central
//! abstraction is [`ClauseSink`], implemented both by [`CnfFormula`] (an
//! in-memory clause list, convertible to DIMACS) and by [`sat::Solver`]
//! (direct incremental encoding, which is what the SAT attack uses).
//!
//! # Example
//!
//! ```
//! use cnf::{encode_circuit, ClauseSink};
//! use sat::{Lit, SolveResult, Solver};
//!
//! let circuit = netlist::c17();
//! let mut solver = Solver::new();
//! let enc = encode_circuit(&circuit, &mut solver);
//!
//! // Fix all inputs to 1 and check the encoding is satisfiable.
//! for &id in circuit.inputs() {
//!     solver.add_clause([Lit::positive(enc.var(id))]);
//! }
//! assert!(matches!(solver.solve(), SolveResult::Sat(_)));
//! ```

mod encode;
mod formula;
mod miter;

pub use encode::{encode_circuit, encode_circuit_with, CircuitEncoding, EncodeOptions};
pub use formula::CnfFormula;
pub use miter::{encode_miter, MiterEncoding};

use sat::{Lit, Var};

/// A destination for freshly encoded variables and clauses.
///
/// Implemented by [`CnfFormula`] and by [`sat::Solver`], so encoders can
/// target either an in-memory formula or a live solver.
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn fresh_var(&mut self) -> Var;

    /// Adds a clause (a disjunction of literals).
    fn add_sink_clause(&mut self, lits: &[Lit]);
}

impl ClauseSink for sat::Solver {
    fn fresh_var(&mut self) -> Var {
        self.new_var()
    }

    fn add_sink_clause(&mut self, lits: &[Lit]) {
        self.add_clause(lits.iter().copied());
    }
}

/// Emits clauses constraining `y = a XOR b` and returns `y`.
pub fn encode_xor(sink: &mut impl ClauseSink, a: Lit, b: Lit) -> Var {
    let y = sink.fresh_var();
    let yl = Lit::positive(y);
    sink.add_sink_clause(&[!yl, a, b]);
    sink.add_sink_clause(&[!yl, !a, !b]);
    sink.add_sink_clause(&[yl, !a, b]);
    sink.add_sink_clause(&[yl, a, !b]);
    y
}

/// Emits clauses constraining `y = OR(lits)` and returns `y`.
///
/// # Panics
///
/// Panics when `lits` is empty (an empty OR has no Tseitin form here).
pub fn encode_or(sink: &mut impl ClauseSink, lits: &[Lit]) -> Var {
    assert!(!lits.is_empty(), "encode_or needs at least one literal");
    let y = sink.fresh_var();
    let yl = Lit::positive(y);
    for &l in lits {
        sink.add_sink_clause(&[yl, !l]);
    }
    let mut big: Vec<Lit> = vec![!yl];
    big.extend_from_slice(lits);
    sink.add_sink_clause(&big);
    y
}

/// Emits clauses constraining `y = AND(lits)` and returns `y`.
///
/// # Panics
///
/// Panics when `lits` is empty.
pub fn encode_and(sink: &mut impl ClauseSink, lits: &[Lit]) -> Var {
    assert!(!lits.is_empty(), "encode_and needs at least one literal");
    let y = sink.fresh_var();
    let yl = Lit::positive(y);
    for &l in lits {
        sink.add_sink_clause(&[!yl, l]);
    }
    let mut big: Vec<Lit> = vec![yl];
    big.extend(lits.iter().map(|&l| !l));
    sink.add_sink_clause(&big);
    y
}

/// Adds unit clauses fixing each variable to the given constant.
///
/// # Panics
///
/// Panics if `vars` and `values` have different lengths.
pub fn fix_vars(sink: &mut impl ClauseSink, vars: &[Var], values: &[bool]) {
    assert_eq!(vars.len(), values.len(), "fix_vars length mismatch");
    for (&v, &b) in vars.iter().zip(values) {
        sink.add_sink_clause(&[Lit::new(v, !b)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::{SolveResult, Solver};

    #[test]
    fn encode_xor_truth_table() {
        for a_val in [false, true] {
            for b_val in [false, true] {
                let mut s = Solver::new();
                let a = s.new_var();
                let b = s.new_var();
                let y = encode_xor(&mut s, Lit::positive(a), Lit::positive(b));
                fix_vars(&mut s, &[a, b], &[a_val, b_val]);
                match s.solve() {
                    SolveResult::Sat(m) => assert_eq!(m.value(y), a_val ^ b_val),
                    other => panic!("expected SAT, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn encode_or_and_cover_all_inputs() {
        for pattern in 0..8u32 {
            let vals: Vec<bool> = (0..3).map(|i| (pattern >> i) & 1 == 1).collect();
            let mut s = Solver::new();
            let vars: Vec<_> = (0..3).map(|_| s.new_var()).collect();
            let lits: Vec<Lit> = vars.iter().map(|&v| Lit::positive(v)).collect();
            let or = encode_or(&mut s, &lits);
            let and = encode_and(&mut s, &lits);
            fix_vars(&mut s, &vars, &vals);
            match s.solve() {
                SolveResult::Sat(m) => {
                    assert_eq!(m.value(or), vals.iter().any(|&v| v));
                    assert_eq!(m.value(and), vals.iter().all(|&v| v));
                }
                other => panic!("expected SAT, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one literal")]
    fn encode_or_empty_panics() {
        let mut s = Solver::new();
        encode_or(&mut s, &[]);
    }
}
