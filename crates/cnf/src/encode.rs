//! Tseitin transformation of a [`netlist::Circuit`] into CNF.

use crate::ClauseSink;
use netlist::{Circuit, GateId, GateKind};
use sat::{Lit, Var};

/// Pre-assigned variables for circuit ports, enabling shared-variable
/// encodings (e.g. two keyed copies of a circuit sharing the same inputs in
/// the attack miter).
#[derive(Debug, Clone, Default)]
pub struct EncodeOptions {
    /// Variables to reuse for the primary inputs (in `circuit.inputs()` order).
    pub input_vars: Option<Vec<Var>>,
    /// Variables to reuse for the key inputs (in `circuit.keys()` order).
    pub key_vars: Option<Vec<Var>>,
}

/// The variable map produced by encoding one circuit copy.
#[derive(Debug, Clone)]
pub struct CircuitEncoding {
    gate_vars: Vec<Var>,
}

impl CircuitEncoding {
    /// The CNF variable carrying the value of `gate`.
    pub fn var(&self, gate: GateId) -> Var {
        self.gate_vars[gate.index()]
    }

    /// Variables of the primary inputs, in port order.
    pub fn input_vars(&self, circuit: &Circuit) -> Vec<Var> {
        circuit.inputs().iter().map(|&g| self.var(g)).collect()
    }

    /// Variables of the key inputs, in port order.
    pub fn key_vars(&self, circuit: &Circuit) -> Vec<Var> {
        circuit.keys().iter().map(|&g| self.var(g)).collect()
    }

    /// Variables of the primary outputs, in port order.
    pub fn output_vars(&self, circuit: &Circuit) -> Vec<Var> {
        circuit.outputs().iter().map(|&g| self.var(g)).collect()
    }
}

/// Encodes `circuit` into `sink` with fresh variables for every port.
pub fn encode_circuit(circuit: &Circuit, sink: &mut impl ClauseSink) -> CircuitEncoding {
    encode_circuit_with(circuit, sink, EncodeOptions::default())
}

/// Encodes `circuit` into `sink`, optionally reusing caller-supplied
/// variables for the input and key ports.
///
/// # Panics
///
/// Panics if a supplied variable list has the wrong length for the circuit.
pub fn encode_circuit_with(
    circuit: &Circuit,
    sink: &mut impl ClauseSink,
    opts: EncodeOptions,
) -> CircuitEncoding {
    if let Some(iv) = &opts.input_vars {
        assert_eq!(
            iv.len(),
            circuit.inputs().len(),
            "input_vars length mismatch"
        );
    }
    if let Some(kv) = &opts.key_vars {
        assert_eq!(kv.len(), circuit.keys().len(), "key_vars length mismatch");
    }

    // Dummy initial value; every slot is overwritten in topo order below.
    let mut gate_vars: Vec<Option<Var>> = vec![None; circuit.num_gates()];

    // Assign port variables first.
    for (pos, &id) in circuit.inputs().iter().enumerate() {
        let v = match &opts.input_vars {
            Some(iv) => iv[pos],
            None => sink.fresh_var(),
        };
        gate_vars[id.index()] = Some(v);
    }
    for (pos, &id) in circuit.keys().iter().enumerate() {
        let v = match &opts.key_vars {
            Some(kv) => kv[pos],
            None => sink.fresh_var(),
        };
        gate_vars[id.index()] = Some(v);
    }

    for &id in circuit.topo_order() {
        let gate = circuit.gate(id);
        if gate.kind().is_input() {
            continue;
        }
        let fanin_lits: Vec<Lit> = gate
            .fanin()
            .iter()
            .map(|&f| Lit::positive(gate_vars[f.index()].expect("topo order")))
            .collect();
        let y = encode_gate(sink, gate.kind(), &fanin_lits);
        gate_vars[id.index()] = Some(y);
    }

    CircuitEncoding {
        gate_vars: gate_vars
            .into_iter()
            .map(|v| v.expect("every gate encoded"))
            .collect(),
    }
}

/// Encodes one gate's function over `fanin` literals, returning the output
/// variable.
///
/// # Panics
///
/// Panics on [`GateKind::Input`] (inputs are ports, not functions) or on a
/// fan-in count that is illegal for the kind.
pub fn encode_gate(sink: &mut impl ClauseSink, kind: &GateKind, fanin: &[Lit]) -> Var {
    match kind {
        GateKind::Input(_) => panic!("inputs are not encoded as gates"),
        GateKind::Buf => {
            let y = sink.fresh_var();
            let yl = Lit::positive(y);
            sink.add_sink_clause(&[!yl, fanin[0]]);
            sink.add_sink_clause(&[yl, !fanin[0]]);
            y
        }
        GateKind::Not => {
            let y = sink.fresh_var();
            let yl = Lit::positive(y);
            sink.add_sink_clause(&[!yl, !fanin[0]]);
            sink.add_sink_clause(&[yl, fanin[0]]);
            y
        }
        GateKind::And => encode_and_like(sink, fanin, false),
        GateKind::Nand => encode_and_like(sink, fanin, true),
        GateKind::Or => encode_or_like(sink, fanin, false),
        GateKind::Nor => encode_or_like(sink, fanin, true),
        GateKind::Xor => encode_parity(sink, fanin, false),
        GateKind::Xnor => encode_parity(sink, fanin, true),
        GateKind::Mux => {
            let (s, a, b) = (fanin[0], fanin[1], fanin[2]);
            let y = sink.fresh_var();
            let yl = Lit::positive(y);
            // s=1 -> y=b ; s=0 -> y=a ; plus redundancy for stronger propagation.
            sink.add_sink_clause(&[!s, !b, yl]);
            sink.add_sink_clause(&[!s, b, !yl]);
            sink.add_sink_clause(&[s, !a, yl]);
            sink.add_sink_clause(&[s, a, !yl]);
            sink.add_sink_clause(&[!a, !b, yl]);
            sink.add_sink_clause(&[a, b, !yl]);
            y
        }
        GateKind::Lut(table) => {
            let y = sink.fresh_var();
            let yl = Lit::positive(y);
            let k = table.num_inputs();
            debug_assert_eq!(fanin.len(), k, "LUT fan-in arity mismatch");
            for row in 0..table.num_rows() {
                // "inputs match row" -> y = table[row]; the clause lists the
                // negation of the row condition plus the forced output.
                let mut clause: Vec<Lit> = (0..k)
                    .map(|j| {
                        if (row >> j) & 1 == 1 {
                            !fanin[j]
                        } else {
                            fanin[j]
                        }
                    })
                    .collect();
                clause.push(if table.row(row) { yl } else { !yl });
                sink.add_sink_clause(&clause);
            }
            y
        }
    }
}

fn encode_and_like(sink: &mut impl ClauseSink, fanin: &[Lit], invert: bool) -> Var {
    let y = sink.fresh_var();
    // t = AND(fanin); y = t (or !t for NAND).
    let t = Lit::new(y, invert);
    for &l in fanin {
        sink.add_sink_clause(&[!t, l]);
    }
    let mut big: Vec<Lit> = vec![t];
    big.extend(fanin.iter().map(|&l| !l));
    sink.add_sink_clause(&big);
    y
}

fn encode_or_like(sink: &mut impl ClauseSink, fanin: &[Lit], invert: bool) -> Var {
    let y = sink.fresh_var();
    let t = Lit::new(y, invert);
    for &l in fanin {
        sink.add_sink_clause(&[t, !l]);
    }
    let mut big: Vec<Lit> = vec![!t];
    big.extend_from_slice(fanin);
    sink.add_sink_clause(&big);
    y
}

/// Encodes y = parity(fanin) (xnor when `invert`) by chaining binary XORs.
fn encode_parity(sink: &mut impl ClauseSink, fanin: &[Lit], invert: bool) -> Var {
    debug_assert!(fanin.len() >= 2);
    let mut acc = fanin[0];
    for (i, &l) in fanin.iter().enumerate().skip(1) {
        let last = i == fanin.len() - 1;
        let y = sink.fresh_var();
        let yl = Lit::new(y, last && invert);
        sink.add_sink_clause(&[!yl, acc, l]);
        sink.add_sink_clause(&[!yl, !acc, !l]);
        sink.add_sink_clause(&[yl, !acc, l]);
        sink.add_sink_clause(&[yl, acc, !l]);
        acc = Lit::positive(y);
        if last {
            return y;
        }
    }
    unreachable!("loop returns on the last element")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fix_vars;
    use netlist::{c17, CircuitBuilder, TruthTable};
    use sat::{SolveResult, Solver};

    /// Exhaustively checks that the CNF encoding of `circuit` agrees with
    /// bit-parallel simulation on every input/key pattern.
    fn check_encoding_exhaustive(circuit: &Circuit) {
        let n_in = circuit.inputs().len();
        let n_key = circuit.keys().len();
        assert!(n_in + n_key <= 12, "exhaustive check limited to 12 ports");
        for pattern in 0u32..(1 << (n_in + n_key)) {
            let in_vals: Vec<bool> = (0..n_in).map(|i| (pattern >> i) & 1 == 1).collect();
            let key_vals: Vec<bool> = (0..n_key)
                .map(|i| (pattern >> (n_in + i)) & 1 == 1)
                .collect();
            let mut solver = Solver::new();
            let enc = encode_circuit(circuit, &mut solver);
            fix_vars(&mut solver, &enc.input_vars(circuit), &in_vals);
            fix_vars(&mut solver, &enc.key_vars(circuit), &key_vals);
            let model = match solver.solve() {
                SolveResult::Sat(m) => m,
                other => panic!("encoding must be SAT under full port fix, got {other:?}"),
            };
            let expect = circuit.simulate_bool(&in_vals, &key_vals).unwrap();
            let got: Vec<bool> = enc
                .output_vars(circuit)
                .iter()
                .map(|&v| model.value(v))
                .collect();
            assert_eq!(got, expect, "pattern {pattern:b} on {}", circuit.name());
        }
    }

    #[test]
    fn c17_encoding_matches_simulation() {
        check_encoding_exhaustive(&c17());
    }

    #[test]
    fn every_gate_kind_encoding_matches_simulation() {
        let mut b = CircuitBuilder::new("all_kinds");
        let a = b.add_input("a").unwrap();
        let c = b.add_input("b").unwrap();
        let d = b.add_input("c").unwrap();
        let table = TruthTable::from_fn(3, |v| (v[0] & v[1]) | v[2]).unwrap();
        let gates = [
            ("g_and", GateKind::And, vec![a, c, d]),
            ("g_nand", GateKind::Nand, vec![a, c]),
            ("g_or", GateKind::Or, vec![a, c, d]),
            ("g_nor", GateKind::Nor, vec![a, c]),
            ("g_xor", GateKind::Xor, vec![a, c, d]),
            ("g_xnor", GateKind::Xnor, vec![a, c, d]),
            ("g_not", GateKind::Not, vec![a]),
            ("g_buf", GateKind::Buf, vec![c]),
            ("g_mux", GateKind::Mux, vec![a, c, d]),
            ("g_lut", GateKind::Lut(table), vec![a, c, d]),
        ];
        for (name, kind, fanin) in gates {
            let id = b.add_gate(name, kind, &fanin).unwrap();
            b.mark_output(id);
        }
        let circuit = b.finish().unwrap();
        check_encoding_exhaustive(&circuit);
    }

    #[test]
    fn keyed_circuit_encoding() {
        let mut b = CircuitBuilder::new("keyed");
        let a = b.add_input("a").unwrap();
        let k = b.add_key_input("keyinput0").unwrap();
        let y = b.add_gate("y", GateKind::Xnor, &[a, k]).unwrap();
        b.mark_output(y);
        let circuit = b.finish().unwrap();
        check_encoding_exhaustive(&circuit);
    }

    #[test]
    fn shared_input_vars_tie_copies_together() {
        let circuit = c17();
        let mut solver = Solver::new();
        let enc1 = encode_circuit(&circuit, &mut solver);
        let shared = enc1.input_vars(&circuit);
        let enc2 = encode_circuit_with(
            &circuit,
            &mut solver,
            EncodeOptions {
                input_vars: Some(shared.clone()),
                key_vars: None,
            },
        );
        // Outputs of the two copies can never differ: the miter is UNSAT.
        let o1 = enc1.output_vars(&circuit);
        let o2 = enc2.output_vars(&circuit);
        let diffs: Vec<Lit> = o1
            .iter()
            .zip(&o2)
            .map(|(&x, &y)| {
                Lit::positive(crate::encode_xor(
                    &mut solver,
                    Lit::positive(x),
                    Lit::positive(y),
                ))
            })
            .collect();
        let any = crate::encode_or(&mut solver, &diffs);
        solver.add_clause([Lit::positive(any)]);
        assert!(solver.solve().is_unsat());
    }

    #[test]
    #[should_panic(expected = "input_vars length mismatch")]
    fn wrong_shared_var_count_panics() {
        let circuit = c17();
        let mut solver = Solver::new();
        let v = solver.new_var();
        let _ = encode_circuit_with(
            &circuit,
            &mut solver,
            EncodeOptions {
                input_vars: Some(vec![v]),
                key_vars: None,
            },
        );
    }
}
