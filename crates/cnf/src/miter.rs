//! Attack-miter construction: two keyed copies of a locked circuit sharing
//! their primary inputs, plus an output-difference indicator.

use crate::{encode_circuit_with, encode_or, encode_xor, ClauseSink, EncodeOptions};
use netlist::Circuit;
use sat::{Lit, Var};

/// The variable layout of a de-obfuscation miter (Subramanyan et al., HOST'15).
///
/// Two copies of the locked circuit `C(X, K)` share the input variables `X`
/// but carry independent key variables `K1`, `K2`. [`diff`](MiterEncoding::diff)
/// is true iff the copies disagree on at least one output, so a model of the
/// miter with `diff` asserted yields a *distinguishing input pattern* (DIP).
#[derive(Debug, Clone)]
pub struct MiterEncoding {
    /// Shared primary-input variables.
    pub inputs: Vec<Var>,
    /// Key variables of copy 1.
    pub key1: Vec<Var>,
    /// Key variables of copy 2.
    pub key2: Vec<Var>,
    /// Output variables of copy 1.
    pub outputs1: Vec<Var>,
    /// Output variables of copy 2.
    pub outputs2: Vec<Var>,
    /// Indicator variable: true iff some output pair differs.
    pub diff: Var,
}

impl MiterEncoding {
    /// The literal asserting "the two keyed copies disagree somewhere";
    /// use it as a solve assumption when searching for DIPs.
    pub fn diff_lit(&self) -> Lit {
        Lit::positive(self.diff)
    }
}

/// Encodes the double-keyed miter of `locked` into `sink`.
///
/// # Panics
///
/// Panics if the circuit has no outputs (a miter needs something to compare)
/// or no key inputs (nothing to attack).
pub fn encode_miter(locked: &Circuit, sink: &mut impl ClauseSink) -> MiterEncoding {
    assert!(
        !locked.outputs().is_empty(),
        "miter construction requires at least one output"
    );
    assert!(
        !locked.keys().is_empty(),
        "miter construction requires key inputs"
    );
    let inputs: Vec<Var> = (0..locked.inputs().len())
        .map(|_| sink.fresh_var())
        .collect();
    let key1: Vec<Var> = (0..locked.keys().len()).map(|_| sink.fresh_var()).collect();
    let key2: Vec<Var> = (0..locked.keys().len()).map(|_| sink.fresh_var()).collect();

    let enc1 = encode_circuit_with(
        locked,
        sink,
        EncodeOptions {
            input_vars: Some(inputs.clone()),
            key_vars: Some(key1.clone()),
        },
    );
    let enc2 = encode_circuit_with(
        locked,
        sink,
        EncodeOptions {
            input_vars: Some(inputs.clone()),
            key_vars: Some(key2.clone()),
        },
    );
    let outputs1 = enc1.output_vars(locked);
    let outputs2 = enc2.output_vars(locked);
    let diffs: Vec<Lit> = outputs1
        .iter()
        .zip(&outputs2)
        .map(|(&a, &b)| Lit::positive(encode_xor(sink, Lit::positive(a), Lit::positive(b))))
        .collect();
    let diff = encode_or(sink, &diffs);

    MiterEncoding {
        inputs,
        key1,
        key2,
        outputs1,
        outputs2,
        diff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fix_vars;
    use netlist::{CircuitBuilder, GateKind};
    use sat::{SolveResult, Solver};

    /// y = a XOR k: distinct keys always disagree, so a DIP exists.
    fn xor_locked() -> Circuit {
        let mut b = CircuitBuilder::new("xor_locked");
        let a = b.add_input("a").unwrap();
        let k = b.add_key_input("keyinput0").unwrap();
        let y = b.add_gate("y", GateKind::Xor, &[a, k]).unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn miter_finds_dip_for_distinct_keys() {
        let locked = xor_locked();
        let mut solver = Solver::new();
        let miter = encode_miter(&locked, &mut solver);
        match solver.solve_with_assumptions(&[miter.diff_lit()]) {
            SolveResult::Sat(m) => {
                // Keys must differ for the outputs to differ under XOR locking.
                assert_ne!(m.value(miter.key1[0]), m.value(miter.key2[0]));
                assert_ne!(m.value(miter.outputs1[0]), m.value(miter.outputs2[0]));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn miter_unsat_when_keys_equal() {
        let locked = xor_locked();
        let mut solver = Solver::new();
        let miter = encode_miter(&locked, &mut solver);
        // Force both keys to the same value: the copies become identical.
        fix_vars(&mut solver, &miter.key1, &[true]);
        fix_vars(&mut solver, &miter.key2, &[true]);
        assert!(solver
            .solve_with_assumptions(&[miter.diff_lit()])
            .is_unsat());
    }

    #[test]
    #[should_panic(expected = "requires key inputs")]
    fn miter_requires_keys() {
        let mut solver = Solver::new();
        let _ = encode_miter(&netlist::c17(), &mut solver);
    }
}
