use crate::ClauseSink;
use sat::{Lit, Var};
use std::fmt;

/// An in-memory CNF formula: a variable count plus a clause list.
///
/// Useful for inspecting or serializing an encoding without a live solver.
///
/// ```
/// use cnf::{encode_circuit, CnfFormula};
///
/// let mut formula = CnfFormula::new();
/// let enc = encode_circuit(&netlist::c17(), &mut formula);
/// assert_eq!(formula.num_vars(), netlist::c17().num_gates());
/// assert!(formula.num_clauses() > 0);
/// let _dimacs = formula.to_dimacs();
/// # let _ = enc;
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl CnfFormula {
    /// Creates an empty formula.
    pub fn new() -> Self {
        CnfFormula::default()
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clause list.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Serializes the formula as DIMACS CNF text.
    pub fn to_dimacs(&self) -> String {
        sat::write_dimacs(self.num_vars, &self.clauses)
    }

    /// Loads every clause into a fresh [`sat::Solver`].
    pub fn to_solver(&self) -> sat::Solver {
        let mut solver = sat::Solver::new();
        solver.new_vars(self.num_vars);
        for clause in &self.clauses {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// Logical bytes held by the clause list: one 4-byte literal per slot,
    /// bytes *requested* rather than allocator capacity, so the value is a
    /// pure function of the formula (see the `budget` crate). Register it
    /// with a `budget::MemoryMeter` scope to count an encoding against a
    /// memory budget.
    pub fn logical_bytes(&self) -> u64 {
        self.clauses
            .iter()
            .map(|c| c.len() as u64 * std::mem::size_of::<Lit>() as u64)
            .sum()
    }

    /// Evaluates the formula under a full assignment (index = variable).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the number of variables used.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|&l| assignment[l.var().index()] == l.is_positive())
        })
    }
}

impl ClauseSink for CnfFormula {
    fn fresh_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    fn add_sink_clause(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cnf with {} vars, {} clauses",
            self.num_vars,
            self.clauses.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_xor, fix_vars};

    #[test]
    fn formula_collects_clauses() {
        let mut f = CnfFormula::new();
        let a = f.fresh_var();
        let b = f.fresh_var();
        let y = encode_xor(&mut f, Lit::positive(a), Lit::positive(b));
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 4);
        // y = a ^ b holds in eval.
        assert!(f.eval(&[true, false, true]));
        assert!(!f.eval(&[true, false, false]));
        let _ = y;
    }

    #[test]
    fn logical_bytes_count_literal_slots() {
        let mut f = CnfFormula::new();
        let a = f.fresh_var();
        let b = f.fresh_var();
        f.add_sink_clause(&[Lit::positive(a)]);
        f.add_sink_clause(&[Lit::positive(a), Lit::negative(b)]);
        assert_eq!(f.logical_bytes(), 3 * std::mem::size_of::<Lit>() as u64);
        assert_eq!(CnfFormula::new().logical_bytes(), 0);
    }

    #[test]
    fn to_solver_round_trip() {
        let mut f = CnfFormula::new();
        let a = f.fresh_var();
        let b = f.fresh_var();
        let _y = encode_xor(&mut f, Lit::positive(a), Lit::positive(b));
        fix_vars(&mut f, &[a, b], &[true, true]);
        let mut solver = f.to_solver();
        match solver.solve() {
            sat::SolveResult::Sat(m) => assert!(!m.value(Var::from_index(2))),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn dimacs_export_parses_back() {
        let mut f = CnfFormula::new();
        let a = f.fresh_var();
        f.add_sink_clause(&[Lit::positive(a)]);
        let (vars, clauses) = sat::parse_dimacs(&f.to_dimacs()).unwrap();
        assert_eq!(vars, 1);
        assert_eq!(clauses.len(), 1);
    }

    #[test]
    fn display_is_informative() {
        let f = CnfFormula::new();
        assert!(f.to_string().contains("0 vars"));
    }
}
