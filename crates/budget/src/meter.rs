//! Logical-byte memory accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    current: AtomicU64,
    high: AtomicU64,
}

impl Inner {
    fn add(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.high.fetch_max(now, Ordering::Relaxed);
    }

    fn sub(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        // Saturate rather than wrap: a component that over-frees (a bug)
        // must not turn the meter into a ~2^64 reading that trips every
        // budget in the process. Debug builds still catch the imbalance.
        let mut cur = self.current.load(Ordering::Relaxed);
        loop {
            debug_assert!(cur >= bytes, "meter underflow: freeing {bytes} of {cur}");
            let next = cur.saturating_sub(bytes);
            match self.current.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A shared meter of *logical* bytes: the sum of what registered components
/// asked for, not what the allocator reserved.
///
/// Cloning is cheap and every clone reads and writes the same tally, so a
/// solver, its clause arena, and the attack loop driving them can all hold
/// handles to one meter. All operations are lock-free; readings taken at
/// deterministic points of a single-threaded computation are themselves
/// deterministic (the solver's budget checks rely on this).
///
/// ```
/// let meter = budget::MemoryMeter::new();
/// meter.alloc(4096);
/// meter.resize(4096, 1024);
/// assert_eq!(meter.current(), 1024);
/// assert_eq!(meter.high_water(), 4096);
/// meter.free(1024);
/// assert_eq!(meter.current(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryMeter {
    inner: Arc<Inner>,
}

impl MemoryMeter {
    /// A fresh meter reading zero.
    pub fn new() -> Self {
        MemoryMeter::default()
    }

    /// Records `bytes` newly requested.
    pub fn alloc(&self, bytes: u64) {
        self.inner.add(bytes);
    }

    /// Records `bytes` released. Saturates at zero (debug builds assert the
    /// balance instead of wrapping).
    pub fn free(&self, bytes: u64) {
        self.inner.sub(bytes);
    }

    /// Re-records a component whose footprint changed from `old` to `new`
    /// bytes — the idiom for growable buffers that track one total rather
    /// than individual allocations.
    pub fn resize(&self, old: u64, new: u64) {
        if new > old {
            self.inner.add(new - old);
        } else {
            self.inner.sub(old - new);
        }
    }

    /// Bytes currently accounted.
    pub fn current(&self) -> u64 {
        self.inner.current.load(Ordering::Relaxed)
    }

    /// The largest reading the meter has ever held.
    pub fn high_water(&self) -> u64 {
        self.inner.high.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current reading (per-instance
    /// peaks: reset between instances, read after each).
    pub fn reset_high_water(&self) {
        self.inner.high.store(self.current(), Ordering::Relaxed);
    }

    /// Opens an RAII scope: bytes accounted through the scope are balanced
    /// automatically when it drops, so a component cannot leak meter state
    /// even on early return or unwind.
    pub fn scope(&self) -> MeterScope {
        MeterScope {
            meter: self.clone(),
            held: 0,
            high: 0,
        }
    }
}

/// An RAII accounting scope from [`MemoryMeter::scope`].
///
/// Tracks the net bytes it has accounted (`held`) and its own high-water
/// mark; dropping the scope frees its net balance from the meter, so after
/// every scope drops the meter reads exactly what non-scoped callers put
/// there (zero, if everything went through scopes).
#[derive(Debug)]
pub struct MeterScope {
    meter: MemoryMeter,
    held: u64,
    high: u64,
}

impl MeterScope {
    /// Records `bytes` newly requested within this scope.
    pub fn alloc(&mut self, bytes: u64) {
        self.meter.alloc(bytes);
        self.held += bytes;
        self.high = self.high.max(self.held);
    }

    /// Records `bytes` released within this scope. Saturates at this
    /// scope's balance: a scope can never free more from the meter than it
    /// put there.
    pub fn free(&mut self, bytes: u64) {
        let freed = bytes.min(self.held);
        debug_assert!(
            freed == bytes,
            "scope underflow: freeing {bytes} of {}",
            self.held
        );
        self.meter.free(freed);
        self.held -= freed;
    }

    /// Re-records a component growing from `old` to `new` bytes.
    pub fn resize(&mut self, old: u64, new: u64) {
        if new > old {
            self.alloc(new - old);
        } else {
            self.free(old - new);
        }
    }

    /// Net bytes this scope currently holds on the meter.
    pub fn held(&self) -> u64 {
        self.held
    }

    /// The largest net balance this scope has held. Monotone over the
    /// scope's lifetime.
    pub fn high_water(&self) -> u64 {
        self.high
    }
}

impl Drop for MeterScope {
    fn drop(&mut self) {
        self.meter.free(self.held);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_balance() {
        let m = MemoryMeter::new();
        m.alloc(100);
        m.alloc(50);
        m.free(100);
        assert_eq!(m.current(), 50);
        assert_eq!(m.high_water(), 150);
    }

    #[test]
    fn resize_moves_both_directions() {
        let m = MemoryMeter::new();
        m.resize(0, 1000);
        m.resize(1000, 250);
        assert_eq!(m.current(), 250);
        m.resize(250, 600);
        assert_eq!(m.current(), 600);
        assert_eq!(m.high_water(), 1000);
    }

    #[test]
    fn clones_share_the_tally() {
        let a = MemoryMeter::new();
        let b = a.clone();
        a.alloc(64);
        b.alloc(36);
        assert_eq!(a.current(), 100);
        assert_eq!(b.high_water(), 100);
    }

    #[test]
    fn high_water_resets_to_current() {
        let m = MemoryMeter::new();
        m.alloc(500);
        m.free(400);
        m.reset_high_water();
        assert_eq!(m.high_water(), 100);
        m.alloc(50);
        assert_eq!(m.high_water(), 150);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "debug builds assert on underflow")]
    fn free_saturates_instead_of_wrapping() {
        let m = MemoryMeter::new();
        m.alloc(10);
        m.free(1000);
        assert_eq!(m.current(), 0);
    }

    #[test]
    fn scope_balances_on_drop() {
        let m = MemoryMeter::new();
        {
            let mut s = m.scope();
            s.alloc(4096);
            s.resize(4096, 8192);
            assert_eq!(m.current(), 8192);
            assert_eq!(s.high_water(), 8192);
            s.free(192);
            assert_eq!(s.held(), 8000);
            assert_eq!(s.high_water(), 8192, "scope high-water is monotone");
        }
        assert_eq!(m.current(), 0, "dropping the scope frees its balance");
        assert_eq!(m.high_water(), 8192, "the meter's peak survives");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Interleaved alloc/free/resize sequences keep the meter equal
            /// to a reference model: the balance never goes negative (free
            /// clamps, never wraps) and the high-water mark tracks the true
            /// peak exactly.
            #[test]
            fn meter_matches_a_reference_model(
                ops in proptest::collection::vec((0u8..3u8, 0u64..10_000u64), 1..60)
            ) {
                let meter = MemoryMeter::new();
                let mut model = 0u64;
                let mut peak = 0u64;
                for &(op, bytes) in &ops {
                    match op {
                        0 => {
                            meter.alloc(bytes);
                            model += bytes;
                        }
                        1 => {
                            // Over-freeing is a debug-asserted bug; the
                            // property drives only balanced sequences.
                            let freed = bytes.min(model);
                            meter.free(freed);
                            model -= freed;
                        }
                        _ => {
                            meter.resize(model, bytes);
                            model = bytes;
                        }
                    }
                    peak = peak.max(model);
                    prop_assert_eq!(meter.current(), model);
                    prop_assert_eq!(meter.high_water(), peak);
                }
            }

            /// Scopes: per-scope high water is monotone over the scope's
            /// lifetime, the meter always reads the sum of live scope
            /// balances, and once every scope drops the meter is back to
            /// zero with its peak preserved.
            #[test]
            fn scope_high_water_is_monotone_and_drops_balance(
                ops in proptest::collection::vec((0u8..3u8, 0u64..10_000u64), 1..60)
            ) {
                let meter = MemoryMeter::new();
                let mut observed_peak = 0u64;
                {
                    let mut a = meter.scope();
                    let mut b = meter.scope();
                    let mut last_high = [0u64; 2];
                    for (i, &(op, bytes)) in ops.iter().enumerate() {
                        let which = i % 2;
                        let scope = if which == 0 { &mut a } else { &mut b };
                        match op {
                            0 => scope.alloc(bytes),
                            1 => {
                                let freed = bytes.min(scope.held());
                                scope.free(freed);
                            }
                            // Treat the scope's whole balance as one
                            // growable buffer.
                            _ => {
                                let old = scope.held();
                                scope.resize(old, bytes);
                            }
                        }
                        let high = scope.high_water();
                        prop_assert!(
                            high >= last_high[which],
                            "scope high water regressed: {} -> {}",
                            last_high[which],
                            high
                        );
                        prop_assert!(high >= scope.held());
                        last_high[which] = high;
                        prop_assert_eq!(meter.current(), a.held() + b.held());
                        observed_peak = observed_peak.max(meter.current());
                    }
                }
                prop_assert_eq!(
                    meter.current(),
                    0,
                    "meter must read zero after every scope drops"
                );
                prop_assert!(meter.high_water() >= observed_peak);
            }
        }
    }

    #[test]
    fn nested_scopes_compose() {
        let m = MemoryMeter::new();
        let mut outer = m.scope();
        outer.alloc(100);
        {
            let mut inner = m.scope();
            inner.alloc(200);
            assert_eq!(m.current(), 300);
        }
        assert_eq!(m.current(), 100);
        drop(outer);
        assert_eq!(m.current(), 0);
    }
}
