//! Resource budgets: deterministic memory accounting and stall watchdogs.
//!
//! The rest of the workspace bounds *time* (solver work budgets, wall-clock
//! deadlines) but not *space*: an instance that balloons the clause arena or
//! a tape that outgrows RAM kills the whole sweep via OOM, and a worker
//! stuck in a loop that never polls its deadline hangs forever. This crate
//! supplies the two missing primitives, with no dependencies so every layer
//! can use them:
//!
//! - [`MemoryMeter`] — explicit *logical-byte* accounting. Components report
//!   the bytes they asked for (element count × element size), never what the
//!   allocator actually reserved, so a reading is a pure function of the
//!   computation and identical on every machine and allocator. That is what
//!   makes a memory verdict label-safe: a budget trip at N logical bytes
//!   reproduces everywhere, while RSS-based verdicts would quarantine
//!   different instances on different hosts (see `DESIGN.md` §12).
//! - [`Watchdog`] — a monitor thread fed by per-worker [`Heartbeat`]s.
//!   Deadlines are *polled*, so a worker stuck between polls is invisible to
//!   them; the watchdog watches for heartbeats that stop advancing and trips
//!   a caller-supplied cancellation hook.
//! - [`process_rss_bytes`] — the one deliberately *physical* reading, for
//!   the serve-side watermark that sheds load before the OS OOM-kills the
//!   process. Shedding is machine-local back-pressure, not a label, so
//!   physical truth is the right measure there.

mod meter;
mod watchdog;

pub use meter::{MemoryMeter, MeterScope};
pub use watchdog::{Heartbeat, Watchdog, WatchdogConfig};

/// Resident-set size of the current process in bytes, if the platform
/// exposes it (`/proc/self/statm` on Linux; `None` elsewhere).
///
/// This is a physical measurement — use it only for machine-local shedding
/// decisions (the serve watermark), never for anything that labels or
/// quarantines an instance.
pub fn process_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
        let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
        // Page size is 4 KiB on every Linux target this workspace builds
        // for; sysconf would need libc, which this crate deliberately
        // avoids.
        Some(resident_pages * 4096)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_available_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = process_rss_bytes().expect("statm readable");
            assert!(rss > 0, "a running process has resident pages");
        }
    }
}
