//! Stall detection for workers the polling deadlines can't see.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

/// Watchdog tuning.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// How long a heartbeat may go without advancing before its worker is
    /// declared stalled.
    pub stall_after: Duration,
    /// Monitor wake interval. Detection latency is `stall_after` plus at
    /// most one poll.
    pub poll: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_after: Duration::from_secs(30),
            poll: Duration::from_millis(100),
        }
    }
}

/// Monitor-thread bookkeeping: the tick count last observed and when it
/// last changed. Touched only under the mutex, by the monitor and by
/// [`Heartbeat::rearm`].
#[derive(Debug)]
struct Seen {
    ticks: u64,
    at: Instant,
}

struct HeartbeatInner {
    label: String,
    ticks: AtomicU64,
    /// Only armed heartbeats are stall-checked; workers disarm while idle
    /// (waiting for work is not a stall).
    armed: AtomicBool,
    tripped: AtomicBool,
    on_stall: Box<dyn Fn(&str) + Send + Sync>,
    seen: Mutex<Seen>,
}

impl std::fmt::Debug for HeartbeatInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeartbeatInner")
            .field("label", &self.label)
            .field("ticks", &self.ticks)
            .field("armed", &self.armed)
            .field("tripped", &self.tripped)
            .finish_non_exhaustive()
    }
}

/// A per-worker progress pulse, from [`Watchdog::watch`].
///
/// The worker calls [`beat`](Heartbeat::beat) whenever it makes progress —
/// from the solver's conflict-poll sites, per training epoch, per request
/// stage. If the count stops advancing for the configured window while the
/// heartbeat is armed, the watchdog marks it tripped and runs the worker's
/// stall hook (which conventionally cancels the worker's current attempt).
///
/// Cloning shares the pulse: any clone's beat feeds the same watchdog
/// entry.
#[derive(Debug, Clone)]
pub struct Heartbeat {
    inner: Arc<HeartbeatInner>,
}

impl Heartbeat {
    /// Records progress. Lock-free; call as often as you like.
    pub fn beat(&self) {
        self.inner.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Total beats recorded so far (diagnostic; the watchdog itself only
    /// cares whether the count advances).
    pub fn ticks(&self) -> u64 {
        self.inner.ticks.load(Ordering::Relaxed)
    }

    /// Whether the watchdog has declared this worker stalled.
    pub fn tripped(&self) -> bool {
        self.inner.tripped.load(Ordering::Relaxed)
    }

    /// Stops stall-checking (the worker is idle between work items).
    pub fn disarm(&self) {
        self.inner.armed.store(false, Ordering::Relaxed);
    }

    /// Resumes stall-checking with a fresh window and a cleared trip flag
    /// (the worker picked up its next work item).
    pub fn rearm(&self) {
        let mut seen = self.inner.seen.lock().unwrap_or_else(|e| e.into_inner());
        seen.ticks = self.inner.ticks.load(Ordering::Relaxed);
        seen.at = Instant::now();
        self.inner.tripped.store(false, Ordering::Relaxed);
        self.inner.armed.store(true, Ordering::Relaxed);
    }
}

struct Shared {
    config: WatchdogConfig,
    stop: Mutex<bool>,
    wake: Condvar,
    watched: Mutex<Vec<Weak<HeartbeatInner>>>,
}

/// The stall monitor: one background thread sweeping every registered
/// [`Heartbeat`] (see the [module docs](self) and `DESIGN.md` §12 for how
/// this complements — rather than replaces — polled deadlines).
///
/// ```
/// use std::sync::atomic::{AtomicBool, Ordering};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let dog = budget::Watchdog::new(budget::WatchdogConfig {
///     stall_after: Duration::from_millis(20),
///     poll: Duration::from_millis(5),
/// });
/// let cancelled = Arc::new(AtomicBool::new(false));
/// let hook = Arc::clone(&cancelled);
/// let hb = dog.watch("worker-0", move |_| hook.store(true, Ordering::Relaxed));
/// // The worker never beats: the watchdog trips it.
/// while !hb.tripped() {
///     std::thread::sleep(Duration::from_millis(5));
/// }
/// assert!(cancelled.load(Ordering::Relaxed));
/// ```
pub struct Watchdog {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("config", &self.shared.config)
            .finish_non_exhaustive()
    }
}

impl Watchdog {
    /// Starts the monitor thread.
    pub fn new(config: WatchdogConfig) -> Self {
        let shared = Arc::new(Shared {
            config,
            stop: Mutex::new(false),
            wake: Condvar::new(),
            watched: Mutex::new(Vec::new()),
        });
        let monitor = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("watchdog".to_owned())
            .spawn(move || monitor_loop(&monitor))
            .expect("spawn watchdog thread");
        Watchdog {
            shared,
            thread: Some(thread),
        }
    }

    /// Registers a worker. `on_stall` runs (once per arming) on the monitor
    /// thread when the heartbeat stops advancing for the stall window; it
    /// receives `label`. The returned heartbeat starts armed.
    pub fn watch(&self, label: &str, on_stall: impl Fn(&str) + Send + Sync + 'static) -> Heartbeat {
        let inner = Arc::new(HeartbeatInner {
            label: label.to_owned(),
            ticks: AtomicU64::new(0),
            armed: AtomicBool::new(true),
            tripped: AtomicBool::new(false),
            on_stall: Box::new(on_stall),
            seen: Mutex::new(Seen {
                ticks: 0,
                at: Instant::now(),
            }),
        });
        self.shared
            .watched
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::downgrade(&inner));
        Heartbeat { inner }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        *self.shared.stop.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.shared.wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn monitor_loop(shared: &Shared) {
    let mut stop = shared.stop.lock().unwrap_or_else(|e| e.into_inner());
    while !*stop {
        let (guard, _) = shared
            .wake
            .wait_timeout(stop, shared.config.poll)
            .unwrap_or_else(|e| e.into_inner());
        stop = guard;
        if *stop {
            return;
        }
        drop(stop);
        sweep(shared);
        stop = shared.stop.lock().unwrap_or_else(|e| e.into_inner());
    }
}

fn sweep(shared: &Shared) {
    let mut watched = shared.watched.lock().unwrap_or_else(|e| e.into_inner());
    watched.retain(|weak| weak.strong_count() > 0);
    let live: Vec<Arc<HeartbeatInner>> = watched.iter().filter_map(Weak::upgrade).collect();
    drop(watched);
    let now = Instant::now();
    for hb in live {
        if !hb.armed.load(Ordering::Relaxed) || hb.tripped.load(Ordering::Relaxed) {
            continue;
        }
        let ticks = hb.ticks.load(Ordering::Relaxed);
        let mut seen = hb.seen.lock().unwrap_or_else(|e| e.into_inner());
        if ticks != seen.ticks {
            seen.ticks = ticks;
            seen.at = now;
            continue;
        }
        if now.duration_since(seen.at) >= shared.config.stall_after {
            drop(seen);
            hb.tripped.store(true, Ordering::Relaxed);
            (hb.on_stall)(&hb.label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn fast() -> WatchdogConfig {
        WatchdogConfig {
            stall_after: Duration::from_millis(30),
            poll: Duration::from_millis(5),
        }
    }

    fn wait_for(mut cond: impl FnMut() -> bool) {
        let start = Instant::now();
        while !cond() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "condition never held"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn silent_worker_trips() {
        let dog = Watchdog::new(fast());
        let stalls = Arc::new(AtomicUsize::new(0));
        let count = Arc::clone(&stalls);
        let hb = dog.watch("w0", move |label| {
            assert_eq!(label, "w0");
            count.fetch_add(1, Ordering::Relaxed);
        });
        wait_for(|| hb.tripped());
        // The hook fires exactly once per arming, even across later sweeps.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(stalls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn beating_worker_never_trips() {
        let dog = Watchdog::new(fast());
        let hb = dog.watch("w0", |_| {});
        for _ in 0..20 {
            hb.beat();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(!hb.tripped());
    }

    #[test]
    fn disarmed_worker_is_ignored_and_rearm_resets() {
        let dog = Watchdog::new(fast());
        let hb = dog.watch("w0", |_| {});
        hb.disarm();
        std::thread::sleep(Duration::from_millis(80));
        assert!(!hb.tripped(), "idle workers are not stalls");
        hb.rearm();
        wait_for(|| hb.tripped());
        hb.rearm();
        assert!(!hb.tripped(), "rearm clears the trip");
    }

    #[test]
    fn dropping_the_watchdog_joins_cleanly() {
        let dog = Watchdog::new(fast());
        let _hb = dog.watch("w0", |_| {});
        drop(dog);
    }
}
