//! EPIC-style XOR/XNOR key-gate insertion.

use crate::error::ObfuscateError;
use crate::key::Key;
use crate::locked::LockedCircuit;
use crate::scheme::{copy_gate, validate_selection, SchemeKind};
use netlist::{Circuit, CircuitBuilder, GateId, GateKind};
use rand::Rng;

/// Inserts a key gate behind each selected gate.
///
/// For each selected gate `g` a fresh key input `k` is created and every
/// fan-out of `g` is rerouted through `XOR(g, k)` (correct key bit 0) or
/// `XNOR(g, k)` (correct key bit 1); the polarity is chosen uniformly at
/// random so the correct key is itself uniform. Key bit `i` belongs to the
/// `i`-th selected gate in id order.
///
/// # Errors
///
/// Returns [`ObfuscateError::NotEnoughGates`] if `original` is already
/// locked, and propagates netlist construction failures.
pub fn xor_lock(
    original: &Circuit,
    selected: &[GateId],
    rng: &mut impl Rng,
) -> Result<LockedCircuit, ObfuscateError> {
    validate_selection(original, selected)?;
    let mut builder = CircuitBuilder::new(format!("{}_xorlock", original.name()));
    let mut map: Vec<Option<GateId>> = vec![None; original.num_gates()];
    let mut key_bits: Vec<bool> = Vec::with_capacity(selected.len());

    for (id, gate) in original.iter() {
        let new_id = match gate.kind() {
            GateKind::Input(_) => builder.add_input(gate.name().to_owned())?,
            _ => copy_gate(&mut builder, gate, &map)?,
        };
        if selected.contains(&id) {
            let idx = key_bits.len();
            let key_input = builder.add_key_input(format!("keyinput{idx}"))?;
            let bit = rng.gen::<bool>();
            let kind = if bit { GateKind::Xnor } else { GateKind::Xor };
            let lock = builder.add_gate(format!("xlk{idx}"), kind, &[new_id, key_input])?;
            key_bits.push(bit);
            map[id.index()] = Some(lock);
        } else {
            map[id.index()] = Some(new_id);
        }
    }
    for &out in original.outputs() {
        builder.mark_output(map[out.index()].expect("all gates mapped"));
    }

    Ok(LockedCircuit {
        original: original.clone(),
        locked: builder.finish()?,
        key: Key::from_bits(key_bits),
        selected: selected.to_vec(),
        scheme: SchemeKind::XorLock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::c17;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lock_c17(n: usize, seed: u64) -> LockedCircuit {
        let c = c17();
        let mut rng = StdRng::seed_from_u64(seed);
        let sel = crate::select_gates(&c, SchemeKind::XorLock, n, &mut rng).unwrap();
        xor_lock(&c, &sel, &mut rng).unwrap()
    }

    #[test]
    fn correct_key_restores_function() {
        for seed in 0..5 {
            let locked = lock_c17(3, seed);
            assert!(locked.verify_key(&locked.key).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn wrong_key_breaks_function() {
        let locked = lock_c17(3, 1);
        let mut wrong = locked.key.bits().to_vec();
        wrong[0] = !wrong[0];
        // An XOR key gate with a flipped bit inverts a live signal, which in
        // c17 always reaches an output.
        assert!(!locked.verify_key(&Key::from_bits(wrong)).unwrap());
    }

    #[test]
    fn structure_is_as_expected() {
        let locked = lock_c17(2, 2);
        assert_eq!(locked.locked.keys().len(), 2);
        assert_eq!(locked.locked.inputs().len(), 5);
        assert_eq!(locked.locked.outputs().len(), 2);
        // 6 original NANDs + 2 lock gates.
        assert_eq!(locked.locked.num_logic_gates(), 8);
        assert_eq!(locked.key.len(), 2);
        assert_eq!(locked.selected.len(), 2);
    }

    #[test]
    fn already_locked_circuit_is_rejected() {
        let locked = lock_c17(1, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let sel = vec![locked.locked.find("n22").unwrap()];
        assert!(xor_lock(&locked.locked, &sel, &mut rng).is_err());
    }

    #[test]
    fn locked_netlist_round_trips_through_bench() {
        let locked = lock_c17(2, 4);
        let text = locked.locked.to_bench();
        let reparsed = Circuit::from_bench("locked", &text).unwrap();
        assert_eq!(reparsed.keys().len(), 2);
        // Functional equivalence of the locked circuits under the correct key.
        assert!(locked
            .locked
            .equiv_random(&reparsed, locked.key.bits(), locked.key.bits(), 4, 7)
            .unwrap());
    }
}
