//! LUT-based obfuscation: the paper's locking scheme (Section IV-A).
//!
//! Each selected gate is replaced by a key-programmed lookup table of a
//! fixed size `k`: the gate's fan-ins become the LUT's select lines (padded
//! with random other signals up to `k`), and the `2^k` truth-table entries
//! become fresh key inputs. Structurally the keyed LUT is realized as a
//! binary MUX tree over the key inputs, which is exactly how a
//! key-programmable LUT cell appears in a locked netlist.

use crate::error::ObfuscateError;
use crate::key::Key;
use crate::locked::LockedCircuit;
use crate::scheme::{copy_gate, validate_selection, SchemeKind};
use netlist::{Circuit, CircuitBuilder, GateId, GateKind};
use rand::Rng;

/// Replaces each selected gate with a `lut_size`-input key-programmed LUT.
///
/// Key bits `[i * 2^k, (i+1) * 2^k)` hold the truth table of the `i`-th
/// selected gate (in id order): bit `r` of that block is the gate's output
/// on LUT row `r`, where select-line `j` supplies bit `j` of `r`.
///
/// # Errors
///
/// Returns [`ObfuscateError::BadLutSize`] for `lut_size` outside 1..=6,
/// [`ObfuscateError::NotEnoughGates`] if `original` is already locked, and
/// propagates netlist construction failures.
///
/// # Panics
///
/// Panics if a selected gate's fan-in count exceeds `lut_size` (use
/// [`select_gates`](crate::select_gates), which only returns eligible gates).
pub fn lut_lock(
    original: &Circuit,
    selected: &[GateId],
    lut_size: usize,
    rng: &mut impl Rng,
) -> Result<LockedCircuit, ObfuscateError> {
    if lut_size == 0 || lut_size > 6 {
        return Err(ObfuscateError::BadLutSize(lut_size));
    }
    validate_selection(original, selected)?;
    let rows = 1usize << lut_size;
    let mut builder = CircuitBuilder::new(format!("{}_lut{}lock", original.name(), lut_size));
    let mut map: Vec<Option<GateId>> = vec![None; original.num_gates()];
    let mut placed: Vec<GateId> = Vec::with_capacity(original.num_gates());
    let mut key_bits: Vec<bool> = Vec::with_capacity(selected.len() * rows);
    let mut mux_counter = 0usize;

    for (id, gate) in original.iter() {
        if gate.kind().is_input() {
            let new_id = builder.add_input(gate.name().to_owned())?;
            map[id.index()] = Some(new_id);
            placed.push(new_id);
            continue;
        }
        if !selected.contains(&id) {
            let new_id = copy_gate(&mut builder, gate, &map)?;
            map[id.index()] = Some(new_id);
            placed.push(new_id);
            continue;
        }

        // Replace this gate with a keyed LUT.
        let arity = gate.fanin().len();
        assert!(
            arity <= lut_size,
            "selected gate `{}` has fan-in {} > LUT size {}",
            gate.name(),
            arity,
            lut_size
        );
        let mut selects: Vec<GateId> = gate
            .fanin()
            .iter()
            .map(|f| map[f.index()].expect("id order is topological"))
            .collect();
        // Pad the select lines with random earlier signals; the correct key
        // ignores them, but an attacker cannot tell pads from real inputs.
        while selects.len() < lut_size {
            let pad = placed[rng.gen_range(0..placed.len())];
            if !selects.contains(&pad) || placed.len() <= selects.len() {
                selects.push(pad);
            }
        }

        // Correct truth table: evaluate the original gate on the real fan-in
        // bits of each row; pad bits are don't-cares filled by the gate value.
        let lut_index = key_bits.len() / rows;
        let mut leaves: Vec<GateId> = Vec::with_capacity(rows);
        for row in 0..rows {
            let vals: Vec<bool> = (0..arity).map(|j| (row >> j) & 1 == 1).collect();
            key_bits.push(gate.kind().eval_bools(&vals));
            let key_input = builder.add_key_input(format!("keyinput{}", lut_index * rows + row))?;
            leaves.push(key_input);
        }
        let root = mux_tree(&mut builder, &selects, &leaves, &mut mux_counter)?;
        map[id.index()] = Some(root);
        placed.push(root);
    }
    for &out in original.outputs() {
        builder.mark_output(map[out.index()].expect("all gates mapped"));
    }

    Ok(LockedCircuit {
        original: original.clone(),
        locked: builder.finish()?,
        key: Key::from_bits(key_bits),
        selected: selected.to_vec(),
        scheme: SchemeKind::LutLock { lut_size },
    })
}

/// Builds a MUX tree selecting `leaves[row]` where bit `j` of `row` is the
/// value of `selects[j]`. Returns the root gate.
fn mux_tree(
    builder: &mut CircuitBuilder,
    selects: &[GateId],
    leaves: &[GateId],
    counter: &mut usize,
) -> Result<GateId, ObfuscateError> {
    debug_assert_eq!(leaves.len(), 1 << selects.len());
    if selects.is_empty() {
        return Ok(leaves[0]);
    }
    let msb = selects[selects.len() - 1];
    let half = leaves.len() / 2;
    let low = mux_tree(
        builder,
        &selects[..selects.len() - 1],
        &leaves[..half],
        counter,
    )?;
    let high = mux_tree(
        builder,
        &selects[..selects.len() - 1],
        &leaves[half..],
        counter,
    )?;
    let name = format!("lutmux{}", *counter);
    *counter += 1;
    Ok(builder.add_gate(name, GateKind::Mux, &[msb, low, high])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::c17;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lock_c17(n: usize, lut_size: usize, seed: u64) -> LockedCircuit {
        let c = c17();
        let mut rng = StdRng::seed_from_u64(seed);
        let sel = crate::select_gates(&c, SchemeKind::LutLock { lut_size }, n, &mut rng).unwrap();
        lut_lock(&c, &sel, lut_size, &mut rng).unwrap()
    }

    #[test]
    fn correct_key_restores_function() {
        for lut_size in 2..=4 {
            for seed in 0..4 {
                let locked = lock_c17(2, lut_size, seed);
                assert!(
                    locked.verify_key(&locked.key).unwrap(),
                    "lut{lut_size} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn key_layout_matches_paper_scheme() {
        let locked = lock_c17(3, 4, 1);
        assert_eq!(locked.key.len(), 3 * 16);
        assert_eq!(locked.locked.keys().len(), 3 * 16);
        // Key inputs are named keyinput0..keyinput47 in block order.
        assert_eq!(
            locked.locked.gate(locked.locked.keys()[0]).name(),
            "keyinput0"
        );
        assert_eq!(
            locked.locked.gate(locked.locked.keys()[47]).name(),
            "keyinput47"
        );
    }

    #[test]
    fn truth_table_blocks_encode_the_replaced_gates() {
        // c17 is all NANDs with fan-in 2: every block's low 4 rows must be
        // the NAND truth table (1,1,1,0) replicated over pad combinations.
        let locked = lock_c17(2, 2, 3);
        for block in locked.key.bits().chunks(4) {
            assert_eq!(block, &[true, true, true, false]);
        }
    }

    #[test]
    fn wrong_truth_table_breaks_function() {
        let locked = lock_c17(2, 2, 5);
        let mut wrong = locked.key.bits().to_vec();
        // Invert an entire LUT block: the gate becomes its complement.
        for b in wrong.iter_mut().take(4) {
            *b = !*b;
        }
        assert!(!locked.verify_key(&Key::from_bits(wrong)).unwrap());
    }

    #[test]
    fn mux_tree_depth_is_lut_size() {
        // Each keyed LUT of size k adds 2^k - 1 MUX gates.
        let locked = lock_c17(1, 3, 2);
        let muxes = locked
            .locked
            .gates()
            .filter(|g| matches!(g.kind(), GateKind::Mux))
            .count();
        assert_eq!(muxes, 7);
    }

    #[test]
    fn rejects_bad_lut_sizes() {
        let c = c17();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            lut_lock(&c, &[], 0, &mut rng),
            Err(ObfuscateError::BadLutSize(0))
        ));
        assert!(matches!(
            lut_lock(&c, &[], 7, &mut rng),
            Err(ObfuscateError::BadLutSize(7))
        ));
    }
}
