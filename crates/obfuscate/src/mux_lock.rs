//! Key-controlled MUX locking with decoy signals.

use crate::error::ObfuscateError;
use crate::key::Key;
use crate::locked::LockedCircuit;
use crate::scheme::{copy_gate, validate_selection, SchemeKind};
use netlist::{Circuit, CircuitBuilder, GateId, GateKind};
use rand::Rng;

/// Reroutes each selected gate through a key-controlled 2:1 multiplexer.
///
/// For each selected gate `g` a fresh key input `k` and a random *decoy*
/// signal `d` (any earlier gate of the rebuilt netlist) are chosen; fan-outs
/// of `g` then read `MUX(k, g, d)` (correct key bit 0) or `MUX(k, d, g)`
/// (correct key bit 1). A wrong key bit substitutes the decoy for the true
/// signal.
///
/// # Errors
///
/// Returns [`ObfuscateError::NotEnoughGates`] if `original` is already
/// locked, and propagates netlist construction failures.
pub fn mux_lock(
    original: &Circuit,
    selected: &[GateId],
    rng: &mut impl Rng,
) -> Result<LockedCircuit, ObfuscateError> {
    validate_selection(original, selected)?;
    let mut builder = CircuitBuilder::new(format!("{}_muxlock", original.name()));
    let mut map: Vec<Option<GateId>> = vec![None; original.num_gates()];
    let mut placed: Vec<GateId> = Vec::with_capacity(original.num_gates());
    let mut key_bits: Vec<bool> = Vec::with_capacity(selected.len());

    for (id, gate) in original.iter() {
        let new_id = match gate.kind() {
            GateKind::Input(_) => builder.add_input(gate.name().to_owned())?,
            _ => copy_gate(&mut builder, gate, &map)?,
        };
        if selected.contains(&id) {
            let idx = key_bits.len();
            let key_input = builder.add_key_input(format!("keyinput{idx}"))?;
            // Any already-placed signal is safe as a decoy (no cycles).
            let decoy = placed[rng.gen_range(0..placed.len())];
            let bit = rng.gen::<bool>();
            let (a, b) = if bit {
                (decoy, new_id)
            } else {
                (new_id, decoy)
            };
            let lock = builder.add_gate(format!("mlk{idx}"), GateKind::Mux, &[key_input, a, b])?;
            key_bits.push(bit);
            map[id.index()] = Some(lock);
            placed.push(lock);
        } else {
            map[id.index()] = Some(new_id);
            placed.push(new_id);
        }
    }
    for &out in original.outputs() {
        builder.mark_output(map[out.index()].expect("all gates mapped"));
    }

    Ok(LockedCircuit {
        original: original.clone(),
        locked: builder.finish()?,
        key: Key::from_bits(key_bits),
        selected: selected.to_vec(),
        scheme: SchemeKind::MuxLock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::c17;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lock_c17(n: usize, seed: u64) -> LockedCircuit {
        let c = c17();
        let mut rng = StdRng::seed_from_u64(seed);
        let sel = crate::select_gates(&c, SchemeKind::MuxLock, n, &mut rng).unwrap();
        mux_lock(&c, &sel, &mut rng).unwrap()
    }

    #[test]
    fn correct_key_restores_function() {
        for seed in 0..8 {
            let locked = lock_c17(3, seed);
            assert!(locked.verify_key(&locked.key).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn structure_is_as_expected() {
        let locked = lock_c17(2, 1);
        assert_eq!(locked.locked.keys().len(), 2);
        assert_eq!(locked.key.len(), 2);
        // 6 original NANDs + 2 MUX lock gates.
        assert_eq!(locked.locked.num_logic_gates(), 8);
    }

    #[test]
    fn locking_every_gate_works() {
        let c = c17();
        let mut rng = StdRng::seed_from_u64(5);
        let sel = crate::select_gates(&c, SchemeKind::MuxLock, 6, &mut rng).unwrap();
        let locked = mux_lock(&c, &sel, &mut rng).unwrap();
        assert!(locked.verify_key(&locked.key).unwrap());
    }
}
