use crate::error::ObfuscateError;
use crate::locked::LockedCircuit;
use crate::{lut_lock, mux_lock, xor_lock};
use netlist::{Circuit, CircuitBuilder, Gate, GateId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// The locking family to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// XOR/XNOR key gates spliced behind selected gates (EPIC-style).
    XorLock,
    /// Key-controlled 2:1 MUX between the true signal and a decoy.
    MuxLock,
    /// Replace selected gates with key-programmed LUTs of `lut_size` inputs
    /// (the paper uses `lut_size = 4`).
    LutLock {
        /// Number of LUT data inputs (1..=6).
        lut_size: usize,
    },
}

impl SchemeKind {
    /// Key bits consumed per locked gate.
    pub fn key_bits_per_gate(&self) -> usize {
        match self {
            SchemeKind::XorLock | SchemeKind::MuxLock => 1,
            SchemeKind::LutLock { lut_size } => 1 << lut_size,
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeKind::XorLock => f.write_str("xor-lock"),
            SchemeKind::MuxLock => f.write_str("mux-lock"),
            SchemeKind::LutLock { lut_size } => write!(f, "lut{lut_size}-lock"),
        }
    }
}

/// Logic gates of `circuit` that `scheme` can lock.
///
/// All schemes require non-input gates; LUT locking additionally requires
/// the gate's fan-in count to fit in the LUT.
pub fn eligible_gates(circuit: &Circuit, scheme: SchemeKind) -> Vec<GateId> {
    circuit
        .iter()
        .filter(|(_, g)| !g.kind().is_input())
        .filter(|(_, g)| match scheme {
            SchemeKind::XorLock | SchemeKind::MuxLock => true,
            SchemeKind::LutLock { lut_size } => {
                g.fanin().len() <= lut_size && !g.fanin().is_empty()
            }
        })
        .map(|(id, _)| id)
        .collect()
}

/// Samples `count` distinct eligible gates, sorted by id.
///
/// # Errors
///
/// Returns [`ObfuscateError::NotEnoughGates`] when fewer than `count` gates
/// are eligible, and [`ObfuscateError::BadLutSize`] for LUT sizes outside
/// 1..=6.
pub fn select_gates(
    circuit: &Circuit,
    scheme: SchemeKind,
    count: usize,
    rng: &mut StdRng,
) -> Result<Vec<GateId>, ObfuscateError> {
    if let SchemeKind::LutLock { lut_size } = scheme {
        if lut_size == 0 || lut_size > 6 {
            return Err(ObfuscateError::BadLutSize(lut_size));
        }
    }
    let eligible = eligible_gates(circuit, scheme);
    if eligible.len() < count {
        return Err(ObfuscateError::NotEnoughGates {
            available: eligible.len(),
            requested: count,
        });
    }
    let mut chosen: Vec<GateId> = eligible.choose_multiple(rng, count).copied().collect();
    chosen.sort();
    Ok(chosen)
}

/// Locks `count` randomly selected gates of `original` with `scheme`,
/// deterministically in `seed`.
///
/// # Errors
///
/// Propagates the selection errors of [`select_gates`] and the per-scheme
/// locking errors (see [`xor_lock`], [`mux_lock`], [`lut_lock`]).
pub fn lock_random(
    original: &Circuit,
    scheme: SchemeKind,
    count: usize,
    seed: u64,
) -> Result<LockedCircuit, ObfuscateError> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0BF0_5CA7_E5EE_D000);
    let selected = select_gates(original, scheme, count, &mut rng)?;
    match scheme {
        SchemeKind::XorLock => xor_lock(original, &selected, &mut rng),
        SchemeKind::MuxLock => mux_lock(original, &selected, &mut rng),
        SchemeKind::LutLock { lut_size } => lut_lock(original, &selected, lut_size, &mut rng),
    }
}

/// Copies `gate` into `builder` with fan-ins remapped through `map`.
pub(crate) fn copy_gate(
    builder: &mut CircuitBuilder,
    gate: &Gate,
    map: &[Option<GateId>],
) -> Result<GateId, ObfuscateError> {
    let fanin: Vec<GateId> = gate
        .fanin()
        .iter()
        .map(|f| map[f.index()].expect("id order is topological"))
        .collect();
    Ok(builder.add_gate(gate.name().to_owned(), gate.kind().clone(), &fanin)?)
}

/// Validates a locking selection: the original must be unlocked, and the
/// selection must consist of distinct logic gates.
pub(crate) fn validate_selection(
    original: &Circuit,
    selected: &[GateId],
) -> Result<(), ObfuscateError> {
    if !original.keys().is_empty() {
        // Re-locking an already locked circuit would interleave key orders;
        // callers should lock the original netlist instead.
        return Err(ObfuscateError::NotEnoughGates {
            available: 0,
            requested: selected.len(),
        });
    }
    for &id in selected {
        assert!(
            id.index() < original.num_gates(),
            "selected gate outside the circuit"
        );
        assert!(
            !original.gate(id).kind().is_input(),
            "primary inputs cannot be locked"
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::c17;

    #[test]
    fn eligible_counts() {
        let c = c17();
        assert_eq!(eligible_gates(&c, SchemeKind::XorLock).len(), 6);
        assert_eq!(
            eligible_gates(&c, SchemeKind::LutLock { lut_size: 2 }).len(),
            6
        );
        assert_eq!(
            eligible_gates(&c, SchemeKind::LutLock { lut_size: 1 }).len(),
            0
        );
    }

    #[test]
    fn select_rejects_oversized_requests() {
        let c = c17();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            select_gates(&c, SchemeKind::XorLock, 7, &mut rng),
            Err(ObfuscateError::NotEnoughGates {
                available: 6,
                requested: 7
            })
        ));
    }

    #[test]
    fn select_rejects_bad_lut_size() {
        let c = c17();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            select_gates(&c, SchemeKind::LutLock { lut_size: 7 }, 1, &mut rng),
            Err(ObfuscateError::BadLutSize(7))
        ));
        assert!(matches!(
            select_gates(&c, SchemeKind::LutLock { lut_size: 0 }, 1, &mut rng),
            Err(ObfuscateError::BadLutSize(0))
        ));
    }

    #[test]
    fn selection_is_sorted_and_distinct() {
        let c = c17();
        let mut rng = StdRng::seed_from_u64(3);
        let sel = select_gates(&c, SchemeKind::XorLock, 4, &mut rng).unwrap();
        assert_eq!(sel.len(), 4);
        assert!(sel.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn key_bits_per_gate() {
        assert_eq!(SchemeKind::XorLock.key_bits_per_gate(), 1);
        assert_eq!(SchemeKind::MuxLock.key_bits_per_gate(), 1);
        assert_eq!(SchemeKind::LutLock { lut_size: 4 }.key_bits_per_gate(), 16);
    }

    #[test]
    fn scheme_display() {
        assert_eq!(SchemeKind::XorLock.to_string(), "xor-lock");
        assert_eq!(SchemeKind::LutLock { lut_size: 4 }.to_string(), "lut4-lock");
    }
}
