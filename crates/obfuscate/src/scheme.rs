use crate::error::ObfuscateError;
use crate::locked::LockedCircuit;
use crate::{anti_sat_lock, lut_lock, mux_lock, xor_lock};
use netlist::{Circuit, CircuitBuilder, Gate, GateId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// The locking family to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// XOR/XNOR key gates spliced behind selected gates (EPIC-style).
    XorLock,
    /// Key-controlled 2:1 MUX between the true signal and a decoy.
    MuxLock,
    /// Replace selected gates with key-programmed LUTs of `lut_size` inputs
    /// (the paper uses `lut_size = 4`).
    LutLock {
        /// Number of LUT data inputs (1..=6).
        lut_size: usize,
    },
    /// SAT-resilient Anti-SAT point-function block (Xie & Srivastava):
    /// `Y = AND(X ⊕ K1) ∧ NAND(X ⊕ K2)` XOR-ed into a selected output cone.
    /// Each selected gate consumes `2 * key_width` key bits and forces the
    /// SAT attack through ~`2^key_width` distinguishing inputs.
    AntiSat {
        /// Tap/comparator width `w` of each block (2..=16); the correct key
        /// repeats the same `w`-bit pattern in both halves.
        key_width: usize,
    },
}

impl SchemeKind {
    /// Key bits consumed per locked gate.
    pub fn key_bits_per_gate(&self) -> usize {
        match self {
            SchemeKind::XorLock | SchemeKind::MuxLock => 1,
            SchemeKind::LutLock { lut_size } => 1 << lut_size,
            SchemeKind::AntiSat { key_width } => 2 * key_width,
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeKind::XorLock => f.write_str("xor-lock"),
            SchemeKind::MuxLock => f.write_str("mux-lock"),
            SchemeKind::LutLock { lut_size } => write!(f, "lut{lut_size}-lock"),
            SchemeKind::AntiSat { key_width } => write!(f, "antisat{key_width}-lock"),
        }
    }
}

/// Logic gates of `circuit` that `scheme` can lock.
///
/// All schemes require non-input gates; LUT locking additionally requires
/// the gate's fan-in count to fit in the LUT, and Anti-SAT anchors only at
/// primary-output gates so a flipped point function always reaches an
/// observable output.
pub fn eligible_gates(circuit: &Circuit, scheme: SchemeKind) -> Vec<GateId> {
    circuit
        .iter()
        .filter(|(_, g)| !g.kind().is_input())
        .filter(|(id, g)| match scheme {
            SchemeKind::XorLock | SchemeKind::MuxLock => true,
            SchemeKind::LutLock { lut_size } => {
                g.fanin().len() <= lut_size && !g.fanin().is_empty()
            }
            SchemeKind::AntiSat { .. } => circuit.outputs().contains(id),
        })
        .map(|(id, _)| id)
        .collect()
}

/// Samples `count` distinct eligible gates, sorted by id.
///
/// # Errors
///
/// Returns [`ObfuscateError::NotEnoughGates`] when fewer than `count` gates
/// are eligible, and [`ObfuscateError::BadLutSize`] for LUT sizes outside
/// 1..=6.
pub fn select_gates(
    circuit: &Circuit,
    scheme: SchemeKind,
    count: usize,
    rng: &mut StdRng,
) -> Result<Vec<GateId>, ObfuscateError> {
    if let SchemeKind::LutLock { lut_size } = scheme {
        if lut_size == 0 || lut_size > 6 {
            return Err(ObfuscateError::BadLutSize(lut_size));
        }
    }
    if let SchemeKind::AntiSat { key_width } = scheme {
        if !(2..=16).contains(&key_width) {
            return Err(ObfuscateError::BadKeyWidth(key_width));
        }
    }
    let eligible = eligible_gates(circuit, scheme);
    if eligible.len() < count {
        return Err(ObfuscateError::NotEnoughGates {
            available: eligible.len(),
            requested: count,
        });
    }
    let mut chosen: Vec<GateId> = eligible.choose_multiple(rng, count).copied().collect();
    chosen.sort();
    Ok(chosen)
}

/// Locks `count` randomly selected gates of `original` with `scheme`,
/// deterministically in `seed`.
///
/// # Errors
///
/// Propagates the selection errors of [`select_gates`] and the per-scheme
/// locking errors (see [`xor_lock`], [`mux_lock`], [`lut_lock`]).
pub fn lock_random(
    original: &Circuit,
    scheme: SchemeKind,
    count: usize,
    seed: u64,
) -> Result<LockedCircuit, ObfuscateError> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0BF0_5CA7_E5EE_D000);
    let selected = select_gates(original, scheme, count, &mut rng)?;
    match scheme {
        SchemeKind::XorLock => xor_lock(original, &selected, &mut rng),
        SchemeKind::MuxLock => mux_lock(original, &selected, &mut rng),
        SchemeKind::LutLock { lut_size } => lut_lock(original, &selected, lut_size, &mut rng),
        SchemeKind::AntiSat { key_width } => {
            anti_sat_lock(original, &selected, key_width, &mut rng)
        }
    }
}

/// Copies `gate` into `builder` with fan-ins remapped through `map`.
pub(crate) fn copy_gate(
    builder: &mut CircuitBuilder,
    gate: &Gate,
    map: &[Option<GateId>],
) -> Result<GateId, ObfuscateError> {
    let fanin: Vec<GateId> = gate
        .fanin()
        .iter()
        .map(|f| map[f.index()].expect("id order is topological"))
        .collect();
    Ok(builder.add_gate(gate.name().to_owned(), gate.kind().clone(), &fanin)?)
}

/// Validates a locking selection: the original must be unlocked, and the
/// selection must consist of distinct logic gates.
pub(crate) fn validate_selection(
    original: &Circuit,
    selected: &[GateId],
) -> Result<(), ObfuscateError> {
    if !original.keys().is_empty() {
        // Re-locking an already locked circuit would interleave key orders;
        // callers should lock the original netlist instead.
        return Err(ObfuscateError::NotEnoughGates {
            available: 0,
            requested: selected.len(),
        });
    }
    for &id in selected {
        assert!(
            id.index() < original.num_gates(),
            "selected gate outside the circuit"
        );
        assert!(
            !original.gate(id).kind().is_input(),
            "primary inputs cannot be locked"
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::c17;

    #[test]
    fn eligible_counts() {
        let c = c17();
        assert_eq!(eligible_gates(&c, SchemeKind::XorLock).len(), 6);
        assert_eq!(
            eligible_gates(&c, SchemeKind::LutLock { lut_size: 2 }).len(),
            6
        );
        assert_eq!(
            eligible_gates(&c, SchemeKind::LutLock { lut_size: 1 }).len(),
            0
        );
    }

    #[test]
    fn select_rejects_oversized_requests() {
        let c = c17();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            select_gates(&c, SchemeKind::XorLock, 7, &mut rng),
            Err(ObfuscateError::NotEnoughGates {
                available: 6,
                requested: 7
            })
        ));
    }

    #[test]
    fn select_rejects_bad_lut_size() {
        let c = c17();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            select_gates(&c, SchemeKind::LutLock { lut_size: 7 }, 1, &mut rng),
            Err(ObfuscateError::BadLutSize(7))
        ));
        assert!(matches!(
            select_gates(&c, SchemeKind::LutLock { lut_size: 0 }, 1, &mut rng),
            Err(ObfuscateError::BadLutSize(0))
        ));
    }

    #[test]
    fn selection_is_sorted_and_distinct() {
        let c = c17();
        let mut rng = StdRng::seed_from_u64(3);
        let sel = select_gates(&c, SchemeKind::XorLock, 4, &mut rng).unwrap();
        assert_eq!(sel.len(), 4);
        assert!(sel.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn key_bits_per_gate() {
        assert_eq!(SchemeKind::XorLock.key_bits_per_gate(), 1);
        assert_eq!(SchemeKind::MuxLock.key_bits_per_gate(), 1);
        assert_eq!(SchemeKind::LutLock { lut_size: 4 }.key_bits_per_gate(), 16);
        assert_eq!(SchemeKind::AntiSat { key_width: 5 }.key_bits_per_gate(), 10);
    }

    #[test]
    fn scheme_display() {
        assert_eq!(SchemeKind::XorLock.to_string(), "xor-lock");
        assert_eq!(SchemeKind::LutLock { lut_size: 4 }.to_string(), "lut4-lock");
        assert_eq!(
            SchemeKind::AntiSat { key_width: 5 }.to_string(),
            "antisat5-lock"
        );
    }

    #[test]
    fn anti_sat_is_anchored_at_primary_outputs() {
        let c = c17();
        let eligible = eligible_gates(&c, SchemeKind::AntiSat { key_width: 3 });
        assert_eq!(eligible.len(), c.outputs().len());
        assert!(eligible.iter().all(|id| c.outputs().contains(id)));
    }

    #[test]
    fn select_rejects_bad_anti_sat_key_width() {
        let c = c17();
        let mut rng = StdRng::seed_from_u64(0);
        for w in [0, 1, 17] {
            assert!(matches!(
                select_gates(&c, SchemeKind::AntiSat { key_width: w }, 1, &mut rng),
                Err(ObfuscateError::BadKeyWidth(width)) if width == w
            ));
        }
    }
}
