use crate::error::ObfuscateError;
use crate::key::Key;
use crate::scheme::SchemeKind;
use netlist::{Circuit, CircuitBuilder, GateId, GateKind, TruthTable};

/// A locked netlist bundled with its secret and its provenance.
///
/// `selected` lists the obfuscated gate ids **in the original circuit** —
/// this is the paper's "encryption location" vector, the input (together
/// with the original topology) of the runtime-prediction model.
#[derive(Debug, Clone, PartialEq)]
pub struct LockedCircuit {
    /// The unlocked source netlist.
    pub original: Circuit,
    /// The keyed netlist the attacker sees.
    pub locked: Circuit,
    /// The correct key.
    pub key: Key,
    /// Ids (in `original`) of the gates chosen for obfuscation.
    pub selected: Vec<GateId>,
    /// Which locking family produced this instance.
    pub scheme: SchemeKind,
}

impl LockedCircuit {
    /// Number of key bits the locked circuit expects.
    pub fn key_len(&self) -> usize {
        self.locked.keys().len()
    }

    /// Resolves the locked netlist under `key` into a key-free circuit by
    /// replacing every key input with a constant (a 0-input LUT).
    ///
    /// # Errors
    ///
    /// Returns [`ObfuscateError::KeyLengthMismatch`] for a wrong-sized key
    /// and propagates netlist rebuild failures.
    pub fn apply_key(&self, key: &Key) -> Result<Circuit, ObfuscateError> {
        if key.len() != self.key_len() {
            return Err(ObfuscateError::KeyLengthMismatch {
                expected: self.key_len(),
                actual: key.len(),
            });
        }
        let mut builder = CircuitBuilder::new(format!("{}_unlocked", self.locked.name()));
        let mut map: Vec<Option<GateId>> = vec![None; self.locked.num_gates()];
        for (id, gate) in self.locked.iter() {
            let new_id = match gate.kind() {
                GateKind::Input(netlist::InputRole::Data) => {
                    builder.add_input(gate.name().to_owned())?
                }
                GateKind::Input(netlist::InputRole::Key) => {
                    let pos = self
                        .locked
                        .keys()
                        .iter()
                        .position(|&k| k == id)
                        .expect("key input is in the key port list");
                    let constant =
                        TruthTable::new(0, key.bit(pos) as u64).expect("0-input tables are valid");
                    builder.add_gate(gate.name().to_owned(), GateKind::Lut(constant), &[])?
                }
                _ => {
                    let fanin: Vec<GateId> = gate
                        .fanin()
                        .iter()
                        .map(|f| map[f.index()].expect("id order is topological"))
                        .collect();
                    builder.add_gate(gate.name().to_owned(), gate.kind().clone(), &fanin)?
                }
            };
            map[id.index()] = Some(new_id);
        }
        for &out in self.locked.outputs() {
            builder.mark_output(map[out.index()].expect("all gates mapped"));
        }
        Ok(builder.finish()?)
    }

    /// Like [`LockedCircuit::apply_key`], followed by the netlist optimizer
    /// (constant folding collapses the key constants and the MUX trees they
    /// feed), recovering a circuit close to the original's size.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LockedCircuit::apply_key`].
    pub fn apply_key_optimized(&self, key: &Key) -> Result<Circuit, ObfuscateError> {
        let applied = self.apply_key(key)?;
        let (optimized, _) = netlist::opt::optimize(&applied)?;
        Ok(optimized)
    }

    /// Checks whether `key` restores the original function, by exhaustive
    /// simulation for small input counts and 1024 random 64-bit-parallel
    /// pattern words otherwise.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LockedCircuit::apply_key`].
    pub fn verify_key(&self, key: &Key) -> Result<bool, ObfuscateError> {
        let applied = self.apply_key(key)?;
        Ok(self
            .original
            .equiv_random(&applied, &[], &[], 16, 0xACE1_F00D)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lock_random, SchemeKind};

    #[test]
    fn apply_key_rejects_wrong_length() {
        let locked = lock_random(&netlist::c17(), SchemeKind::XorLock, 2, 0).unwrap();
        let err = locked.apply_key(&Key::from_bits([true])).unwrap_err();
        assert!(matches!(
            err,
            ObfuscateError::KeyLengthMismatch {
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn applied_circuit_has_no_keys() {
        let locked =
            lock_random(&netlist::c17(), SchemeKind::LutLock { lut_size: 2 }, 2, 0).unwrap();
        let applied = locked.apply_key(&locked.key).unwrap();
        assert!(applied.keys().is_empty());
        assert_eq!(applied.inputs().len(), 5);
        assert_eq!(applied.outputs().len(), 2);
    }

    #[test]
    fn apply_key_optimized_shrinks_back_to_near_original() {
        let base = netlist::c17();
        let locked = lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 3, 1).unwrap();
        // Locked netlist carries 3 MUX trees (15 MUXes each) + 48 key inputs.
        assert!(locked.locked.num_gates() > 3 * base.num_gates());
        let optimized = locked.apply_key_optimized(&locked.key).unwrap();
        assert!(base.equiv_random(&optimized, &[], &[], 8, 5).unwrap());
        // Folding the constant keys collapses most of each MUX tree (full
        // collapse to one gate would need boolean resynthesis, which the
        // optimizer deliberately does not attempt).
        assert!(
            optimized.num_gates() < locked.locked.num_gates() / 2,
            "{} gates after optimization vs {} locked / {} original",
            optimized.num_gates(),
            locked.locked.num_gates(),
            base.num_gates()
        );
    }

    #[test]
    fn key_len_matches_scheme() {
        let locked =
            lock_random(&netlist::c17(), SchemeKind::LutLock { lut_size: 3 }, 2, 0).unwrap();
        assert_eq!(locked.key_len(), 2 * 8);
    }
}
