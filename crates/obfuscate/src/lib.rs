//! Logic-locking (circuit obfuscation) schemes.
//!
//! Implements the three classic gate-level locking families the paper's
//! threat model covers, each producing a [`LockedCircuit`] that pairs the
//! keyed netlist with its correct [`Key`] and the list of *selected* gates
//! (the "encryption locations" that the ICNet gate-mask feature encodes):
//!
//! * [`xor_lock`] — EPIC-style XOR/XNOR key gates spliced behind selected
//!   gates;
//! * [`mux_lock`] — key-controlled 2:1 multiplexers choosing between the
//!   true signal and a decoy;
//! * [`lut_lock`] — the paper's scheme: selected gates are replaced by
//!   key-programmed lookup tables of fixed size (LUT size 4 in the paper),
//!   realized as MUX trees over `2^k` fresh key inputs;
//! * [`anti_sat_lock`] — SAT-resilient Anti-SAT point-function blocks
//!   anchored at primary outputs, forcing ~`2^key_width` DIP iterations out
//!   of the SAT attack.
//!
//! # Example
//!
//! ```
//! use obfuscate::{lock_random, SchemeKind};
//!
//! # fn main() -> Result<(), obfuscate::ObfuscateError> {
//! let original = netlist::c17();
//! let locked = lock_random(&original, SchemeKind::LutLock { lut_size: 2 }, 2, 42)?;
//! assert_eq!(locked.locked.keys().len(), 2 * 4); // 2 LUTs x 2^2 key bits
//! assert!(locked.verify_key(&locked.key)?);
//! # Ok(())
//! # }
//! ```

mod anti_sat;
mod error;
mod key;
mod locked;
mod lut_lock;
mod mux_lock;
pub mod overhead;
mod scheme;
mod xor_lock;

pub use anti_sat::anti_sat_lock;
pub use error::ObfuscateError;
pub use key::Key;
pub use locked::LockedCircuit;
pub use lut_lock::lut_lock;
pub use mux_lock::mux_lock;
pub use scheme::{eligible_gates, lock_random, select_gates, SchemeKind};
pub use xor_lock::xor_lock;
