//! Anti-SAT-style SAT-resilient locking (Xie & Srivastava).
//!
//! Each selected *primary-output* gate `g` is anchored with a point-function
//! block over `w = key_width` primary-input taps `X` and two `w`-bit key
//! halves `K1`, `K2`:
//!
//! ```text
//! Y = AND(X ⊕ K1) ∧ NAND(X ⊕ K2)        g_locked = g ⊕ Y
//! ```
//!
//! With the correct key `K1 = K2 = α` the left AND fires only at the single
//! tap pattern `X = ¬α`, where the right NAND is 0 — so `Y ≡ 0` and the
//! circuit computes its original function. A functionally wrong key has
//! `K1 ≠ K2` in some block, making `Y = 1` at exactly the one tap pattern
//! `X = ¬K1`: each oracle query (DIP) the SAT attack learns can rule out
//! only the wrong key pairs that misbehave at that single pattern, i.e. a
//! `2^-w` fraction of the key space, so the attack needs on the order of
//! `2^w` iterations. Keys with `K1 = K2 = β ≠ α` are also functionally
//! correct — Anti-SAT has `2^w` correct keys per block by construction.

use crate::error::ObfuscateError;
use crate::key::Key;
use crate::locked::LockedCircuit;
use crate::scheme::{copy_gate, validate_selection, SchemeKind};
use netlist::{Circuit, GateId, GateKind};
use rand::seq::SliceRandom;
use rand::Rng;

/// Anchors an Anti-SAT point-function block at each selected gate.
///
/// Selected gates must be primary outputs (use
/// [`eligible_gates`](crate::eligible_gates) /
/// [`select_gates`](crate::select_gates) with [`SchemeKind::AntiSat`]).
/// Block `i` (in selected-id order) owns key bits
/// `[2wi, 2w(i+1))`: the first `w` are `K1`, the next `w` are `K2`, and the
/// correct key repeats the same random pattern `α` in both halves. Tap
/// inputs are `w` distinct primary inputs chosen per block.
///
/// # Errors
///
/// Returns [`ObfuscateError::BadKeyWidth`] for widths outside 2..=16,
/// [`ObfuscateError::NotEnoughInputs`] when the circuit has fewer than
/// `key_width` primary inputs, [`ObfuscateError::NotEnoughGates`] if
/// `original` is already locked, and propagates netlist construction
/// failures.
pub fn anti_sat_lock(
    original: &Circuit,
    selected: &[GateId],
    key_width: usize,
    rng: &mut impl Rng,
) -> Result<LockedCircuit, ObfuscateError> {
    if !(2..=16).contains(&key_width) {
        return Err(ObfuscateError::BadKeyWidth(key_width));
    }
    if original.inputs().len() < key_width {
        return Err(ObfuscateError::NotEnoughInputs {
            available: original.inputs().len(),
            required: key_width,
        });
    }
    validate_selection(original, selected)?;
    for &id in selected {
        assert!(
            original.outputs().contains(&id),
            "Anti-SAT anchors must be primary outputs"
        );
    }

    let mut builder = netlist::CircuitBuilder::new(format!("{}_antisat", original.name()));
    let mut map: Vec<Option<GateId>> = vec![None; original.num_gates()];

    // Pass 1: place every primary input first so any block can tap any
    // input regardless of where its anchor sits in id order.
    let mut new_inputs: Vec<GateId> = Vec::with_capacity(original.inputs().len());
    for (id, gate) in original.iter() {
        if let GateKind::Input(_) = gate.kind() {
            let new_id = builder.add_input(gate.name().to_owned())?;
            map[id.index()] = Some(new_id);
            new_inputs.push(new_id);
        }
    }

    // Pass 2: copy the logic in id order (topological), splicing a point
    // function behind each anchor.
    let mut key_bits: Vec<bool> = Vec::with_capacity(selected.len() * 2 * key_width);
    let mut block = 0usize;
    for (id, gate) in original.iter() {
        if gate.kind().is_input() {
            continue;
        }
        let new_id = copy_gate(&mut builder, gate, &map)?;
        if selected.contains(&id) {
            let y = build_block(
                &mut builder,
                &new_inputs,
                key_width,
                block,
                &mut key_bits,
                rng,
            )?;
            let lock = builder.add_gate(format!("ask{block}"), GateKind::Xor, &[new_id, y])?;
            map[id.index()] = Some(lock);
            block += 1;
        } else {
            map[id.index()] = Some(new_id);
        }
    }
    for &out in original.outputs() {
        builder.mark_output(map[out.index()].expect("all gates mapped"));
    }

    Ok(LockedCircuit {
        original: original.clone(),
        locked: builder.finish()?,
        key: Key::from_bits(key_bits),
        selected: selected.to_vec(),
        scheme: SchemeKind::AntiSat { key_width },
    })
}

/// Builds one point-function block and returns its output `Y`.
///
/// Appends the block's correct key bits (`α` twice) to `key_bits`.
fn build_block(
    builder: &mut netlist::CircuitBuilder,
    inputs: &[GateId],
    key_width: usize,
    block: usize,
    key_bits: &mut Vec<bool>,
    rng: &mut impl Rng,
) -> Result<GateId, ObfuscateError> {
    let taps: Vec<GateId> = inputs.choose_multiple(rng, key_width).copied().collect();
    let alpha: Vec<bool> = (0..key_width).map(|_| rng.gen::<bool>()).collect();
    let base = block * 2 * key_width;

    let mut left = Vec::with_capacity(key_width);
    let mut right = Vec::with_capacity(key_width);
    for (j, &tap) in taps.iter().enumerate() {
        let k1 = builder.add_key_input(format!("keyinput{}", base + j))?;
        left.push(builder.add_gate(format!("asx{block}_{j}"), GateKind::Xor, &[tap, k1])?);
    }
    for (j, &tap) in taps.iter().enumerate() {
        let k2 = builder.add_key_input(format!("keyinput{}", base + key_width + j))?;
        right.push(builder.add_gate(format!("asz{block}_{j}"), GateKind::Xor, &[tap, k2])?);
    }
    key_bits.extend_from_slice(&alpha);
    key_bits.extend_from_slice(&alpha);

    // g = wide AND over the K1 comparator, ḡ = its NAND complement over K2.
    let g = builder.add_gate(format!("asg{block}"), GateKind::And, &left)?;
    let ng = builder.add_gate(format!("asn{block}"), GateKind::Nand, &right)?;
    Ok(builder.add_gate(format!("asp{block}"), GateKind::And, &[g, ng])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::c17;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lock_c17(blocks: usize, width: usize, seed: u64) -> LockedCircuit {
        let c = c17();
        let scheme = SchemeKind::AntiSat { key_width: width };
        let mut rng = StdRng::seed_from_u64(seed);
        let sel = crate::select_gates(&c, scheme, blocks, &mut rng).unwrap();
        anti_sat_lock(&c, &sel, width, &mut rng).unwrap()
    }

    #[test]
    fn correct_key_restores_function() {
        for seed in 0..5 {
            let locked = lock_c17(2, 3, seed);
            assert!(locked.verify_key(&locked.key).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn key_halves_repeat_alpha() {
        let locked = lock_c17(2, 4, 9);
        let bits = locked.key.bits();
        assert_eq!(bits.len(), 2 * 2 * 4);
        for block in 0..2 {
            let base = block * 8;
            assert_eq!(bits[base..base + 4], bits[base + 4..base + 8]);
        }
    }

    #[test]
    fn disagreeing_halves_break_function() {
        // A key whose halves differ hits Y = 1 at exactly one tap pattern;
        // with the block anchored at a primary output the flip is visible.
        // Exhaustively simulating all 2^5 c17 input patterns must find it.
        let locked = lock_c17(1, 3, 2);
        let mut wrong = locked.key.bits().to_vec();
        wrong[0] = !wrong[0]; // K1 != K2 in block 0
        let n = locked.original.inputs().len();
        let flipped = (0..1u32 << n).any(|pat| {
            let ins: Vec<bool> = (0..n).map(|b| pat >> b & 1 == 1).collect();
            let expect = locked.original.simulate_bool(&ins, &[]).unwrap();
            let got = locked.locked.simulate_bool(&ins, &wrong).unwrap();
            expect != got
        });
        assert!(flipped);
    }

    #[test]
    fn matching_wrong_alpha_is_still_correct() {
        // K1 = K2 = β ≠ α is one of the 2^w functionally correct keys.
        let locked = lock_c17(1, 3, 5);
        let mut beta = locked.key.bits().to_vec();
        beta[0] = !beta[0];
        beta[3] = !beta[3]; // flip the same position in both halves
        assert!(locked.verify_key(&Key::from_bits(beta)).unwrap());
    }

    #[test]
    fn structure_is_as_expected() {
        let locked = lock_c17(2, 3, 7);
        assert_eq!(locked.locked.keys().len(), 2 * 2 * 3);
        assert_eq!(locked.locked.inputs().len(), 5);
        assert_eq!(locked.locked.outputs().len(), 2);
        // Per block: 2w comparator XORs + AND + NAND + point AND + anchor XOR.
        let per_block = 2 * 3 + 4;
        assert_eq!(
            locked.locked.num_logic_gates(),
            c17().num_logic_gates() + 2 * per_block
        );
        assert_eq!(locked.key.len(), 12);
    }

    #[test]
    fn rejects_bad_width_and_narrow_circuits() {
        let c = c17();
        let mut rng = StdRng::seed_from_u64(0);
        let sel = vec![*c.outputs().first().unwrap()];
        assert!(matches!(
            anti_sat_lock(&c, &sel, 1, &mut rng),
            Err(ObfuscateError::BadKeyWidth(1))
        ));
        assert!(matches!(
            anti_sat_lock(&c, &sel, 6, &mut rng),
            Err(ObfuscateError::NotEnoughInputs {
                available: 5,
                required: 6
            })
        ));
    }

    #[test]
    fn locked_netlist_round_trips_through_bench() {
        let locked = lock_c17(1, 4, 11);
        let text = locked.locked.to_bench();
        let reparsed = Circuit::from_bench("locked", &text).unwrap();
        assert_eq!(reparsed.keys().len(), 8);
        assert!(locked
            .locked
            .equiv_random(&reparsed, locked.key.bits(), locked.key.bits(), 4, 7)
            .unwrap());
    }
}
