use std::fmt;

/// Errors produced while locking a circuit or applying a key.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ObfuscateError {
    /// Fewer eligible gates exist than locking locations were requested.
    NotEnoughGates {
        /// Eligible gates in the circuit.
        available: usize,
        /// Locations requested.
        requested: usize,
    },
    /// The requested LUT size is outside the supported 1..=6 range.
    BadLutSize(usize),
    /// The requested Anti-SAT key width is outside the supported 2..=16
    /// range (the comparator AND/NAND trees need at least two fan-ins, and
    /// the DIP count 2^w makes widths past 16 unattackable in any sweep).
    BadKeyWidth(usize),
    /// The circuit has fewer primary inputs than an Anti-SAT block needs
    /// tap points.
    NotEnoughInputs {
        /// Primary inputs in the circuit.
        available: usize,
        /// Tap points one block requires (= the key width).
        required: usize,
    },
    /// A key of the wrong length was supplied.
    KeyLengthMismatch {
        /// Key bits the locked circuit expects.
        expected: usize,
        /// Key bits supplied.
        actual: usize,
    },
    /// A hex key string could not be parsed.
    ParseKey(String),
    /// The underlying netlist operation failed (name clash, cycle, ...).
    Netlist(netlist::NetlistError),
}

impl fmt::Display for ObfuscateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObfuscateError::NotEnoughGates {
                available,
                requested,
            } => write!(
                f,
                "requested {requested} locking locations but only {available} gates are eligible"
            ),
            ObfuscateError::BadLutSize(k) => {
                write!(f, "LUT size {k} unsupported (must be 1..=6)")
            }
            ObfuscateError::BadKeyWidth(w) => {
                write!(f, "Anti-SAT key width {w} unsupported (must be 2..=16)")
            }
            ObfuscateError::NotEnoughInputs {
                available,
                required,
            } => write!(
                f,
                "Anti-SAT block needs {required} tap inputs but the circuit has {available}"
            ),
            ObfuscateError::KeyLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "key has {actual} bits, locked circuit expects {expected}"
                )
            }
            ObfuscateError::ParseKey(s) => write!(f, "invalid key string `{s}`"),
            ObfuscateError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for ObfuscateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObfuscateError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<netlist::NetlistError> for ObfuscateError {
    fn from(e: netlist::NetlistError) -> Self {
        ObfuscateError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ObfuscateError::NotEnoughGates {
            available: 3,
            requested: 10,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn netlist_error_wraps_with_source() {
        use std::error::Error as _;
        let inner = netlist::NetlistError::DuplicateSignal("x".into());
        let e = ObfuscateError::from(inner);
        assert!(e.source().is_some());
    }
}
