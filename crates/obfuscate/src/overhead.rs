//! Obfuscation cost model.
//!
//! The paper motivates runtime prediction with the finance/power/area cost
//! of obfuscation: a defender wants maximum attack runtime under an overhead
//! budget. This module quantifies the structural overhead of a
//! [`LockedCircuit`] so sweeps can report both sides
//! of that trade-off.

use crate::locked::LockedCircuit;
use std::fmt;

/// Relative gate-count cost of each gate kind, in NAND2-equivalent units
/// (a standard-cell-flavored approximation).
fn gate_cost(kind: &netlist::GateKind) -> f64 {
    use netlist::GateKind::*;
    match kind {
        Input(_) => 0.0,
        Buf => 0.5,
        Not => 0.5,
        And | Or => 1.5,
        Nand | Nor => 1.0,
        Xor | Xnor => 2.5,
        Mux => 2.5,
        Lut(t) => (t.num_rows() as f64) / 2.0,
    }
}

/// Structural overhead of a locked circuit relative to its original.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockOverhead {
    /// Logic gates added by locking.
    pub added_gates: usize,
    /// Key inputs added (tamper-proof memory bits required).
    pub added_key_bits: usize,
    /// NAND2-equivalent area of the original circuit.
    pub original_area: f64,
    /// NAND2-equivalent area of the locked circuit.
    pub locked_area: f64,
}

impl LockOverhead {
    /// Area ratio `locked / original` (1.0 = no overhead).
    pub fn area_factor(&self) -> f64 {
        if self.original_area == 0.0 {
            return 1.0;
        }
        self.locked_area / self.original_area
    }
}

impl fmt::Display for LockOverhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "+{} gates, +{} key bits, area x{:.2}",
            self.added_gates,
            self.added_key_bits,
            self.area_factor()
        )
    }
}

/// Computes the structural overhead of `locked`.
pub fn overhead(locked: &LockedCircuit) -> LockOverhead {
    let area = |c: &netlist::Circuit| c.gates().map(|g| gate_cost(g.kind())).sum::<f64>();
    LockOverhead {
        added_gates: locked.locked.num_logic_gates() - locked.original.num_logic_gates()
            + locked.selected.len().min(
                // LUT locking removes the selected gates entirely.
                match locked.scheme {
                    crate::SchemeKind::LutLock { .. } => locked.selected.len(),
                    _ => 0,
                },
            ),
        added_key_bits: locked.locked.keys().len(),
        original_area: area(&locked.original),
        locked_area: area(&locked.locked),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lock_random, SchemeKind};

    #[test]
    fn xor_lock_overhead() {
        let locked = lock_random(&netlist::c17(), SchemeKind::XorLock, 3, 0).unwrap();
        let oh = overhead(&locked);
        assert_eq!(oh.added_gates, 3);
        assert_eq!(oh.added_key_bits, 3);
        assert!(oh.area_factor() > 1.0);
        assert!(oh.to_string().contains("+3 gates"));
    }

    #[test]
    fn lut_lock_overhead_grows_with_lut_size() {
        let small = overhead(
            &lock_random(&netlist::c17(), SchemeKind::LutLock { lut_size: 2 }, 2, 0).unwrap(),
        );
        let large = overhead(
            &lock_random(&netlist::c17(), SchemeKind::LutLock { lut_size: 4 }, 2, 0).unwrap(),
        );
        assert!(large.locked_area > small.locked_area);
        assert_eq!(small.added_key_bits, 8);
        assert_eq!(large.added_key_bits, 32);
    }
}
