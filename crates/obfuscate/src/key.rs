use crate::error::ObfuscateError;
use rand::Rng;
use std::fmt;

/// An ordered vector of key bits for a locked circuit.
///
/// Bit `i` corresponds to key input `keyinput{i}` of the locked netlist.
///
/// ```
/// use obfuscate::Key;
///
/// let key = Key::from_bits([true, false, true, true]);
/// assert_eq!(key.len(), 4);
/// assert_eq!(key.to_hex(), "d");
/// assert_eq!(Key::from_hex("d", 4).unwrap(), key);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Key {
    bits: Vec<bool>,
}

impl Key {
    /// Builds a key from explicit bits.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        Key {
            bits: bits.into_iter().collect(),
        }
    }

    /// Samples a uniformly random key of `len` bits.
    pub fn random(len: usize, rng: &mut impl Rng) -> Self {
        Key {
            bits: (0..len).map(|_| rng.gen()).collect(),
        }
    }

    /// Number of key bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the key has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// All bits in order.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Hamming distance to another key.
    ///
    /// # Panics
    ///
    /// Panics if the keys have different lengths.
    pub fn hamming(&self, other: &Key) -> usize {
        assert_eq!(self.len(), other.len(), "key length mismatch");
        self.bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Lowercase hex encoding, little-endian nibbles (bit 0 = lsb of the
    /// first hex digit's group).
    pub fn to_hex(&self) -> String {
        if self.bits.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        for chunk in self.bits.chunks(4) {
            let mut nibble = 0u8;
            for (j, &b) in chunk.iter().enumerate() {
                if b {
                    nibble |= 1 << j;
                }
            }
            out.push(char::from_digit(nibble as u32, 16).expect("nibble < 16"));
        }
        out
    }

    /// Parses the [`to_hex`](Key::to_hex) encoding back into a key of
    /// exactly `len` bits.
    ///
    /// # Errors
    ///
    /// Returns [`ObfuscateError::ParseKey`] for non-hex characters or a
    /// digit count inconsistent with `len`.
    pub fn from_hex(hex: &str, len: usize) -> Result<Self, ObfuscateError> {
        let expected_digits = len.div_ceil(4);
        if hex.len() != expected_digits {
            return Err(ObfuscateError::ParseKey(hex.to_owned()));
        }
        let mut bits = Vec::with_capacity(len);
        for ch in hex.chars() {
            let nibble =
                ch.to_digit(16)
                    .ok_or_else(|| ObfuscateError::ParseKey(hex.to_owned()))? as u8;
            for j in 0..4 {
                if bits.len() < len {
                    bits.push((nibble >> j) & 1 == 1);
                }
            }
        }
        Ok(Key { bits })
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key[{}]=0x{}", self.len(), self.to_hex())
    }
}

impl FromIterator<bool> for Key {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        Key::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hex_round_trip() {
        let mut rng = StdRng::seed_from_u64(9);
        for len in [0, 1, 3, 4, 5, 16, 31, 64] {
            let key = Key::random(len, &mut rng);
            let back = Key::from_hex(&key.to_hex(), len).unwrap();
            assert_eq!(key, back, "len {len}");
        }
    }

    #[test]
    fn from_hex_rejects_garbage() {
        assert!(Key::from_hex("zz", 8).is_err());
        assert!(Key::from_hex("ff", 4).is_err()); // too many digits
    }

    #[test]
    fn hamming_counts_differences() {
        let a = Key::from_bits([true, false, true]);
        let b = Key::from_bits([false, false, true]);
        assert_eq!(a.hamming(&b), 1);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Key::random(32, &mut StdRng::seed_from_u64(7));
        let b = Key::random(32, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn collect_from_iterator() {
        let key: Key = [true, true, false].into_iter().collect();
        assert_eq!(key.len(), 3);
        assert!(key.bit(0));
        assert!(!key.bit(2));
    }
}
