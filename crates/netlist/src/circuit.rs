use crate::error::NetlistError;
use crate::gate::{Gate, GateKind, InputRole};
use std::collections::HashMap;
use std::fmt;

/// Index of a gate inside a [`Circuit`].
///
/// Ids are dense (`0..circuit.num_gates()`), stable for the lifetime of a
/// circuit, and ordered by creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The dense index of this gate.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `GateId` from a dense index.
    ///
    /// Mostly useful for iterating `0..num_gates()`; passing an index that is
    /// out of range for the circuit it is used with will cause panics later.
    pub fn from_index(index: usize) -> Self {
        GateId(index as u32)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// An immutable, validated combinational circuit.
///
/// Construct circuits with [`CircuitBuilder`](crate::CircuitBuilder) or parse
/// them with [`Circuit::from_bench`]; both reject cyclic or ill-formed
/// netlists, so every `Circuit` in existence is a DAG whose stored
/// topological order ([`Circuit::topo_order`]) is valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    pub(crate) name: String,
    pub(crate) gates: Vec<Gate>,
    pub(crate) inputs: Vec<GateId>,
    pub(crate) keys: Vec<GateId>,
    pub(crate) outputs: Vec<GateId>,
    pub(crate) topo: Vec<GateId>,
}

impl Circuit {
    /// The circuit's name (e.g. `"c17"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of gates, including primary and key inputs.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterates over all gates in id order.
    pub fn gates(&self) -> impl Iterator<Item = &Gate> + '_ {
        self.gates.iter()
    }

    /// Iterates over `(GateId, &Gate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> + '_ {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// Primary (data) input ids, in declaration order.
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Key input ids, in declaration order.
    pub fn keys(&self) -> &[GateId] {
        &self.keys
    }

    /// Primary output ids, in declaration order.
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// Gate ids in a valid topological order (fan-ins before fan-outs).
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// Looks up a gate id by signal name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.gates
            .iter()
            .position(|g| g.name == name)
            .map(|i| GateId(i as u32))
    }

    /// Number of logic gates (everything that is not a primary/key input).
    pub fn num_logic_gates(&self) -> usize {
        self.gates.iter().filter(|g| !g.kind.is_input()).count()
    }

    /// Whether the gate is a key input.
    pub fn is_key_input(&self, id: GateId) -> bool {
        matches!(self.gate(id).kind, GateKind::Input(InputRole::Key))
    }

    /// Directed edges `(from, to)` of the gate connectivity graph,
    /// i.e. one edge per (fan-in, gate) pair, in id order.
    pub fn edges(&self) -> Vec<(GateId, GateId)> {
        let mut edges = Vec::new();
        for (i, gate) in self.gates.iter().enumerate() {
            for &src in &gate.fanin {
                edges.push((src, GateId(i as u32)));
            }
        }
        edges
    }

    /// Fan-out adjacency: for each gate, the gates it feeds.
    pub fn fanouts(&self) -> Vec<Vec<GateId>> {
        let mut out = vec![Vec::new(); self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            for &src in &gate.fanin {
                out[src.index()].push(GateId(i as u32));
            }
        }
        out
    }

    /// A map from signal name to gate id for every gate in the circuit.
    pub fn name_map(&self) -> HashMap<&str, GateId> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (g.name.as_str(), GateId(i as u32)))
            .collect()
    }

    /// Returns a copy of this circuit with a different name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    pub(crate) fn validate_port_width(
        expected: usize,
        actual: usize,
        port: &'static str,
    ) -> Result<(), NetlistError> {
        if expected != actual {
            return Err(NetlistError::BadSimulationWidth {
                expected,
                actual,
                port,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} gates ({} inputs, {} keys, {} outputs)",
            self.name,
            self.num_gates(),
            self.inputs.len(),
            self.keys.len(),
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::c17;

    #[test]
    fn c17_shape() {
        let c = c17();
        assert_eq!(c.name(), "c17");
        assert_eq!(c.num_gates(), 11);
        assert_eq!(c.num_logic_gates(), 6);
        assert_eq!(c.inputs().len(), 5);
        assert_eq!(c.keys().len(), 0);
        assert_eq!(c.outputs().len(), 2);
    }

    #[test]
    fn edges_match_fanin_counts() {
        let c = c17();
        let total_fanin: usize = c.gates().map(|g| g.fanin().len()).sum();
        assert_eq!(c.edges().len(), total_fanin);
        // Each NAND in c17 has 2 fan-ins.
        assert_eq!(total_fanin, 12);
    }

    #[test]
    fn fanouts_are_inverse_of_fanins() {
        let c = c17();
        let fanouts = c.fanouts();
        for (id, gate) in c.iter() {
            for &src in gate.fanin() {
                assert!(fanouts[src.index()].contains(&id));
            }
        }
    }

    #[test]
    fn find_resolves_names() {
        let c = c17();
        let id = c.find("n22").expect("c17 defines n22");
        assert_eq!(c.gate(id).name(), "n22");
        assert!(c.find("nonexistent").is_none());
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let c = c17();
        let pos: Vec<usize> = {
            let mut pos = vec![0; c.num_gates()];
            for (rank, id) in c.topo_order().iter().enumerate() {
                pos[id.index()] = rank;
            }
            pos
        };
        for (id, gate) in c.iter() {
            for &src in gate.fanin() {
                assert!(pos[src.index()] < pos[id.index()]);
            }
        }
    }
}
