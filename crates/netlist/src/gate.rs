use crate::circuit::GateId;
use crate::error::NetlistError;
use std::fmt;

/// Whether a primary input carries functional data or a locking key bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InputRole {
    /// Ordinary primary input.
    Data,
    /// Key input introduced by an obfuscation scheme.
    Key,
}

impl fmt::Display for InputRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputRole::Data => f.write_str("data"),
            InputRole::Key => f.write_str("key"),
        }
    }
}

/// A truth table over up to 6 inputs, stored as the low `2^k` bits of a `u64`.
///
/// Row `i` (where bit `j` of `i` is the value of input `j`) maps to output bit
/// `i` of [`bits`](TruthTable::bits). This is the payload of
/// [`GateKind::Lut`] and the unit of key material in LUT-based obfuscation.
///
/// ```
/// use netlist::TruthTable;
///
/// // 2-input AND: only row 0b11 outputs 1.
/// let and = TruthTable::new(2, 0b1000).unwrap();
/// assert!(and.eval(&[true, true]));
/// assert!(!and.eval(&[true, false]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TruthTable {
    inputs: u8,
    bits: u64,
}

impl TruthTable {
    /// Creates a truth table with `inputs` inputs from the low `2^inputs`
    /// bits of `bits`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadTruthTable`] if `inputs > 6`.
    pub fn new(inputs: usize, bits: u64) -> Result<Self, NetlistError> {
        if inputs > 6 {
            return Err(NetlistError::BadTruthTable { inputs });
        }
        let mask = if inputs == 6 {
            u64::MAX
        } else {
            (1u64 << (1usize << inputs)) - 1
        };
        Ok(TruthTable {
            inputs: inputs as u8,
            bits: bits & mask,
        })
    }

    /// Builds a truth table by evaluating `f` on every row.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadTruthTable`] if `inputs > 6`.
    pub fn from_fn(
        inputs: usize,
        mut f: impl FnMut(&[bool]) -> bool,
    ) -> Result<Self, NetlistError> {
        if inputs > 6 {
            return Err(NetlistError::BadTruthTable { inputs });
        }
        let mut bits = 0u64;
        let rows = 1usize << inputs;
        let mut row_vals = vec![false; inputs];
        for row in 0..rows {
            for (j, v) in row_vals.iter_mut().enumerate() {
                *v = (row >> j) & 1 == 1;
            }
            if f(&row_vals) {
                bits |= 1u64 << row;
            }
        }
        Ok(TruthTable {
            inputs: inputs as u8,
            bits,
        })
    }

    /// Number of inputs of the table.
    pub fn num_inputs(&self) -> usize {
        self.inputs as usize
    }

    /// Number of rows (`2^k`).
    pub fn num_rows(&self) -> usize {
        1usize << self.inputs
    }

    /// Raw table bits (row `i` in bit `i`).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Output of the row addressed by `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^k`.
    pub fn row(&self, index: usize) -> bool {
        assert!(index < self.num_rows(), "truth table row out of range");
        (self.bits >> index) & 1 == 1
    }

    /// Evaluates the table on a concrete input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the table's input count.
    pub fn eval(&self, values: &[bool]) -> bool {
        assert_eq!(
            values.len(),
            self.num_inputs(),
            "truth table input arity mismatch"
        );
        let mut idx = 0usize;
        for (j, &v) in values.iter().enumerate() {
            if v {
                idx |= 1 << j;
            }
        }
        self.row(idx)
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lut{}:{:0width$b}",
            self.inputs,
            self.bits,
            width = self.num_rows()
        )
    }
}

/// The logic function computed by a [`Gate`].
///
/// Multi-input variants (`And` through `Xnor`) accept two or more fan-ins,
/// matching the ISCAS-85 `.bench` convention. `Xor`/`Xnor` over more than two
/// inputs compute (inverted) parity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input (data or key).
    Input(InputRole),
    /// Identity buffer, 1 fan-in.
    Buf,
    /// Inverter, 1 fan-in.
    Not,
    /// n-ary AND.
    And,
    /// n-ary NAND.
    Nand,
    /// n-ary OR.
    Or,
    /// n-ary NOR.
    Nor,
    /// n-ary parity.
    Xor,
    /// n-ary inverted parity.
    Xnor,
    /// 2:1 multiplexer with fan-ins `[s, a, b]` computing `s ? b : a`.
    Mux,
    /// k-input lookup table with a constant truth table.
    Lut(TruthTable),
}

impl GateKind {
    /// Short lowercase mnemonic used by the `.bench` writer and statistics.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            GateKind::Input(InputRole::Data) => "input",
            GateKind::Input(InputRole::Key) => "keyinput",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Nand => "nand",
            GateKind::Or => "or",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux => "mux",
            GateKind::Lut(_) => "lut",
        }
    }

    /// Whether this kind is a primary input (data or key).
    pub fn is_input(&self) -> bool {
        matches!(self, GateKind::Input(_))
    }

    /// Validates the fan-in count for this gate kind.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] when `fanin_len` is not legal for
    /// the kind (inputs take 0, `Buf`/`Not` take 1, `Mux` takes 3, a LUT takes
    /// exactly its input count, and the n-ary kinds take at least 2).
    pub fn check_arity(&self, gate_name: &str, fanin_len: usize) -> Result<(), NetlistError> {
        let bad = |expected: &str| NetlistError::BadArity {
            gate: gate_name.to_owned(),
            expected: expected.to_owned(),
            actual: fanin_len,
        };
        match self {
            GateKind::Input(_) => {
                if fanin_len != 0 {
                    return Err(bad("exactly 0"));
                }
            }
            GateKind::Buf | GateKind::Not => {
                if fanin_len != 1 {
                    return Err(bad("exactly 1"));
                }
            }
            GateKind::Mux => {
                if fanin_len != 3 {
                    return Err(bad("exactly 3"));
                }
            }
            GateKind::Lut(table) => {
                if fanin_len != table.num_inputs() {
                    return Err(bad(&format!("exactly {}", table.num_inputs())));
                }
            }
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => {
                if fanin_len < 2 {
                    return Err(bad("at least 2"));
                }
            }
        }
        Ok(())
    }

    /// Evaluates the gate on 64 patterns at once (one per bit position).
    ///
    /// `vals[i]` is the 64-pattern word of fan-in `i`, in fan-in order.
    ///
    /// # Panics
    ///
    /// Panics when called on [`GateKind::Input`] (inputs have no function) or
    /// with a fan-in slice whose length is illegal for the kind.
    pub fn eval_words(&self, vals: &[u64]) -> u64 {
        match self {
            GateKind::Input(_) => panic!("primary inputs are assigned, not evaluated"),
            GateKind::Buf => vals[0],
            GateKind::Not => !vals[0],
            GateKind::And => vals.iter().copied().fold(u64::MAX, |a, b| a & b),
            GateKind::Nand => !vals.iter().copied().fold(u64::MAX, |a, b| a & b),
            GateKind::Or => vals.iter().copied().fold(0, |a, b| a | b),
            GateKind::Nor => !vals.iter().copied().fold(0, |a, b| a | b),
            GateKind::Xor => vals.iter().copied().fold(0, |a, b| a ^ b),
            GateKind::Xnor => !vals.iter().copied().fold(0, |a, b| a ^ b),
            GateKind::Mux => {
                let (s, a, b) = (vals[0], vals[1], vals[2]);
                (s & b) | (!s & a)
            }
            GateKind::Lut(table) => {
                let k = table.num_inputs();
                assert_eq!(vals.len(), k, "LUT fan-in arity mismatch");
                let mut out = 0u64;
                for row in 0..table.num_rows() {
                    if !table.row(row) {
                        continue;
                    }
                    // Word of patterns whose inputs select exactly this row.
                    let mut hit = u64::MAX;
                    for (j, &v) in vals.iter().enumerate() {
                        hit &= if (row >> j) & 1 == 1 { v } else { !v };
                    }
                    out |= hit;
                }
                out
            }
        }
    }

    /// Evaluates the gate on a single boolean pattern.
    ///
    /// # Panics
    ///
    /// Same conditions as [`GateKind::eval_words`].
    pub fn eval_bools(&self, vals: &[bool]) -> bool {
        let words: Vec<u64> = vals.iter().map(|&b| if b { 1 } else { 0 }).collect();
        self.eval_words(&words) & 1 == 1
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::Lut(t) => write!(f, "{t}"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// A single gate: its name, kind, and fan-in list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    pub(crate) name: String,
    pub(crate) kind: GateKind,
    pub(crate) fanin: Vec<GateId>,
}

impl Gate {
    /// The signal name driven by this gate.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The logic function of this gate.
    pub fn kind(&self) -> &GateKind {
        &self.kind
    }

    /// Fan-in gate ids in positional order.
    pub fn fanin(&self) -> &[GateId] {
        &self.fanin
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {}({} fan-ins)",
            self.name,
            self.kind,
            self.fanin.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_table_masks_high_bits() {
        let t = TruthTable::new(2, u64::MAX).unwrap();
        assert_eq!(t.bits(), 0b1111);
        assert_eq!(t.num_rows(), 4);
    }

    #[test]
    fn truth_table_rejects_wide_tables() {
        assert!(matches!(
            TruthTable::new(7, 0),
            Err(NetlistError::BadTruthTable { inputs: 7 })
        ));
    }

    #[test]
    fn truth_table_from_fn_matches_eval() {
        let t = TruthTable::from_fn(3, |v| v[0] ^ v[1] ^ v[2]).unwrap();
        for row in 0..8 {
            let vals = [(row & 1) == 1, (row >> 1) & 1 == 1, (row >> 2) & 1 == 1];
            assert_eq!(t.eval(&vals), vals[0] ^ vals[1] ^ vals[2]);
        }
    }

    #[test]
    fn six_input_table_uses_full_word() {
        let t = TruthTable::new(6, u64::MAX).unwrap();
        assert_eq!(t.num_rows(), 64);
        assert!(t.row(63));
    }

    #[test]
    fn eval_words_basic_gates() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        assert_eq!(GateKind::And.eval_words(&[a, b]) & 0xF, 0b1000);
        assert_eq!(GateKind::Or.eval_words(&[a, b]) & 0xF, 0b1110);
        assert_eq!(GateKind::Xor.eval_words(&[a, b]) & 0xF, 0b0110);
        assert_eq!(GateKind::Nand.eval_words(&[a, b]) & 0xF, 0b0111);
        assert_eq!(GateKind::Nor.eval_words(&[a, b]) & 0xF, 0b0001);
        assert_eq!(GateKind::Xnor.eval_words(&[a, b]) & 0xF, 0b1001);
        assert_eq!(GateKind::Not.eval_words(&[a]) & 0xF, 0b0011);
        assert_eq!(GateKind::Buf.eval_words(&[a]) & 0xF, 0b1100);
    }

    #[test]
    fn eval_words_nary_gates() {
        let a = 0b1111_0000u64;
        let b = 0b1100_1100u64;
        let c = 0b1010_1010u64;
        assert_eq!(GateKind::And.eval_words(&[a, b, c]) & 0xFF, 0b1000_0000);
        assert_eq!(GateKind::Or.eval_words(&[a, b, c]) & 0xFF, 0b1111_1110);
        // 3-input XOR is parity.
        assert_eq!(GateKind::Xor.eval_words(&[a, b, c]) & 0xFF, 0b1001_0110);
    }

    #[test]
    fn mux_selects_between_branches() {
        let s = 0b1100u64;
        let a = 0b1010u64;
        let b = 0b0110u64;
        // s=0 -> a, s=1 -> b.
        assert_eq!(
            GateKind::Mux.eval_words(&[s, a, b]) & 0xF,
            0b0110 & s | a & !s
        );
    }

    #[test]
    fn lut_eval_words_matches_truth_table() {
        // 4-input LUT implementing majority-ish function.
        let t = TruthTable::from_fn(4, |v| v.iter().filter(|&&x| x).count() >= 2).unwrap();
        let kind = GateKind::Lut(t);
        for pattern in 0..16u64 {
            let vals: Vec<u64> = (0..4).map(|j| (pattern >> j) & 1).collect();
            let expect = (pattern.count_ones() >= 2) as u64;
            assert_eq!(kind.eval_words(&vals) & 1, expect, "pattern {pattern:04b}");
        }
    }

    #[test]
    fn arity_checks() {
        assert!(GateKind::Not.check_arity("g", 1).is_ok());
        assert!(GateKind::Not.check_arity("g", 2).is_err());
        assert!(GateKind::And.check_arity("g", 1).is_err());
        assert!(GateKind::And.check_arity("g", 4).is_ok());
        assert!(GateKind::Mux.check_arity("g", 3).is_ok());
        assert!(GateKind::Mux.check_arity("g", 2).is_err());
        let t = TruthTable::new(4, 0xBEEF).unwrap();
        assert!(GateKind::Lut(t).check_arity("g", 4).is_ok());
        assert!(GateKind::Lut(t).check_arity("g", 3).is_err());
        assert!(GateKind::Input(InputRole::Data).check_arity("g", 0).is_ok());
        assert!(GateKind::Input(InputRole::Key).check_arity("g", 1).is_err());
    }

    #[test]
    fn eval_bools_agrees_with_eval_words() {
        for kind in [GateKind::And, GateKind::Or, GateKind::Xor, GateKind::Nand] {
            for a in [false, true] {
                for b in [false, true] {
                    let via_words = kind.eval_words(&[a as u64, b as u64]) & 1 == 1;
                    assert_eq!(kind.eval_bools(&[a, b]), via_words);
                }
            }
        }
    }
}
