//! 64-way bit-parallel logic simulation.
//!
//! Each signal carries a `u64` word; bit position `p` of every word belongs
//! to the same test pattern, so a single pass over the circuit evaluates 64
//! input patterns at once. This is the workhorse behind oracle queries in the
//! SAT attack and behind functional-equivalence checks in tests.

use crate::circuit::{Circuit, GateId};
use crate::error::NetlistError;

/// The values of every gate in a circuit for up to 64 patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimPatterns {
    values: Vec<u64>,
}

impl SimPatterns {
    /// Word of 64 pattern values for a gate.
    pub fn word(&self, id: GateId) -> u64 {
        self.values[id.index()]
    }

    /// Value of a gate under pattern `p` (bit position `p`).
    ///
    /// # Panics
    ///
    /// Panics if `p >= 64`.
    pub fn bit(&self, id: GateId, p: usize) -> bool {
        assert!(p < 64, "pattern index out of range");
        (self.values[id.index()] >> p) & 1 == 1
    }

    /// All gate words in id order.
    pub fn words(&self) -> &[u64] {
        &self.values
    }
}

impl Circuit {
    /// Simulates 64 patterns at once.
    ///
    /// `inputs[i]` / `keys[i]` hold the 64-pattern words for the i-th primary
    /// / key input (bit `p` = pattern `p`). Returns the words of all gates.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadSimulationWidth`] when the slice lengths do
    /// not match the circuit's port counts.
    pub fn simulate_words(
        &self,
        inputs: &[u64],
        keys: &[u64],
    ) -> Result<SimPatterns, NetlistError> {
        Circuit::validate_port_width(self.inputs.len(), inputs.len(), "inputs")?;
        Circuit::validate_port_width(self.keys.len(), keys.len(), "keys")?;
        let mut values = vec![0u64; self.gates.len()];
        for (word, &id) in inputs.iter().zip(&self.inputs) {
            values[id.index()] = *word;
        }
        for (word, &id) in keys.iter().zip(&self.keys) {
            values[id.index()] = *word;
        }
        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        for &id in &self.topo {
            let gate = &self.gates[id.index()];
            if gate.kind.is_input() {
                continue;
            }
            fanin_buf.clear();
            fanin_buf.extend(gate.fanin.iter().map(|f| values[f.index()]));
            values[id.index()] = gate.kind.eval_words(&fanin_buf);
        }
        Ok(SimPatterns { values })
    }

    /// Simulates 64 patterns and returns only the primary-output words.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::simulate_words`].
    pub fn simulate(&self, inputs: &[u64], keys: &[u64]) -> Result<Vec<u64>, NetlistError> {
        let sim = self.simulate_words(inputs, keys)?;
        Ok(self.outputs.iter().map(|&o| sim.word(o)).collect())
    }

    /// Simulates a single boolean pattern and returns the output values.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::simulate_words`].
    pub fn simulate_bool(&self, inputs: &[bool], keys: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let input_words: Vec<u64> = inputs.iter().map(|&b| b as u64).collect();
        let key_words: Vec<u64> = keys.iter().map(|&b| b as u64).collect();
        let outs = self.simulate(&input_words, &key_words)?;
        Ok(outs.into_iter().map(|w| w & 1 == 1).collect())
    }

    /// Checks whether two circuits with identical port shapes compute the
    /// same outputs on `rounds * 64` random patterns (a Monte-Carlo
    /// equivalence check; exact for small input counts when `exhaustive`
    /// coverage fits in the rounds).
    ///
    /// `self` and `other` must have the same number of inputs and outputs;
    /// `self_keys` / `other_keys` fix the key values of each circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadSimulationWidth`] when key widths are wrong.
    pub fn equiv_random(
        &self,
        other: &Circuit,
        self_keys: &[bool],
        other_keys: &[bool],
        rounds: usize,
        seed: u64,
    ) -> Result<bool, NetlistError> {
        assert_eq!(self.inputs.len(), other.inputs.len(), "input counts differ");
        assert_eq!(
            self.outputs.len(),
            other.outputs.len(),
            "output counts differ"
        );
        let self_key_words: Vec<u64> = self_keys
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        let other_key_words: Vec<u64> = other_keys
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let n_in = self.inputs.len();
        // For few inputs, walk the exhaustive space instead of sampling.
        if n_in <= 6 {
            let total = 1u64 << n_in;
            let mut words = vec![0u64; n_in];
            for (j, w) in words.iter_mut().enumerate() {
                for p in 0..total {
                    if (p >> j) & 1 == 1 {
                        *w |= 1 << p;
                    }
                }
            }
            let a = self.simulate(&words, &self_key_words)?;
            let b = other.simulate(&words, &other_key_words)?;
            let mask = if total == 64 {
                u64::MAX
            } else {
                (1u64 << total) - 1
            };
            return Ok(a.iter().zip(&b).all(|(x, y)| (x & mask) == (y & mask)));
        }
        for _ in 0..rounds {
            let words: Vec<u64> = (0..n_in).map(|_| next()).collect();
            let a = self.simulate(&words, &self_key_words)?;
            let b = other.simulate(&words, &other_key_words)?;
            if a != b {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::c17;
    use crate::gate::GateKind;

    #[test]
    fn word_simulation_matches_bool_simulation() {
        let c = c17();
        // Pack all 32 exhaustive patterns into one word per input.
        let mut words = vec![0u64; 5];
        for p in 0..32u64 {
            for (j, w) in words.iter_mut().enumerate() {
                if (p >> j) & 1 == 1 {
                    *w |= 1 << p;
                }
            }
        }
        let outs = c.simulate(&words, &[]).unwrap();
        for p in 0..32 {
            let bits: Vec<bool> = (0..5).map(|j| (p >> j) & 1 == 1).collect();
            let expect = c.simulate_bool(&bits, &[]).unwrap();
            for (o, w) in expect.iter().zip(&outs) {
                assert_eq!(*o, (w >> p) & 1 == 1);
            }
        }
    }

    #[test]
    fn wrong_port_width_is_error() {
        let c = c17();
        assert!(matches!(
            c.simulate(&[0; 4], &[]),
            Err(NetlistError::BadSimulationWidth { port: "inputs", .. })
        ));
        assert!(matches!(
            c.simulate(&[0; 5], &[0]),
            Err(NetlistError::BadSimulationWidth { port: "keys", .. })
        ));
    }

    #[test]
    fn keyed_circuit_simulation() {
        let mut b = CircuitBuilder::new("keyed");
        let a = b.add_input("a").unwrap();
        let k = b.add_key_input("keyinput0").unwrap();
        let y = b.add_gate("y", GateKind::Xor, &[a, k]).unwrap();
        b.mark_output(y);
        let c = b.finish().unwrap();
        assert_eq!(c.simulate_bool(&[true], &[false]).unwrap(), vec![true]);
        assert_eq!(c.simulate_bool(&[true], &[true]).unwrap(), vec![false]);
    }

    #[test]
    fn equiv_random_detects_equivalence_and_difference() {
        let c = c17();
        assert!(c.equiv_random(&c, &[], &[], 4, 42).unwrap());

        // A circuit that differs on some pattern: swap an output gate kind.
        let text = c.to_bench().replace("n23 = NAND", "n23 = AND");
        let other = Circuit::from_bench("c17x", &text).unwrap();
        assert!(!c.equiv_random(&other, &[], &[], 4, 42).unwrap());
    }

    #[test]
    fn sim_patterns_bit_accessor() {
        let c = c17();
        let sim = c.simulate_words(&[u64::MAX, 0, 0, 0, 0], &[]).unwrap();
        let n1 = c.find("n1").unwrap();
        assert!(sim.bit(n1, 0));
        assert!(sim.bit(n1, 63));
        assert_eq!(sim.words().len(), c.num_gates());
    }
}
