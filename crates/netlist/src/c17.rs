//! The genuine ISCAS-85 `c17` benchmark, embedded for tests and examples.

use crate::bench_format::parse_bench;
use crate::circuit::Circuit;

/// The `.bench` source of ISCAS-85 `c17` (5 inputs, 2 outputs, 6 NAND gates).
///
/// Signal names carry an `n` prefix because the original file uses bare
/// numeric net ids.
pub const C17_BENCH: &str = "\
# c17 (ISCAS-85)
INPUT(n1)
INPUT(n2)
INPUT(n3)
INPUT(n6)
INPUT(n7)
OUTPUT(n22)
OUTPUT(n23)
n10 = NAND(n1, n3)
n11 = NAND(n3, n6)
n16 = NAND(n2, n11)
n19 = NAND(n11, n7)
n22 = NAND(n10, n16)
n23 = NAND(n16, n19)
";

/// Returns the ISCAS-85 `c17` circuit.
///
/// ```
/// let c = netlist::c17();
/// assert_eq!(c.num_logic_gates(), 6);
/// ```
pub fn c17() -> Circuit {
    parse_bench("c17", C17_BENCH).expect("embedded c17 netlist is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_is_functionally_correct() {
        // Exhaustively check both outputs against the NAND network equations.
        let c = c17();
        for pattern in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| (pattern >> i) & 1 == 1).collect();
            let (i1, i2, i3, i6, i7) = (bits[0], bits[1], bits[2], bits[3], bits[4]);
            let n10 = !(i1 & i3);
            let n11 = !(i3 & i6);
            let n16 = !(i2 & n11);
            let n19 = !(n11 & i7);
            let n22 = !(n10 & n16);
            let n23 = !(n16 & n19);
            let outs = c.simulate_bool(&bits, &[]).unwrap();
            assert_eq!(outs, vec![n22, n23], "pattern {pattern:05b}");
        }
    }
}
