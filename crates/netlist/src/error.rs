use std::fmt;

/// Errors produced while building, parsing, or analyzing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate refers to a signal id that was never defined.
    UndefinedSignal {
        /// Name of the gate with the dangling fan-in.
        gate: String,
        /// The undefined fan-in reference.
        signal: String,
    },
    /// Two definitions share the same signal name.
    DuplicateSignal(String),
    /// The netlist contains a combinational cycle.
    CombinationalCycle {
        /// Name of a gate that participates in the cycle.
        gate: String,
    },
    /// A gate has the wrong number of fan-ins for its kind.
    BadArity {
        /// Name of the offending gate.
        gate: String,
        /// Expected fan-in count description (e.g. `"exactly 1"`).
        expected: String,
        /// Actual fan-in count.
        actual: usize,
    },
    /// A `.bench` line could not be parsed.
    ParseBench {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// An `OUTPUT(...)` declaration names an unknown signal.
    UnknownOutput(String),
    /// A truth table was constructed with an unsupported input count.
    BadTruthTable {
        /// Requested number of LUT inputs.
        inputs: usize,
    },
    /// A simulation was invoked with the wrong number of input patterns.
    BadSimulationWidth {
        /// What the circuit expects.
        expected: usize,
        /// What the caller supplied.
        actual: usize,
        /// Which port class was mismatched (`"inputs"` or `"keys"`).
        port: &'static str,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UndefinedSignal { gate, signal } => {
                write!(f, "gate `{gate}` references undefined signal `{signal}`")
            }
            NetlistError::DuplicateSignal(name) => {
                write!(f, "signal `{name}` is defined more than once")
            }
            NetlistError::CombinationalCycle { gate } => {
                write!(f, "combinational cycle through gate `{gate}`")
            }
            NetlistError::BadArity {
                gate,
                expected,
                actual,
            } => write!(
                f,
                "gate `{gate}` expects {expected} fan-in(s), found {actual}"
            ),
            NetlistError::ParseBench { line, message } => {
                write!(f, "bench parse error at line {line}: {message}")
            }
            NetlistError::UnknownOutput(name) => {
                write!(f, "OUTPUT declaration names unknown signal `{name}`")
            }
            NetlistError::BadTruthTable { inputs } => {
                write!(f, "truth tables support 0..=6 inputs, requested {inputs}")
            }
            NetlistError::BadSimulationWidth {
                expected,
                actual,
                port,
            } => write!(
                f,
                "simulation supplied {actual} {port} pattern(s), circuit has {expected}"
            ),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = NetlistError::UndefinedSignal {
            gate: "g1".into(),
            signal: "n9".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("g1"));
        assert!(msg.contains("n9"));

        let err = NetlistError::BadArity {
            gate: "inv".into(),
            expected: "exactly 1".into(),
            actual: 3,
        };
        assert!(err.to_string().contains("exactly 1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
