//! Reader and writer for the ISCAS-85 `.bench` netlist format.
//!
//! The dialect understood here is the classic one used by the ISCAS-85/89
//! benchmark suites plus two extensions common in logic-locking research:
//!
//! * inputs whose names start with [`KEY_INPUT_PREFIX`] are treated as key
//!   inputs (the convention used by published locked benchmarks);
//! * `name = LUT 0x<hex> (a, b, ...)` defines a lookup-table gate, matching
//!   the ABC tool's bench extension.
//!
//! Definitions may appear in any order; the parser resolves forward
//! references and rejects cyclic netlists.

use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateId};
use crate::error::NetlistError;
use crate::gate::{GateKind, TruthTable};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Inputs whose name starts with this prefix are parsed as key inputs.
pub const KEY_INPUT_PREFIX: &str = "keyinput";

#[derive(Debug)]
enum RawDef {
    Input { key: bool },
    Gate { kind: GateKind, fanin: Vec<String> },
}

/// Parses a `.bench` netlist.
///
/// # Errors
///
/// Returns [`NetlistError::ParseBench`] for syntax errors,
/// [`NetlistError::UndefinedSignal`] / [`NetlistError::UnknownOutput`] for
/// dangling references, [`NetlistError::DuplicateSignal`] for redefinitions,
/// and [`NetlistError::CombinationalCycle`] for cyclic netlists.
pub fn parse_bench(name: impl Into<String>, text: &str) -> Result<Circuit, NetlistError> {
    let mut defs: Vec<(String, RawDef)> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();

    for (lineno, raw_line) in text.lines().enumerate() {
        let line = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;

        if let Some(rest) = strip_directive(line, "INPUT") {
            let signal = parse_single_arg(rest, lineno)?;
            let key = signal.starts_with(KEY_INPUT_PREFIX);
            insert_def(&mut defs, &mut index, signal, RawDef::Input { key })?;
        } else if let Some(rest) = strip_directive(line, "OUTPUT") {
            outputs.push(parse_single_arg(rest, lineno)?);
        } else if let Some(eq) = line.find('=') {
            let target = line[..eq].trim().to_owned();
            if target.is_empty() {
                return Err(parse_err(lineno, "missing signal name before `=`"));
            }
            let rhs = line[eq + 1..].trim();
            let (kind, fanin) = parse_rhs(rhs, lineno)?;
            insert_def(&mut defs, &mut index, target, RawDef::Gate { kind, fanin })?;
        } else {
            return Err(parse_err(lineno, &format!("unrecognized line `{line}`")));
        }
    }

    build_from_defs(name.into(), defs, index, outputs)
}

fn insert_def(
    defs: &mut Vec<(String, RawDef)>,
    index: &mut HashMap<String, usize>,
    name: String,
    def: RawDef,
) -> Result<(), NetlistError> {
    if index.contains_key(&name) {
        return Err(NetlistError::DuplicateSignal(name));
    }
    index.insert(name.clone(), defs.len());
    defs.push((name, def));
    Ok(())
}

fn strip_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let upper_len = keyword.len();
    // `get` (not indexing) because `upper_len` may fall inside a multi-byte
    // character of hostile input; a non-boundary prefix is simply no match.
    let head = line.get(..upper_len)?;
    if line.len() > upper_len && head.eq_ignore_ascii_case(keyword) {
        let rest = line[upper_len..].trim_start();
        if rest.starts_with('(') {
            return Some(rest);
        }
    }
    None
}

fn parse_single_arg(rest: &str, lineno: usize) -> Result<String, NetlistError> {
    let inner = rest
        .strip_prefix('(')
        .and_then(|s| s.trim_end().strip_suffix(')'))
        .ok_or_else(|| parse_err(lineno, "expected `(signal)`"))?
        .trim();
    if inner.is_empty() || inner.contains(',') {
        return Err(parse_err(lineno, "expected a single signal name"));
    }
    Ok(inner.to_owned())
}

fn parse_rhs(rhs: &str, lineno: usize) -> Result<(GateKind, Vec<String>), NetlistError> {
    let open = rhs
        .find('(')
        .ok_or_else(|| parse_err(lineno, "expected `KIND(args)` after `=`"))?;
    let close = rhs
        .rfind(')')
        .ok_or_else(|| parse_err(lineno, "missing `)`"))?;
    if close < open {
        return Err(parse_err(lineno, "mismatched parentheses"));
    }
    let head = rhs[..open].trim();
    let args: Vec<String> = rhs[open + 1..close]
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect();

    let mut head_parts = head.split_whitespace();
    let kind_word = head_parts
        .next()
        .ok_or_else(|| parse_err(lineno, "missing gate kind"))?;
    let kind = match kind_word.to_ascii_uppercase().as_str() {
        "AND" => GateKind::And,
        "NAND" => GateKind::Nand,
        "OR" => GateKind::Or,
        "NOR" => GateKind::Nor,
        "XOR" => GateKind::Xor,
        "XNOR" => GateKind::Xnor,
        "NOT" | "INV" => GateKind::Not,
        "BUF" | "BUFF" => GateKind::Buf,
        "MUX" => GateKind::Mux,
        "LUT" => {
            let bits_word = head_parts
                .next()
                .ok_or_else(|| parse_err(lineno, "LUT requires hex truth table, e.g. `LUT 0x8`"))?;
            let bits_str = bits_word
                .strip_prefix("0x")
                .or_else(|| bits_word.strip_prefix("0X"))
                .ok_or_else(|| parse_err(lineno, "LUT truth table must start with 0x"))?;
            let bits = u64::from_str_radix(bits_str, 16)
                .map_err(|_| parse_err(lineno, "invalid LUT truth table hex"))?;
            let table = TruthTable::new(args.len(), bits)
                .map_err(|_| parse_err(lineno, "LUT supports at most 6 inputs"))?;
            GateKind::Lut(table)
        }
        other => return Err(parse_err(lineno, &format!("unknown gate kind `{other}`"))),
    };
    if head_parts.next().is_some() && !matches!(kind, GateKind::Lut(_)) {
        return Err(parse_err(lineno, "unexpected tokens after gate kind"));
    }
    Ok((kind, args))
}

fn parse_err(line: usize, message: &str) -> NetlistError {
    NetlistError::ParseBench {
        line,
        message: message.to_owned(),
    }
}

fn build_from_defs(
    name: String,
    defs: Vec<(String, RawDef)>,
    index: HashMap<String, usize>,
    outputs: Vec<String>,
) -> Result<Circuit, NetlistError> {
    // Topologically order definitions by name so the builder (which requires
    // fan-ins to exist) can ingest them.
    let n = defs.len();
    let mut indegree = vec![0usize; n];
    let mut fanouts: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, (gate_name, def)) in defs.iter().enumerate() {
        if let RawDef::Gate { fanin, .. } = def {
            indegree[i] = fanin.len();
            for f in fanin {
                let &src = index.get(f).ok_or_else(|| NetlistError::UndefinedSignal {
                    gate: gate_name.clone(),
                    signal: f.clone(),
                })?;
                fanouts[src].push(i as u32);
            }
        }
    }
    // Smallest-definition-index-first Kahn: when the file is already in a
    // valid topological order (as `write_bench` emits), gate ids round-trip
    // unchanged.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut queue: BinaryHeap<Reverse<u32>> = (0..n as u32)
        .filter(|&i| indegree[i as usize] == 0)
        .map(Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse(v)) = queue.pop() {
        order.push(v as usize);
        for &w in &fanouts[v as usize] {
            indegree[w as usize] -= 1;
            if indegree[w as usize] == 0 {
                queue.push(Reverse(w));
            }
        }
    }
    if order.len() != n {
        let cyclic = (0..n).find(|&i| indegree[i] > 0).unwrap_or(0);
        return Err(NetlistError::CombinationalCycle {
            gate: defs[cyclic].0.clone(),
        });
    }

    let mut builder = CircuitBuilder::new(name);
    let mut ids: Vec<Option<GateId>> = vec![None; n];
    for def_idx in order {
        let (gate_name, def) = &defs[def_idx];
        let id = match def {
            RawDef::Input { key: true } => builder.add_key_input(gate_name.clone())?,
            RawDef::Input { key: false } => builder.add_input(gate_name.clone())?,
            RawDef::Gate { kind, fanin } => {
                let fanin_ids: Vec<GateId> = fanin
                    .iter()
                    .map(|f| ids[index[f]].expect("topological order violated"))
                    .collect();
                builder.add_gate(gate_name.clone(), kind.clone(), &fanin_ids)?
            }
        };
        ids[def_idx] = Some(id);
    }
    for out in outputs {
        let id = *index
            .get(&out)
            .ok_or_else(|| NetlistError::UnknownOutput(out.clone()))?;
        builder.mark_output(ids[id].expect("all defs inserted"));
    }
    builder.finish()
}

/// Serializes a circuit to `.bench` text.
///
/// The output round-trips through [`parse_bench`]: key inputs are emitted as
/// `INPUT(...)` whose names keep their `keyinput` prefix, LUT gates use the
/// `LUT 0x..` extension, and gate definitions appear in topological order.
pub fn write_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    let _ = writeln!(
        out,
        "# {} inputs, {} keys, {} outputs, {} logic gates",
        circuit.inputs().len(),
        circuit.keys().len(),
        circuit.outputs().len(),
        circuit.num_logic_gates()
    );
    for &id in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.gate(id).name());
    }
    for &id in circuit.keys() {
        let _ = writeln!(out, "INPUT({})", circuit.gate(id).name());
    }
    for &id in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.gate(id).name());
    }
    // Id order is a valid topological order for every builder-made circuit
    // (fan-ins must exist before use), and emitting it keeps gate ids stable
    // across a write/parse round trip.
    for (_, gate) in circuit.iter() {
        if gate.kind().is_input() {
            continue;
        }
        let fanin_names: Vec<&str> = gate
            .fanin()
            .iter()
            .map(|&f| circuit.gate(f).name())
            .collect();
        match gate.kind() {
            GateKind::Lut(table) => {
                let _ = writeln!(
                    out,
                    "{} = LUT 0x{:x} ({})",
                    gate.name(),
                    table.bits(),
                    fanin_names.join(", ")
                );
            }
            kind => {
                let _ = writeln!(
                    out,
                    "{} = {}({})",
                    gate.name(),
                    kind.mnemonic().to_ascii_uppercase(),
                    fanin_names.join(", ")
                );
            }
        }
    }
    out
}

impl Circuit {
    /// Parses a circuit from `.bench` text. See [`parse_bench`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`parse_bench`].
    pub fn from_bench(name: impl Into<String>, text: &str) -> Result<Self, NetlistError> {
        parse_bench(name, text)
    }

    /// Serializes this circuit to `.bench` text. See [`write_bench`].
    pub fn to_bench(&self) -> String {
        write_bench(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c17;

    #[test]
    fn parses_c17_text() {
        let text = "\
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";
        let c = parse_bench("c17", text).unwrap();
        assert_eq!(c.num_gates(), 11);
        assert_eq!(c.outputs().len(), 2);
    }

    #[test]
    fn handles_forward_references() {
        let text = "\
OUTPUT(y)
y = AND(a, b)
INPUT(a)
INPUT(b)
";
        let c = parse_bench("fwd", text).unwrap();
        assert_eq!(c.num_logic_gates(), 1);
    }

    #[test]
    fn keyinput_prefix_becomes_key_role() {
        let text = "\
INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
y = XOR(a, keyinput0)
";
        let c = parse_bench("locked", text).unwrap();
        assert_eq!(c.inputs().len(), 1);
        assert_eq!(c.keys().len(), 1);
    }

    #[test]
    fn lut_extension_round_trips() {
        let text = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
y = LUT 0x8 (a, b)
";
        let c = parse_bench("lut", text).unwrap();
        let reparsed = parse_bench("lut", &c.to_bench()).unwrap();
        assert_eq!(c, reparsed);
    }

    #[test]
    fn c17_round_trips() {
        let c = c17();
        let text = c.to_bench();
        let reparsed = parse_bench("c17", &text).unwrap();
        assert_eq!(c, reparsed);
    }

    #[test]
    fn rejects_cycles() {
        let text = "\
INPUT(a)
OUTPUT(x)
x = AND(a, y)
y = AND(a, x)
";
        assert!(matches!(
            parse_bench("cyc", text),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn rejects_undefined_fanin() {
        let text = "INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n";
        assert!(matches!(
            parse_bench("bad", text),
            Err(NetlistError::UndefinedSignal { .. })
        ));
    }

    #[test]
    fn rejects_unknown_output() {
        let text = "INPUT(a)\nOUTPUT(ghost)\n";
        assert!(matches!(
            parse_bench("bad", text),
            Err(NetlistError::UnknownOutput(_))
        ));
    }

    #[test]
    fn rejects_garbage_lines() {
        let err = parse_bench("bad", "INPUT(a)\nthis is not bench\n").unwrap_err();
        assert!(matches!(err, NetlistError::ParseBench { line: 2, .. }));
    }

    #[test]
    fn rejects_duplicate_definition() {
        let text = "INPUT(a)\nINPUT(a)\n";
        assert!(matches!(
            parse_bench("bad", text),
            Err(NetlistError::DuplicateSignal(_))
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# hello\nINPUT(a)  # trailing comment\nOUTPUT(a)\n";
        let c = parse_bench("c", text).unwrap();
        assert_eq!(c.num_gates(), 1);
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn mux_gate_parses() {
        let text = "\
INPUT(s)
INPUT(a)
INPUT(b)
OUTPUT(y)
y = MUX(s, a, b)
";
        let c = parse_bench("m", text).unwrap();
        assert!(matches!(c.gate(c.find("y").unwrap()).kind(), GateKind::Mux));
    }
}
