//! Netlist cleanup passes: constant folding, buffer elision, and
//! dead-logic removal.
//!
//! The main client is key application: resolving a locked circuit under a
//! key ([`obfuscate`-crate `apply_key`]) turns every key input into a
//! 0-input constant LUT, leaving MUX trees with constant selects behind.
//! [`optimize`] folds those away, recovering a netlist of roughly the
//! original size.
//!
//! All passes are function-preserving: `optimize(c)` is combinationally
//! equivalent to `c` on every input/key assignment (checked by tests and
//! property tests).

use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateId};
use crate::error::NetlistError;
use crate::gate::{GateKind, TruthTable};
use crate::topo::fanin_cone;
use std::collections::HashMap;

/// What a source gate became in the optimized circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Folded {
    /// A known constant.
    Const(bool),
    /// An alias of an already-created new gate.
    Gate(GateId),
}

/// Statistics of one [`optimize`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Gates in the input circuit.
    pub gates_before: usize,
    /// Gates in the optimized circuit.
    pub gates_after: usize,
    /// Gates folded to constants.
    pub constants_folded: usize,
    /// Buffers / double inverters / trivial gates aliased away.
    pub aliased: usize,
}

/// Optimizes a circuit: folds constants, elides buffers and double
/// inverters, simplifies dominated/neutral fan-ins, and sweeps logic that
/// no output observes. Port order (inputs, keys, outputs) is preserved.
///
/// Runs [`optimize_once`] to a fixpoint (eliding a gate can orphan a gate
/// created earlier in the same pass, so one sweep is not always enough).
///
/// # Errors
///
/// Propagates netlist construction failures (cannot occur for circuits
/// built by [`CircuitBuilder`], but the signature stays honest).
pub fn optimize(circuit: &Circuit) -> Result<(Circuit, OptStats), NetlistError> {
    let (mut current, mut total) = optimize_once(circuit)?;
    for _ in 0..8 {
        let (next, stats) = optimize_once(&current)?;
        if next.num_gates() == current.num_gates() {
            break;
        }
        total.constants_folded += stats.constants_folded;
        total.aliased += stats.aliased;
        total.gates_after = next.num_gates();
        current = next;
    }
    Ok((current, total))
}

/// One optimization sweep; see [`optimize`].
///
/// # Errors
///
/// Same conditions as [`optimize`].
pub fn optimize_once(circuit: &Circuit) -> Result<(Circuit, OptStats), NetlistError> {
    let mut stats = OptStats {
        gates_before: circuit.num_gates(),
        ..OptStats::default()
    };
    // Restrict rebuilding to the observable cone (plus all ports).
    let mut live = vec![false; circuit.num_gates()];
    for id in fanin_cone(circuit, circuit.outputs()) {
        live[id.index()] = true;
    }
    for &id in circuit.inputs().iter().chain(circuit.keys()) {
        live[id.index()] = true;
    }

    let mut builder = CircuitBuilder::new(circuit.name().to_owned());
    let mut folded: Vec<Option<Folded>> = vec![None; circuit.num_gates()];
    // Lazily created constant gates (at most one per polarity).
    let mut const_gates: [Option<GateId>; 2] = [None, None];
    // Structural hashing: one gate per (kind, fan-in) signature.
    let mut cse: HashMap<(GateKind, Vec<GateId>), GateId> = HashMap::new();

    for (id, gate) in circuit.iter() {
        if !live[id.index()] {
            continue;
        }
        let result = match gate.kind() {
            GateKind::Input(crate::gate::InputRole::Data) => {
                Folded::Gate(builder.add_input(gate.name().to_owned())?)
            }
            GateKind::Input(crate::gate::InputRole::Key) => {
                Folded::Gate(builder.add_key_input(gate.name().to_owned())?)
            }
            kind => {
                let fanin: Vec<Folded> = gate
                    .fanin()
                    .iter()
                    .map(|f| folded[f.index()].expect("id order is topological"))
                    .collect();
                fold_gate(
                    &mut builder,
                    gate.name(),
                    kind,
                    &fanin,
                    &mut stats,
                    &mut const_gates,
                    &mut cse,
                )?
            }
        };
        folded[id.index()] = Some(result);
    }

    let mut marked: Vec<GateId> = Vec::new();
    for &out in circuit.outputs() {
        let mut id = match folded[out.index()].expect("outputs are live") {
            Folded::Gate(id) => id,
            Folded::Const(v) => materialize_const(&mut builder, &mut const_gates, v)?,
        };
        // Two source outputs may fold to the same gate; keep the port count
        // stable by buffering the duplicate.
        if marked.contains(&id) {
            id = builder.add_gate(
                format!("{}__obuf", circuit.gate(out).name()),
                GateKind::Buf,
                &[id],
            )?;
        }
        marked.push(id);
        builder.mark_output(id);
    }
    let optimized = builder.finish()?;
    stats.gates_after = optimized.num_gates();
    Ok((optimized, stats))
}

fn materialize_const(
    builder: &mut CircuitBuilder,
    cache: &mut [Option<GateId>; 2],
    value: bool,
) -> Result<GateId, NetlistError> {
    if let Some(id) = cache[value as usize] {
        return Ok(id);
    }
    let table = TruthTable::new(0, value as u64).expect("0-input tables are valid");
    let id = builder.add_gate(format!("__const{}", value as u8), GateKind::Lut(table), &[])?;
    cache[value as usize] = Some(id);
    Ok(id)
}

/// Folds one gate given the folded states of its fan-ins.
/// Emits a gate through the structural-hashing table: an existing gate with
/// the same kind and (order-normalized, for commutative kinds) fan-ins is
/// reused instead of duplicated.
fn emit(
    builder: &mut CircuitBuilder,
    cse: &mut HashMap<(GateKind, Vec<GateId>), GateId>,
    name: &str,
    kind: GateKind,
    fanin: &[GateId],
) -> Result<GateId, NetlistError> {
    let mut signature = fanin.to_vec();
    if matches!(
        kind,
        GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor
    ) {
        signature.sort();
    }
    let key = (kind.clone(), signature);
    if let Some(&existing) = cse.get(&key) {
        return Ok(existing);
    }
    let id = builder.add_gate(name.to_owned(), kind, fanin)?;
    cse.insert(key, id);
    Ok(id)
}

#[allow(clippy::too_many_arguments)]
fn fold_gate(
    builder: &mut CircuitBuilder,
    name: &str,
    kind: &GateKind,
    fanin: &[Folded],
    stats: &mut OptStats,
    const_gates: &mut [Option<GateId>; 2],
    cse: &mut HashMap<(GateKind, Vec<GateId>), GateId>,
) -> Result<Folded, NetlistError> {
    // 1. Full constant fold.
    if fanin.iter().all(|f| matches!(f, Folded::Const(_))) {
        let vals: Vec<bool> = fanin
            .iter()
            .map(|f| match f {
                Folded::Const(v) => *v,
                Folded::Gate(_) => unreachable!(),
            })
            .collect();
        stats.constants_folded += 1;
        return Ok(Folded::Const(kind.eval_bools(&vals)));
    }

    // 2. Kind-specific partial simplification.
    match kind {
        GateKind::Buf => {
            stats.aliased += 1;
            return Ok(fanin[0]);
        }
        GateKind::Not => {
            if let Folded::Gate(src) = fanin[0] {
                // Double-inverter elision: Not(Not(x)) -> x.
                if let Some(inner) = builder_not_operand(builder, src) {
                    stats.aliased += 1;
                    return Ok(Folded::Gate(inner));
                }
                let id = emit(builder, cse, name, GateKind::Not, &[src])?;
                return Ok(Folded::Gate(id));
            }
            unreachable!("constant Not handled by the full fold");
        }
        GateKind::Mux => {
            // Constant select chooses a branch; equal branches need no MUX.
            if let Folded::Const(s) = fanin[0] {
                stats.aliased += 1;
                return Ok(if s { fanin[2] } else { fanin[1] });
            }
            if fanin[1] == fanin[2] {
                stats.aliased += 1;
                return Ok(fanin[1]);
            }
            // Constant data branches rewrite to basic gates:
            //   MUX(s, 0, 1) = s          MUX(s, 1, 0) = !s
            //   MUX(s, 0, b) = s & b      MUX(s, 1, b) = !s | b
            //   MUX(s, a, 0) = !s & a     MUX(s, a, 1) = s | a
            let sel = match fanin[0] {
                Folded::Gate(id) => id,
                Folded::Const(_) => unreachable!("constant select handled above"),
            };
            match (fanin[1], fanin[2]) {
                (Folded::Const(false), Folded::Const(true)) => {
                    stats.aliased += 1;
                    return Ok(fanin[0]);
                }
                (Folded::Const(true), Folded::Const(false)) => {
                    stats.aliased += 1;
                    let id = emit(builder, cse, name, GateKind::Not, &[sel])?;
                    return Ok(Folded::Gate(id));
                }
                (Folded::Const(a), Folded::Gate(b)) => {
                    stats.aliased += 1;
                    let id = if a {
                        let inv = emit(
                            builder,
                            cse,
                            &format!("{name}__nsel"),
                            GateKind::Not,
                            &[sel],
                        )?;
                        emit(builder, cse, name, GateKind::Or, &[inv, b])?
                    } else {
                        emit(builder, cse, name, GateKind::And, &[sel, b])?
                    };
                    return Ok(Folded::Gate(id));
                }
                (Folded::Gate(a), Folded::Const(b)) => {
                    stats.aliased += 1;
                    let id = if b {
                        emit(builder, cse, name, GateKind::Or, &[sel, a])?
                    } else {
                        let inv = emit(
                            builder,
                            cse,
                            &format!("{name}__nsel"),
                            GateKind::Not,
                            &[sel],
                        )?;
                        emit(builder, cse, name, GateKind::And, &[inv, a])?
                    };
                    return Ok(Folded::Gate(id));
                }
                _ => {}
            }
        }
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let (dominator, invert_out) = match kind {
                GateKind::And => (false, false),
                GateKind::Nand => (false, true),
                GateKind::Or => (true, false),
                GateKind::Nor => (true, true),
                _ => unreachable!(),
            };
            if fanin
                .iter()
                .any(|f| matches!(f, Folded::Const(v) if *v == dominator))
            {
                stats.constants_folded += 1;
                return Ok(Folded::Const(dominator ^ invert_out));
            }
            // Neutral constants drop out.
            let remaining: Vec<Folded> = fanin
                .iter()
                .copied()
                .filter(|f| !matches!(f, Folded::Const(_)))
                .collect();
            if remaining.len() == 1 {
                if let Folded::Gate(src) = remaining[0] {
                    stats.aliased += 1;
                    if invert_out {
                        let id = emit(builder, cse, name, GateKind::Not, &[src])?;
                        return Ok(Folded::Gate(id));
                    }
                    return Ok(Folded::Gate(src));
                }
            }
            if remaining.len() < fanin.len() && remaining.len() >= 2 {
                let srcs: Vec<GateId> = remaining
                    .iter()
                    .map(|f| match f {
                        Folded::Gate(id) => *id,
                        Folded::Const(_) => unreachable!(),
                    })
                    .collect();
                let id = emit(builder, cse, name, kind.clone(), &srcs)?;
                return Ok(Folded::Gate(id));
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            // Constants toggle the output parity and drop out.
            let mut invert = matches!(kind, GateKind::Xnor);
            let mut srcs: Vec<GateId> = Vec::new();
            for f in fanin {
                match f {
                    Folded::Const(v) => invert ^= *v,
                    Folded::Gate(id) => srcs.push(*id),
                }
            }
            match srcs.len() {
                0 => unreachable!("constant parity handled by the full fold"),
                1 => {
                    stats.aliased += 1;
                    if invert {
                        let id = emit(builder, cse, name, GateKind::Not, &[srcs[0]])?;
                        return Ok(Folded::Gate(id));
                    }
                    return Ok(Folded::Gate(srcs[0]));
                }
                _ if srcs.len() < fanin.len() => {
                    let k = if invert {
                        GateKind::Xnor
                    } else {
                        GateKind::Xor
                    };
                    let id = emit(builder, cse, name, k, &srcs)?;
                    return Ok(Folded::Gate(id));
                }
                _ => {}
            }
        }
        GateKind::Lut(table) => {
            // Shannon-cofactor the LUT on its constant inputs.
            let const_positions: Vec<(usize, bool)> = fanin
                .iter()
                .enumerate()
                .filter_map(|(j, f)| match f {
                    Folded::Const(v) => Some((j, *v)),
                    Folded::Gate(_) => None,
                })
                .collect();
            if !const_positions.is_empty() {
                let free: Vec<usize> = (0..fanin.len())
                    .filter(|j| !const_positions.iter().any(|(cj, _)| cj == j))
                    .collect();
                let sub = TruthTable::from_fn(free.len(), |vals| {
                    let mut full = vec![false; fanin.len()];
                    for (&j, &v) in free.iter().zip(vals) {
                        full[j] = v;
                    }
                    for &(j, v) in &const_positions {
                        full[j] = v;
                    }
                    table.eval(&full)
                })?;
                let srcs: Vec<GateId> = free
                    .iter()
                    .map(|&j| match fanin[j] {
                        Folded::Gate(id) => id,
                        Folded::Const(_) => unreachable!(),
                    })
                    .collect();
                stats.aliased += 1;
                let id = emit(builder, cse, name, GateKind::Lut(sub), &srcs)?;
                return Ok(Folded::Gate(id));
            }
        }
        GateKind::Input(_) => unreachable!("inputs handled by the caller"),
    }

    // 3. No simplification: copy the gate, materializing any constant
    // fan-ins that survived the kind-specific rules (e.g. a MUX data branch
    // under a variable select).
    let srcs: Vec<GateId> = fanin
        .iter()
        .map(|f| match f {
            Folded::Gate(id) => Ok(*id),
            Folded::Const(v) => materialize_const(builder, const_gates, *v),
        })
        .collect::<Result<_, NetlistError>>()?;
    let id = emit(builder, cse, name, kind.clone(), &srcs)?;
    Ok(Folded::Gate(id))
}

/// If `id` is a NOT gate in the builder, returns its operand.
fn builder_not_operand(builder: &CircuitBuilder, id: GateId) -> Option<GateId> {
    builder.gate_kind(id).and_then(|(kind, fanin)| {
        if matches!(kind, GateKind::Not) {
            fanin.first().copied()
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c17;
    use crate::gate::InputRole;

    fn constant(builder: &mut CircuitBuilder, name: &str, v: bool) -> GateId {
        builder
            .add_gate(
                name.to_owned(),
                GateKind::Lut(TruthTable::new(0, v as u64).unwrap()),
                &[],
            )
            .unwrap()
    }

    #[test]
    fn c17_is_already_minimal() {
        let c = c17();
        let (opt, stats) = optimize(&c).unwrap();
        assert_eq!(stats.gates_before, 11);
        assert_eq!(opt.num_gates(), 11);
        assert!(c.equiv_random(&opt, &[], &[], 4, 1).unwrap());
    }

    #[test]
    fn constants_propagate_through_gates() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a").unwrap();
        let one = constant(&mut b, "one", true);
        let zero = constant(&mut b, "zero", false);
        // and(a, one) -> a ; or(a, one) -> 1 ; and(a, zero) -> 0
        let and1 = b.add_gate("and1", GateKind::And, &[a, one]).unwrap();
        let or1 = b.add_gate("or1", GateKind::Or, &[a, one]).unwrap();
        let and0 = b.add_gate("and0", GateKind::And, &[a, zero]).unwrap();
        let x = b.add_gate("x", GateKind::Xor, &[and1, or1]).unwrap();
        let y = b.add_gate("y", GateKind::Or, &[x, and0]).unwrap();
        b.mark_output(y);
        let c = b.finish().unwrap();
        let (opt, _) = optimize(&c).unwrap();
        assert!(c.equiv_random(&opt, &[], &[], 4, 2).unwrap());
        assert!(opt.num_gates() < c.num_gates());
    }

    #[test]
    fn mux_with_constant_select_collapses() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a").unwrap();
        let d = b.add_input("d").unwrap();
        let one = constant(&mut b, "one", true);
        let m = b.add_gate("m", GateKind::Mux, &[one, a, d]).unwrap();
        b.mark_output(m);
        let c = b.finish().unwrap();
        let (opt, stats) = optimize(&c).unwrap();
        assert!(c.equiv_random(&opt, &[], &[], 4, 3).unwrap());
        // s=1 selects the `d` branch; the MUX and constant disappear.
        assert_eq!(opt.num_logic_gates(), 0);
        assert!(stats.aliased >= 1);
    }

    #[test]
    fn double_inverter_is_elided() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a").unwrap();
        let n1 = b.add_gate("n1", GateKind::Not, &[a]).unwrap();
        let n2 = b.add_gate("n2", GateKind::Not, &[n1]).unwrap();
        let n3 = b.add_gate("n3", GateKind::Not, &[n2]).unwrap();
        b.mark_output(n3);
        let c = b.finish().unwrap();
        let (opt, _) = optimize(&c).unwrap();
        assert!(c.equiv_random(&opt, &[], &[], 4, 4).unwrap());
        assert_eq!(opt.num_logic_gates(), 1, "three NOTs fold to one");
    }

    #[test]
    fn dead_logic_is_swept() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a").unwrap();
        let live = b.add_gate("live", GateKind::Not, &[a]).unwrap();
        let dead = b.add_gate("dead", GateKind::Buf, &[a]).unwrap();
        let _dead2 = b.add_gate("dead2", GateKind::Not, &[dead]).unwrap();
        b.mark_output(live);
        let c = b.finish().unwrap();
        let (opt, _) = optimize(&c).unwrap();
        assert_eq!(opt.num_gates(), 2);
    }

    #[test]
    fn lut_cofactoring_on_constant_inputs() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a").unwrap();
        let one = constant(&mut b, "one", true);
        // LUT(a, 1) computing AND: cofactor = identity on a.
        let table = TruthTable::from_fn(2, |v| v[0] & v[1]).unwrap();
        let l = b.add_gate("l", GateKind::Lut(table), &[a, one]).unwrap();
        b.mark_output(l);
        let c = b.finish().unwrap();
        let (opt, _) = optimize(&c).unwrap();
        assert!(c.equiv_random(&opt, &[], &[], 4, 5).unwrap());
        // Result is a 1-input LUT (identity) on `a`.
        let out = opt.outputs()[0];
        match opt.gate(out).kind() {
            GateKind::Lut(t) => assert_eq!(t.num_inputs(), 1),
            other => panic!("expected LUT, got {other:?}"),
        }
    }

    #[test]
    fn constant_output_is_materialized() {
        let mut b = CircuitBuilder::new("t");
        let _a = b.add_input("a").unwrap();
        let zero = constant(&mut b, "zero", false);
        let one = constant(&mut b, "one", true);
        let g = b.add_gate("g", GateKind::And, &[zero, one]).unwrap();
        b.mark_output(g);
        let c = b.finish().unwrap();
        let (opt, stats) = optimize(&c).unwrap();
        assert!(c.equiv_random(&opt, &[], &[], 4, 6).unwrap());
        assert!(stats.constants_folded >= 1);
        assert_eq!(opt.outputs().len(), 1);
    }

    #[test]
    fn ports_are_preserved() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a").unwrap();
        let k = b.add_key_input("keyinput0").unwrap();
        let g = b.add_gate("g", GateKind::Xor, &[a, k]).unwrap();
        b.mark_output(g);
        let c = b.finish().unwrap();
        let (opt, _) = optimize(&c).unwrap();
        assert_eq!(opt.inputs().len(), 1);
        assert_eq!(opt.keys().len(), 1);
        assert!(matches!(
            opt.gate(opt.keys()[0]).kind(),
            GateKind::Input(InputRole::Key)
        ));
    }

    #[test]
    fn colliding_outputs_keep_their_port_count() {
        // out2 = BUF(out1): both fold to the same gate; the optimizer must
        // keep two output ports (buffering the duplicate).
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a").unwrap();
        let g = b.add_gate("g", GateKind::Not, &[a]).unwrap();
        let h = b.add_gate("h", GateKind::Buf, &[g]).unwrap();
        b.mark_output(g);
        b.mark_output(h);
        let c = b.finish().unwrap();
        let (opt, _) = optimize(&c).unwrap();
        assert_eq!(opt.outputs().len(), 2);
        assert!(c.equiv_random(&opt, &[], &[], 4, 9).unwrap());

        // Same for two constant outputs of equal polarity.
        let mut b = CircuitBuilder::new("t2");
        let _a = b.add_input("a").unwrap();
        let one1 = constant(&mut b, "one1", true);
        let one2 = constant(&mut b, "one2", true);
        b.mark_output(one1);
        b.mark_output(one2);
        let c = b.finish().unwrap();
        let (opt, _) = optimize(&c).unwrap();
        assert_eq!(opt.outputs().len(), 2);
        assert!(c.equiv_random(&opt, &[], &[], 4, 10).unwrap());
    }

    #[test]
    fn optimize_is_idempotent() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a").unwrap();
        let one = constant(&mut b, "one", true);
        let g1 = b.add_gate("g1", GateKind::And, &[a, one]).unwrap();
        let g2 = b.add_gate("g2", GateKind::Buf, &[g1]).unwrap();
        b.mark_output(g2);
        let c = b.finish().unwrap();
        let (opt1, _) = optimize(&c).unwrap();
        let (opt2, stats2) = optimize(&opt1).unwrap();
        assert_eq!(opt1, opt2);
        assert_eq!(stats2.constants_folded, 0);
        assert_eq!(stats2.aliased, 0);
    }
}
