//! Topological analysis: levelization, depth, cones, and fanout metrics.

use crate::circuit::{Circuit, GateId};

/// Levelization of a circuit: level 0 holds the primary/key inputs, and each
/// gate sits one past its deepest fan-in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levels {
    level: Vec<u32>,
    depth: u32,
}

impl Levels {
    /// The level of a gate.
    pub fn level(&self, id: GateId) -> u32 {
        self.level[id.index()]
    }

    /// The circuit depth (maximum level).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Levels of all gates in id order.
    pub fn as_slice(&self) -> &[u32] {
        &self.level
    }
}

/// Computes the level of every gate (longest path from any input).
pub fn levelize(circuit: &Circuit) -> Levels {
    let mut level = vec![0u32; circuit.num_gates()];
    let mut depth = 0;
    for &id in circuit.topo_order() {
        let gate = circuit.gate(id);
        if gate.kind().is_input() {
            continue;
        }
        let l = gate
            .fanin()
            .iter()
            .map(|&f| level[f.index()])
            .max()
            .unwrap_or(0)
            + 1;
        level[id.index()] = l;
        depth = depth.max(l);
    }
    Levels { level, depth }
}

/// The transitive fan-in cone of a set of gates (including the roots).
pub fn fanin_cone(circuit: &Circuit, roots: &[GateId]) -> Vec<GateId> {
    let mut seen = vec![false; circuit.num_gates()];
    let mut stack: Vec<GateId> = roots.to_vec();
    let mut cone = Vec::new();
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        cone.push(id);
        for &f in circuit.gate(id).fanin() {
            if !seen[f.index()] {
                stack.push(f);
            }
        }
    }
    cone.sort();
    cone
}

/// The transitive fan-out cone of a set of gates (including the roots).
pub fn fanout_cone(circuit: &Circuit, roots: &[GateId]) -> Vec<GateId> {
    let fanouts = circuit.fanouts();
    let mut seen = vec![false; circuit.num_gates()];
    let mut stack: Vec<GateId> = roots.to_vec();
    let mut cone = Vec::new();
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        cone.push(id);
        for &f in &fanouts[id.index()] {
            if !seen[f.index()] {
                stack.push(f);
            }
        }
    }
    cone.sort();
    cone
}

/// Gates that do not reach any primary output (dead logic).
pub fn dead_gates(circuit: &Circuit) -> Vec<GateId> {
    let live = fanin_cone(circuit, circuit.outputs());
    let mut is_live = vec![false; circuit.num_gates()];
    for id in live {
        is_live[id.index()] = true;
    }
    (0..circuit.num_gates())
        .map(GateId::from_index)
        .filter(|id| !is_live[id.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c17;
    use crate::{CircuitBuilder, GateKind};

    #[test]
    fn c17_depth_is_three() {
        let c = c17();
        let levels = levelize(&c);
        assert_eq!(levels.depth(), 3);
        let n22 = c.find("n22").unwrap();
        assert_eq!(levels.level(n22), 3);
        let n10 = c.find("n10").unwrap();
        assert_eq!(levels.level(n10), 1);
        for &i in c.inputs() {
            assert_eq!(levels.level(i), 0);
        }
        assert_eq!(levels.as_slice().len(), c.num_gates());
    }

    #[test]
    fn fanin_cone_of_output_covers_support() {
        let c = c17();
        let n22 = c.find("n22").unwrap();
        let cone = fanin_cone(&c, &[n22]);
        // n22's cone: n22, n10, n16, n11, n1, n2, n3, n6.
        assert_eq!(cone.len(), 8);
        assert!(cone.contains(&c.find("n1").unwrap()));
        assert!(!cone.contains(&c.find("n7").unwrap()));
    }

    #[test]
    fn fanout_cone_reaches_outputs() {
        let c = c17();
        let n11 = c.find("n11").unwrap();
        let cone = fanout_cone(&c, &[n11]);
        assert!(cone.contains(&c.find("n22").unwrap()));
        assert!(cone.contains(&c.find("n23").unwrap()));
    }

    #[test]
    fn dead_gates_found() {
        let mut b = CircuitBuilder::new("dead");
        let a = b.add_input("a").unwrap();
        let live = b.add_gate("live", GateKind::Not, &[a]).unwrap();
        let dead = b.add_gate("dead", GateKind::Buf, &[a]).unwrap();
        b.mark_output(live);
        let c = b.finish().unwrap();
        assert_eq!(dead_gates(&c), vec![dead]);
    }

    #[test]
    fn no_dead_gates_in_c17() {
        assert!(dead_gates(&c17()).is_empty());
    }
}
