use crate::circuit::{Circuit, GateId};
use crate::error::NetlistError;
use crate::gate::{Gate, GateKind, InputRole};
use std::collections::HashMap;

/// Incremental constructor for [`Circuit`] values.
///
/// The builder checks names and arities eagerly and validates acyclicity at
/// [`finish`](CircuitBuilder::finish), so the resulting circuit is always a
/// well-formed DAG.
///
/// # Example
///
/// ```
/// use netlist::{CircuitBuilder, GateKind};
///
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let mut b = CircuitBuilder::new("half_adder");
/// let a = b.add_input("a")?;
/// let c = b.add_input("b")?;
/// let sum = b.add_gate("sum", GateKind::Xor, &[a, c])?;
/// let carry = b.add_gate("carry", GateKind::And, &[a, c])?;
/// b.mark_output(sum);
/// b.mark_output(carry);
/// let circuit = b.finish()?;
/// assert_eq!(circuit.num_logic_gates(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<GateId>,
    keys: Vec<GateId>,
    outputs: Vec<GateId>,
    by_name: HashMap<String, GateId>,
}

impl CircuitBuilder {
    /// Starts a new, empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            gates: Vec::new(),
            inputs: Vec::new(),
            keys: Vec::new(),
            outputs: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Number of gates added so far.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether no gates have been added yet.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Looks up a previously added signal by name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.by_name.get(name).copied()
    }

    /// The kind and fan-ins of an already-added gate, if `id` is in range.
    pub fn gate_kind(&self, id: GateId) -> Option<(&GateKind, &[GateId])> {
        self.gates
            .get(id.index())
            .map(|g| (&g.kind, g.fanin.as_slice()))
    }

    fn push(
        &mut self,
        name: String,
        kind: GateKind,
        fanin: Vec<GateId>,
    ) -> Result<GateId, NetlistError> {
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateSignal(name));
        }
        kind.check_arity(&name, fanin.len())?;
        for &f in &fanin {
            if f.index() >= self.gates.len() {
                return Err(NetlistError::UndefinedSignal {
                    gate: name.clone(),
                    signal: format!("{f}"),
                });
            }
        }
        let id = GateId(self.gates.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.gates.push(Gate { name, kind, fanin });
        Ok(id)
    }

    /// Adds a primary (data) input.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateSignal`] when the name is taken.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<GateId, NetlistError> {
        let id = self.push(name.into(), GateKind::Input(InputRole::Data), Vec::new())?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a key input (used by obfuscation schemes).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateSignal`] when the name is taken.
    pub fn add_key_input(&mut self, name: impl Into<String>) -> Result<GateId, NetlistError> {
        let id = self.push(name.into(), GateKind::Input(InputRole::Key), Vec::new())?;
        self.keys.push(id);
        Ok(id)
    }

    /// Adds a logic gate driven by previously added signals.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateSignal`] for name collisions,
    /// [`NetlistError::BadArity`] for an illegal fan-in count, and
    /// [`NetlistError::UndefinedSignal`] if a fan-in id is out of range.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanin: &[GateId],
    ) -> Result<GateId, NetlistError> {
        if kind.is_input() {
            // Inputs must go through add_input/add_key_input so the port
            // lists stay consistent.
            let name = name.into();
            return match kind {
                GateKind::Input(InputRole::Data) => self.add_input(name),
                GateKind::Input(InputRole::Key) => self.add_key_input(name),
                _ => unreachable!(),
            };
        }
        self.push(name.into(), kind, fanin.to_vec())
    }

    /// Marks a signal as a primary output. Repeated marks are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this builder.
    pub fn mark_output(&mut self, id: GateId) {
        assert!(
            id.index() < self.gates.len(),
            "output id does not belong to this builder"
        );
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Validates the netlist and produces an immutable [`Circuit`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] when the gates do not
    /// form a DAG. (Cycles cannot be constructed through this builder's
    /// `add_gate`, which only accepts already-defined fan-ins, but the check
    /// keeps the invariant local and guards future construction paths.)
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        let topo = kahn_topo(&self.gates)?;
        Ok(Circuit {
            name: self.name,
            gates: self.gates,
            inputs: self.inputs,
            keys: self.keys,
            outputs: self.outputs,
            topo,
        })
    }
}

/// Kahn topological sort over the gate list.
pub(crate) fn kahn_topo(gates: &[Gate]) -> Result<Vec<GateId>, NetlistError> {
    let n = gates.len();
    let mut indegree = vec![0usize; n];
    let mut fanouts: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, gate) in gates.iter().enumerate() {
        indegree[i] = gate.fanin.len();
        for f in &gate.fanin {
            fanouts[f.index()].push(i as u32);
        }
    }
    let mut queue: Vec<u32> = (0..n as u32)
        .filter(|&i| indegree[i as usize] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        order.push(GateId(v));
        for &w in &fanouts[v as usize] {
            indegree[w as usize] -= 1;
            if indegree[w as usize] == 0 {
                queue.push(w);
            }
        }
    }
    if order.len() != n {
        let cyclic = (0..n).find(|&i| indegree[i] > 0).unwrap_or(0);
        return Err(NetlistError::CombinationalCycle {
            gate: gates[cyclic].name.clone(),
        });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_rejected() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        assert!(matches!(
            b.add_input("a"),
            Err(NetlistError::DuplicateSignal(_))
        ));
    }

    #[test]
    fn arity_enforced_at_add() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a").unwrap();
        assert!(matches!(
            b.add_gate("g", GateKind::And, &[a]),
            Err(NetlistError::BadArity { .. })
        ));
    }

    #[test]
    fn add_gate_routes_inputs_to_port_lists() {
        let mut b = CircuitBuilder::new("t");
        let a = b
            .add_gate("a", GateKind::Input(InputRole::Data), &[])
            .unwrap();
        let k = b
            .add_gate("k0", GateKind::Input(InputRole::Key), &[])
            .unwrap();
        let g = b.add_gate("g", GateKind::Xor, &[a, k]).unwrap();
        b.mark_output(g);
        let c = b.finish().unwrap();
        assert_eq!(c.inputs(), &[a]);
        assert_eq!(c.keys(), &[k]);
    }

    #[test]
    fn mark_output_is_idempotent() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a").unwrap();
        b.mark_output(a);
        b.mark_output(a);
        let c = b.finish().unwrap();
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn finish_produces_valid_topo() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a").unwrap();
        let x = b.add_gate("x", GateKind::Not, &[a]).unwrap();
        let y = b.add_gate("y", GateKind::And, &[a, x]).unwrap();
        b.mark_output(y);
        let c = b.finish().unwrap();
        assert_eq!(c.topo_order().len(), 3);
    }

    #[test]
    fn empty_circuit_is_legal() {
        let c = CircuitBuilder::new("empty").finish().unwrap();
        assert_eq!(c.num_gates(), 0);
        assert!(CircuitBuilder::new("e").is_empty());
    }
}
