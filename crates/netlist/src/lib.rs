//! Gate-level netlist intermediate representation for combinational circuits.
//!
//! This crate is the substrate of the ICNet reproduction: every other crate
//! (obfuscation, SAT attack, dataset generation, graph learning) consumes the
//! [`Circuit`] type defined here.
//!
//! # Features
//!
//! * A validated, immutable [`Circuit`] DAG built through [`CircuitBuilder`].
//! * The ISCAS-85 `.bench` text format ([`Circuit::from_bench`],
//!   [`Circuit::to_bench`]), including a key-input naming convention used by
//!   logic-locking benchmarks.
//! * 64-way bit-parallel logic simulation ([`Circuit::simulate`]).
//! * Topological analysis: levelization, depth, fanout maps ([`topo`]).
//! * Circuit statistics for feature engineering ([`stats`]).
//! * The genuine ISCAS-85 `c17` circuit embedded for tests and examples
//!   ([`c17`]).
//!
//! # Example
//!
//! ```
//! use netlist::{c17, GateKind};
//!
//! let circuit = c17();
//! assert_eq!(circuit.inputs().len(), 5);
//! assert_eq!(circuit.outputs().len(), 2);
//! // All six internal gates of c17 are NANDs.
//! let nands = circuit
//!     .gates()
//!     .filter(|g| matches!(g.kind(), GateKind::Nand))
//!     .count();
//! assert_eq!(nands, 6);
//! ```

mod bench_format;
mod builder;
mod c17;
mod circuit;
mod error;
mod gate;
pub mod opt;
mod sim;
pub mod stats;
pub mod topo;

pub use bench_format::{parse_bench, write_bench, KEY_INPUT_PREFIX};
pub use builder::CircuitBuilder;
pub use c17::c17;
pub use circuit::{Circuit, GateId};
pub use error::NetlistError;
pub use gate::{Gate, GateKind, InputRole, TruthTable};
pub use sim::SimPatterns;
