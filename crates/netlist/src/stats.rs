//! Circuit statistics used for reporting and feature engineering.

use crate::circuit::Circuit;
use crate::gate::GateKind;
use crate::topo::levelize;
use std::collections::BTreeMap;
use std::fmt;

/// Summary statistics of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Total gates including inputs.
    pub num_gates: usize,
    /// Primary (data) inputs.
    pub num_inputs: usize,
    /// Key inputs.
    pub num_keys: usize,
    /// Primary outputs.
    pub num_outputs: usize,
    /// Logic gates (non-inputs).
    pub num_logic: usize,
    /// Longest input-to-output path length.
    pub depth: u32,
    /// Mean fan-out over all gates.
    pub avg_fanout: f64,
    /// Largest fan-out of any gate.
    pub max_fanout: usize,
    /// Gate counts keyed by mnemonic (e.g. `"nand"`).
    pub kind_counts: BTreeMap<&'static str, usize>,
}

impl CircuitStats {
    /// Fraction of logic gates with the given mnemonic.
    pub fn kind_fraction(&self, mnemonic: &str) -> f64 {
        if self.num_logic == 0 {
            return 0.0;
        }
        *self.kind_counts.get(mnemonic).unwrap_or(&0) as f64 / self.num_logic as f64
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} gates ({} in, {} key, {} out), depth {}, avg fanout {:.2}",
            self.num_gates,
            self.num_inputs,
            self.num_keys,
            self.num_outputs,
            self.depth,
            self.avg_fanout
        )?;
        for (kind, count) in &self.kind_counts {
            writeln!(f, "  {kind:>8}: {count}")?;
        }
        Ok(())
    }
}

/// Computes [`CircuitStats`] for a circuit.
pub fn circuit_stats(circuit: &Circuit) -> CircuitStats {
    let fanouts = circuit.fanouts();
    let total_fanout: usize = fanouts.iter().map(Vec::len).sum();
    let max_fanout = fanouts.iter().map(Vec::len).max().unwrap_or(0);
    let mut kind_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for gate in circuit.gates() {
        if !gate.kind().is_input() {
            *kind_counts.entry(gate.kind().mnemonic()).or_insert(0) += 1;
        }
    }
    CircuitStats {
        num_gates: circuit.num_gates(),
        num_inputs: circuit.inputs().len(),
        num_keys: circuit.keys().len(),
        num_outputs: circuit.outputs().len(),
        num_logic: circuit.num_logic_gates(),
        depth: levelize(circuit).depth(),
        avg_fanout: if circuit.num_gates() == 0 {
            0.0
        } else {
            total_fanout as f64 / circuit.num_gates() as f64
        },
        max_fanout,
        kind_counts,
    }
}

/// The set of gate-type mnemonics the paper's feature encoding recognizes:
/// {AND, NOR, NOT, NAND, OR, XOR} (Section IV-B).
pub const PAPER_GATE_TYPES: [&str; 6] = ["and", "nor", "not", "nand", "or", "xor"];

/// Index of a gate kind inside the paper's one-hot gate-type encoding,
/// or `None` for kinds outside the paper's set (buf, xnor, mux, lut).
pub fn paper_type_index(kind: &GateKind) -> Option<usize> {
    PAPER_GATE_TYPES.iter().position(|&m| m == kind.mnemonic())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c17;

    #[test]
    fn c17_stats() {
        let s = circuit_stats(&c17());
        assert_eq!(s.num_gates, 11);
        assert_eq!(s.num_logic, 6);
        assert_eq!(s.depth, 3);
        assert_eq!(s.kind_counts.get("nand"), Some(&6));
        assert!((s.kind_fraction("nand") - 1.0).abs() < 1e-12);
        assert_eq!(s.kind_fraction("xor"), 0.0);
        assert_eq!(s.max_fanout, 2);
        assert!(s.to_string().contains("nand"));
    }

    #[test]
    fn paper_type_indices() {
        assert_eq!(paper_type_index(&GateKind::And), Some(0));
        assert_eq!(paper_type_index(&GateKind::Xor), Some(5));
        assert_eq!(paper_type_index(&GateKind::Mux), None);
        assert_eq!(paper_type_index(&GateKind::Buf), None);
    }

    #[test]
    fn empty_circuit_stats() {
        let c = crate::CircuitBuilder::new("e").finish().unwrap();
        let s = circuit_stats(&c);
        assert_eq!(s.num_gates, 0);
        assert_eq!(s.avg_fanout, 0.0);
        assert_eq!(s.kind_fraction("and"), 0.0);
    }
}
