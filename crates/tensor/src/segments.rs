//! Row-segment bookkeeping for batched multi-graph tensors.
//!
//! A batch of B graphs is packed into one tall matrix (and one
//! block-diagonal sparse operator); [`Segments`] records where each graph's
//! rows start and end so per-graph stages — pooling, softmax, gradient
//! reduction — can walk the stacked matrix segment by segment in a fixed
//! order. That fixed order is what makes the batched backward pass
//! bit-identical to the per-instance one (see DESIGN.md §10).

use std::ops::Range;

/// Half-open row ranges `[offsets[i], offsets[i+1])`, one per graph in a
/// batch. Offsets are monotone non-decreasing and start at zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segments {
    offsets: Vec<usize>,
}

impl Segments {
    /// Builds segments from per-graph row counts.
    pub fn from_lens(lens: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(lens.len() + 1);
        offsets.push(0);
        let mut total = 0usize;
        for &len in lens {
            total += len;
            offsets.push(total);
        }
        Segments { offsets }
    }

    /// Builds segments from an offsets vector (`[0, n_0, n_0+n_1, ...]`).
    ///
    /// # Panics
    ///
    /// Panics unless the offsets start at 0 and are monotone non-decreasing.
    pub fn from_offsets(offsets: Vec<usize>) -> Self {
        assert_eq!(offsets.first(), Some(&0), "segment offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "segment offsets must be monotone non-decreasing"
        );
        Segments { offsets }
    }

    /// `count` segments of one row each (a batch of scalars-per-graph,
    /// e.g. the prediction head's output rows).
    pub fn units(count: usize) -> Self {
        Segments {
            offsets: (0..=count).collect(),
        }
    }

    /// Number of segments (graphs in the batch).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the batch holds no segments.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of rows covered.
    pub fn total_rows(&self) -> usize {
        *self.offsets.last().expect("offsets are never empty")
    }

    /// The half-open row range of segment `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn range(&self, i: usize) -> Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Iterates the row ranges in segment order.
    pub fn iter(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        self.offsets.windows(2).map(|w| w[0]..w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lens_round_trips() {
        let s = Segments::from_lens(&[3, 1, 4]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.total_rows(), 8);
        assert_eq!(s.range(0), 0..3);
        assert_eq!(s.range(1), 3..4);
        assert_eq!(s.range(2), 4..8);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0..3, 3..4, 4..8]);
    }

    #[test]
    fn units_are_single_rows() {
        let s = Segments::units(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.total_rows(), 4);
        assert!(s.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn empty_batch_is_representable() {
        let s = Segments::from_lens(&[]);
        assert!(s.is_empty());
        assert_eq!(s.total_rows(), 0);
    }

    #[test]
    fn zero_length_segments_are_allowed() {
        let s = Segments::from_lens(&[2, 0, 1]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.range(1), 2..2);
        assert_eq!(s.total_rows(), 3);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn decreasing_offsets_are_rejected() {
        let _ = Segments::from_offsets(vec![0, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "start at 0")]
    fn offsets_must_start_at_zero() {
        let _ = Segments::from_offsets(vec![1, 2]);
    }
}
