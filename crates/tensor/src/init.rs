//! Parameter initialization (the paper initializes with Gaussian or uniform
//! distributions, Algorithm 1 line 7).

use crate::matrix::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..=a))
}

/// Zero-mean Gaussian initialization with the given standard deviation
/// (Box-Muller; avoids needing a distributions crate).
pub fn gaussian(rows: usize, cols: usize, std: f64, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(20, 30, &mut rng);
        let a = (6.0 / 50.0f64).sqrt();
        assert!(m.max_abs() <= a);
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn gaussian_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = gaussian(100, 100, 0.5, &mut rng);
        let mean = m.mean();
        let var = m.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f64>()
            / (m.as_slice().len() - 1) as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(3));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
