//! Gradient-descent optimizers. The paper trains its models with ADAM
//! (Section IV-B); plain SGD is provided for the SGD-regression baseline and
//! for ablations.

use crate::matrix::Matrix;

/// A first-order optimizer updating a flat list of parameter matrices from
/// equally shaped gradients.
pub trait Optimizer {
    /// Applies one update step. `params[i]` is updated from `grads[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or mismatched shapes.
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]);
}

/// Plain stochastic gradient descent: `p -= lr * g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        for (i, (p, g)) in params.iter_mut().zip(grads).enumerate() {
            assert_eq!(
                p.shape(),
                g.shape(),
                "param/grad shape mismatch at index {i}"
            );
            p.axpy(-self.lr, g);
        }
    }
}

/// ADAM (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Division-by-zero guard.
    pub eps: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// ADAM with the standard betas (0.9, 0.999).
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The mutable optimizer state `(t, m, v)`, for checkpointing. Moments
    /// are empty until the first [`Optimizer::step`].
    pub fn state(&self) -> (u64, &[Matrix], &[Matrix]) {
        (self.t, &self.m, &self.v)
    }

    /// Restores checkpointed state captured by [`Adam::state`]. Resuming
    /// training is bit-identical only if the restored moments are bit-exact.
    ///
    /// # Panics
    ///
    /// Panics if `m` and `v` differ in length or element shapes — the
    /// checkpoint would then not belong to the model being restored.
    pub fn restore(&mut self, t: u64, m: Vec<Matrix>, v: Vec<Matrix>) {
        assert_eq!(m.len(), v.len(), "adam moment count mismatch");
        for (i, (mm, vv)) in m.iter().zip(&v).enumerate() {
            assert_eq!(
                mm.shape(),
                vv.shape(),
                "adam moment shape mismatch at index {i}"
            );
        }
        self.t = t;
        self.m = m;
        self.v = v;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            self.v = self.m.clone();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "optimizer bound to other params"
        );
        // Count-only validation is not enough: two models can have the same
        // number of parameters with different shapes, and a reused optimizer
        // would then apply stale moments (or index-panic mid-update, leaving
        // half the parameters already mutated).
        for (i, (p, m)) in params.iter().zip(&self.m).enumerate() {
            assert_eq!(
                p.shape(),
                m.shape(),
                "optimizer bound to other params: moment shape mismatch at index {i}"
            );
            assert_eq!(
                p.shape(),
                grads[i].shape(),
                "param/grad shape mismatch at index {i}"
            );
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = &grads[i];
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for j in 0..g.as_slice().len() {
                let gj = g.as_slice()[j];
                let mj = self.beta1 * m.as_slice()[j] + (1.0 - self.beta1) * gj;
                let vj = self.beta2 * v.as_slice()[j] + (1.0 - self.beta2) * gj * gj;
                m.as_mut_slice()[j] = mj;
                v.as_mut_slice()[j] = vj;
                let m_hat = mj / b1t;
                let v_hat = vj / b2t;
                params[i].as_mut_slice()[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 and check convergence.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut params = vec![Matrix::scalar(0.0)];
        for _ in 0..steps {
            let x = params[0].get(0, 0);
            let grad = vec![Matrix::scalar(2.0 * (x - 3.0))];
            opt.step(&mut params, &grad);
        }
        params[0].get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimize(&mut Sgd::new(0.1), 200);
        assert!((x - 3.0).abs() < 1e-6, "got {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimize(&mut Adam::new(0.1), 500);
        assert!((x - 3.0).abs() < 1e-3, "got {x}");
    }

    #[test]
    fn adam_handles_multiple_params() {
        let mut opt = Adam::new(0.05);
        let mut params = vec![Matrix::scalar(-1.0), Matrix::scalar(5.0)];
        for _ in 0..800 {
            let grads = vec![
                Matrix::scalar(2.0 * (params[0].get(0, 0) - 1.0)),
                Matrix::scalar(2.0 * (params[1].get(0, 0) + 2.0)),
            ];
            opt.step(&mut params, &grads);
        }
        assert!((params[0].get(0, 0) - 1.0).abs() < 1e-2);
        assert!((params[1].get(0, 0) + 2.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::new(0.1);
        let mut params = vec![Matrix::scalar(0.0)];
        opt.step(&mut params, &[]);
    }

    #[test]
    #[should_panic(expected = "optimizer bound to other params: moment shape mismatch at index 0")]
    fn adam_rejects_reuse_across_models_with_different_shapes() {
        // Same parameter *count*, different shapes: before the per-parameter
        // shape check this either index-panicked deep in the update loop or
        // silently applied stale moment tails.
        let mut opt = Adam::new(0.1);
        let mut a = vec![Matrix::zeros(2, 3)];
        opt.step(&mut a, &[Matrix::ones(2, 3)]);
        let mut b = vec![Matrix::zeros(3, 2)];
        opt.step(&mut b, &[Matrix::ones(3, 2)]);
    }

    #[test]
    #[should_panic(expected = "param/grad shape mismatch at index 0")]
    fn adam_rejects_mismatched_grad_shape() {
        let mut opt = Adam::new(0.1);
        let mut params = vec![Matrix::zeros(2, 2)];
        opt.step(&mut params, &[Matrix::ones(2, 3)]);
    }

    #[test]
    #[should_panic(expected = "param/grad shape mismatch at index 0")]
    fn sgd_rejects_mismatched_grad_shape() {
        let mut opt = Sgd::new(0.1);
        let mut params = vec![Matrix::zeros(2, 2)];
        opt.step(&mut params, &[Matrix::ones(3, 2)]);
    }
}
