//! Dense/sparse matrix math and reverse-mode automatic differentiation.
//!
//! No mature GNN or autodiff library exists in the sanctioned dependency
//! set, so this crate provides the numerical substrate for the `icnet` and
//! `regress` crates:
//!
//! * [`Matrix`] — a dense row-major `f64` matrix with the usual algebra;
//! * [`CsrMatrix`] — compressed sparse row matrices with sparse×dense
//!   products (circuit adjacency matrices are extremely sparse);
//! * [`Tape`] — a reverse-mode autodiff tape covering exactly the operator
//!   set the paper's models need (matmul, sparse matmul, ReLU, exp,
//!   softmax attention, reductions);
//! * [`linalg`] — direct solvers (Cholesky, Gaussian elimination) for the
//!   closed-form regression baselines;
//! * [`Adam`] / [`Sgd`] — optimizers ([the paper][crate] trains with ADAM);
//! * [`init`] — Xavier/Gaussian parameter initialization.
//!
//! # Example: differentiate a tiny network
//!
//! ```
//! use tensor::{Matrix, Tape};
//!
//! let x = Matrix::from_rows(&[&[1.0, 2.0]]);
//! let w = Matrix::from_rows(&[&[0.5], &[-0.25]]);
//! let mut tape = Tape::new();
//! let xv = tape.constant(x);
//! let wv = tape.leaf(w);
//! let h = tape.matmul(xv, wv);
//! let loss = tape.sum_all(h);
//! tape.backward(loss);
//! // dL/dW = x^T
//! assert_eq!(tape.grad(wv).get(0, 0), 1.0);
//! assert_eq!(tape.grad(wv).get(1, 0), 2.0);
//! ```

pub mod init;
pub mod linalg;
mod matrix;
mod optim;
mod pool;
mod segments;
mod sparse;
mod tape;

pub use matrix::Matrix;
pub use optim::{Adam, Optimizer, Sgd};
pub use pool::BufferPool;
pub use segments::Segments;
pub use sparse::CsrMatrix;
pub use tape::{Tape, VarId};
