use crate::matrix::Matrix;
use std::fmt;

/// A compressed-sparse-row matrix of `f64`.
///
/// Circuit adjacency matrices have ~2 nonzeros per row, so the graph
/// convolutions in `icnet` run on this representation instead of dense
/// `n x n` matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets. Duplicate
    /// coordinates are summed.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is out of range.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet out of range");
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        // Merge duplicate coordinates.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut indptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            indptr[r + 1] += 1;
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        let indices: Vec<u32> = merged.iter().map(|&(_, c, _)| c as u32).collect();
        let values: Vec<f64> = merged.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// The `n x n` sparse identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over `(row, col, value)` of stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (self.indptr[r]..self.indptr[r + 1])
                .map(move |i| (r, self.indices[i] as usize, self.values[i]))
        })
    }

    /// Sparse × dense product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn spmm(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        self.spmm_into(rhs, &mut out);
        out
    }

    /// Sparse × dense product written into `out`, overwriting its contents
    /// (buffer-reuse variant of [`CsrMatrix::spmm`] for training hot paths).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or when `out` is not
    /// `rows(self) x cols(rhs)`.
    pub fn spmm_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows(),
            "spmm inner dimensions: {}x{} * {}x{}",
            self.rows,
            self.cols,
            rhs.rows(),
            rhs.cols()
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols()),
            "spmm output shape: want {}x{}",
            self.rows,
            rhs.cols()
        );
        out.as_mut_slice().fill(0.0);
        let f = rhs.cols();
        let out_data = out.as_mut_slice();
        let rhs_data = rhs.as_slice();
        for r in 0..self.rows {
            for i in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[i] as usize;
                let v = self.values[i];
                let src = &rhs_data[c * f..(c + 1) * f];
                let dst = &mut out_data[r * f..(r + 1) * f];
                for (o, &x) in dst.iter_mut().zip(src) {
                    *o += v * x;
                }
            }
        }
    }

    /// Transpose (used for the backward pass of [`CsrMatrix::spmm`]).
    pub fn transpose(&self) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f64)> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Densifies (for tests and small matrices).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, out.get(r, c) + v);
        }
        out
    }

    /// Multiplies each row by a scalar (`diag(scale) * self`); used for
    /// normalized Laplacians.
    ///
    /// # Panics
    ///
    /// Panics if `scale.len() != rows`.
    pub fn scale_rows(&self, scale: &[f64]) -> CsrMatrix {
        assert_eq!(scale.len(), self.rows, "row scale length mismatch");
        let mut out = self.clone();
        for (r, &factor) in scale.iter().enumerate() {
            for i in out.indptr[r]..out.indptr[r + 1] {
                out.values[i] *= factor;
            }
        }
        out
    }

    /// Multiplies each column by a scalar (`self * diag(scale)`).
    ///
    /// # Panics
    ///
    /// Panics if `scale.len() != cols`.
    pub fn scale_cols(&self, scale: &[f64]) -> CsrMatrix {
        assert_eq!(scale.len(), self.cols, "col scale length mismatch");
        let mut out = self.clone();
        for i in 0..out.values.len() {
            out.values[i] *= scale[out.indices[i] as usize];
        }
        out
    }

    /// Row sums (out-degree when the matrix is an adjacency matrix).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.values[self.indptr[r]..self.indptr[r + 1]].iter().sum())
            .collect()
    }
}

impl fmt::Display for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csr {}x{} ({} nnz)", self.rows, self.cols, self.nnz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (1, 0, 3.0), (2, 2, 4.0), (0, 2, 1.0)])
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let s = example();
        let d = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(s.spmm(&d), s.to_dense().matmul(&d));
    }

    #[test]
    fn spmm_into_overwrites_stale_output() {
        let s = example();
        let d = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut out = Matrix::ones(3, 2);
        s.spmm_into(&d, &mut out);
        assert_eq!(out, s.spmm(&d));
    }

    #[test]
    fn duplicates_are_summed() {
        let s = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.to_dense().get(0, 0), 3.5);
    }

    #[test]
    fn transpose_matches_dense() {
        let s = example();
        assert_eq!(s.transpose().to_dense(), s.to_dense().transpose());
    }

    #[test]
    fn identity_spmm_is_noop() {
        let d = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(CsrMatrix::identity(3).spmm(&d), d);
    }

    #[test]
    fn empty_rows_are_fine() {
        let s = CsrMatrix::from_triplets(4, 4, &[(3, 0, 1.0)]);
        let d = Matrix::ones(4, 2);
        let out = s.spmm(&d);
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(3, 0), 1.0);
    }

    #[test]
    fn row_and_col_scaling() {
        let s = example();
        let scaled = s.scale_rows(&[2.0, 1.0, 0.5]);
        assert_eq!(scaled.to_dense().get(0, 1), 4.0);
        assert_eq!(scaled.to_dense().get(2, 2), 2.0);
        let cscaled = s.scale_cols(&[0.0, 1.0, 10.0]);
        assert_eq!(cscaled.to_dense().get(1, 0), 0.0);
        assert_eq!(cscaled.to_dense().get(0, 2), 10.0);
    }

    #[test]
    fn row_sums_match_dense() {
        let s = example();
        let dense = s.to_dense();
        for (r, sum) in s.row_sums().into_iter().enumerate() {
            assert_eq!(sum, dense.row(r).iter().sum::<f64>());
        }
    }

    #[test]
    fn display_mentions_nnz() {
        assert!(example().to_string().contains("4 nnz"));
    }
}
