use crate::matrix::Matrix;
use std::fmt;

/// A compressed-sparse-row matrix of `f64`.
///
/// Circuit adjacency matrices have ~2 nonzeros per row, so the graph
/// convolutions in `icnet` run on this representation instead of dense
/// `n x n` matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets. Duplicate
    /// coordinates are summed.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is out of range.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet out of range");
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        // Merge duplicate coordinates.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut indptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            indptr[r + 1] += 1;
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        let indices: Vec<u32> = merged.iter().map(|&(_, c, _)| c as u32).collect();
        let values: Vec<f64> = merged.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Stacks square or rectangular blocks down the diagonal:
    /// `diag(blocks[0], blocks[1], ...)`. This is how a batch of B graph
    /// operators becomes one sparse operator — row and column indices of
    /// block `i` are shifted by the cumulative row/column counts of the
    /// blocks before it. Row order and within-row column order are
    /// preserved, so a sparse-dense product against the stacked matrix
    /// accumulates in exactly the same order as B separate products.
    pub fn block_diag(blocks: &[&CsrMatrix]) -> CsrMatrix {
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0usize);
        let mut nnz_offset = 0usize;
        let mut col_offset = 0u32;
        for block in blocks {
            indptr.extend(block.indptr[1..].iter().map(|&p| p + nnz_offset));
            indices.extend(block.indices.iter().map(|&c| c + col_offset));
            values.extend_from_slice(&block.values);
            nnz_offset += block.nnz();
            col_offset += block.cols as u32;
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// The `n x n` sparse identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Logical bytes across the three CSR arrays (row pointers, column
    /// indices, values) — bytes requested, not allocator capacity, so the
    /// value is a pure function of the sparsity pattern (see the `budget`
    /// crate).
    pub fn logical_bytes(&self) -> u64 {
        (self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Iterates over `(row, col, value)` of stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (self.indptr[r]..self.indptr[r + 1])
                .map(move |i| (r, self.indices[i] as usize, self.values[i]))
        })
    }

    /// Sparse × dense product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn spmm(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        self.spmm_into(rhs, &mut out);
        out
    }

    /// Sparse × dense product written into `out`, overwriting its contents
    /// (buffer-reuse variant of [`CsrMatrix::spmm`] for training hot paths).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or when `out` is not
    /// `rows(self) x cols(rhs)`.
    pub fn spmm_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.spmm_into_jobs(rhs, out, 1);
    }

    /// [`CsrMatrix::spmm`] with row-banded parallelism (see
    /// [`CsrMatrix::spmm_into_jobs`]).
    pub fn spmm_jobs(&self, rhs: &Matrix, jobs: usize) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        self.spmm_into_jobs(rhs, &mut out, jobs);
        out
    }

    /// [`CsrMatrix::spmm_into`] with the output rows partitioned across
    /// `jobs` scoped worker threads. Each thread owns a disjoint contiguous
    /// row band of `out` (sparse rows are row-exclusive in CSR), so the
    /// result is bit-identical for any `jobs` value.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or when `out` is not
    /// `rows(self) x cols(rhs)`.
    pub fn spmm_into_jobs(&self, rhs: &Matrix, out: &mut Matrix, jobs: usize) {
        assert_eq!(
            self.cols,
            rhs.rows(),
            "spmm inner dimensions: {}x{} * {}x{}",
            self.rows,
            self.cols,
            rhs.rows(),
            rhs.cols()
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols()),
            "spmm output shape: want {}x{}",
            self.rows,
            rhs.cols()
        );
        let f = rhs.cols();
        if self.rows == 0 || f == 0 {
            return; // no output elements at all
        }
        let jobs = jobs.max(1).min(self.rows);
        if jobs == 1 {
            self.spmm_rows(rhs.as_slice(), f, out.as_mut_slice(), 0);
            return;
        }
        let band = self.rows.div_ceil(jobs);
        let rhs_data = rhs.as_slice();
        std::thread::scope(|scope| {
            for (chunk_idx, out_band) in out.as_mut_slice().chunks_mut(band * f).enumerate() {
                let this = &*self;
                scope.spawn(move || {
                    this.spmm_rows(rhs_data, f, out_band, chunk_idx * band);
                });
            }
        });
    }

    /// Kernel shared by the serial and banded spmm paths: fills `out_band`
    /// with the product rows. Each destination row is zeroed right before
    /// its accumulation (while it is cache-hot), so `out_band` may hold
    /// stale contents on entry and no separate whole-matrix zeroing pass is
    /// needed; the per-element accumulation order is unchanged.
    fn spmm_rows(&self, rhs_data: &[f64], f: usize, out_band: &mut [f64], row0: usize) {
        // Register-resident accumulators for the common narrow widths (the
        // GNN feature/hidden sizes); bit-identical to the generic loop.
        match f {
            4 => return self.spmm_rows_w::<4>(rhs_data, out_band, row0),
            7 => return self.spmm_rows_w::<7>(rhs_data, out_band, row0),
            8 => return self.spmm_rows_w::<8>(rhs_data, out_band, row0),
            16 => return self.spmm_rows_w::<16>(rhs_data, out_band, row0),
            32 => return self.spmm_rows_w::<32>(rhs_data, out_band, row0),
            _ => {}
        }
        for (local, dst) in out_band.chunks_exact_mut(f).enumerate() {
            let r = row0 + local;
            dst.fill(0.0);
            for i in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[i] as usize;
                let v = self.values[i];
                let src = &rhs_data[c * f..(c + 1) * f];
                for (o, &x) in dst.iter_mut().zip(src) {
                    *o += v * x;
                }
            }
        }
    }

    /// [`CsrMatrix::spmm_rows`] specialized to a compile-time dense width
    /// `W`: the destination row accumulates in registers and is stored once.
    /// Per-element accumulation order (ascending nonzero index from 0.0) is
    /// unchanged, so results are bit-identical to the generic kernel.
    fn spmm_rows_w<const W: usize>(&self, rhs_data: &[f64], out_band: &mut [f64], row0: usize) {
        for (local, dst) in out_band.chunks_exact_mut(W).enumerate() {
            let r = row0 + local;
            let mut acc = [0.0f64; W];
            for i in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[i] as usize;
                let v = self.values[i];
                let src: &[f64; W] = rhs_data[c * W..(c + 1) * W].try_into().expect("W-wide row");
                for (o, &x) in acc.iter_mut().zip(src) {
                    *o += v * x;
                }
            }
            dst.copy_from_slice(&acc);
        }
    }

    /// Transpose (used for the backward pass of [`CsrMatrix::spmm`]).
    pub fn transpose(&self) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f64)> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Densifies (for tests and small matrices).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, out.get(r, c) + v);
        }
        out
    }

    /// Multiplies each row by a scalar (`diag(scale) * self`); used for
    /// normalized Laplacians.
    ///
    /// # Panics
    ///
    /// Panics if `scale.len() != rows`.
    pub fn scale_rows(&self, scale: &[f64]) -> CsrMatrix {
        assert_eq!(scale.len(), self.rows, "row scale length mismatch");
        let mut out = self.clone();
        for (r, &factor) in scale.iter().enumerate() {
            for i in out.indptr[r]..out.indptr[r + 1] {
                out.values[i] *= factor;
            }
        }
        out
    }

    /// Multiplies each column by a scalar (`self * diag(scale)`).
    ///
    /// # Panics
    ///
    /// Panics if `scale.len() != cols`.
    pub fn scale_cols(&self, scale: &[f64]) -> CsrMatrix {
        assert_eq!(scale.len(), self.cols, "col scale length mismatch");
        let mut out = self.clone();
        for i in 0..out.values.len() {
            out.values[i] *= scale[out.indices[i] as usize];
        }
        out
    }

    /// Row sums (out-degree when the matrix is an adjacency matrix).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.values[self.indptr[r]..self.indptr[r + 1]].iter().sum())
            .collect()
    }
}

impl fmt::Display for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csr {}x{} ({} nnz)", self.rows, self.cols, self.nnz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (1, 0, 3.0), (2, 2, 4.0), (0, 2, 1.0)])
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let s = example();
        let d = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(s.spmm(&d), s.to_dense().matmul(&d));
    }

    #[test]
    fn spmm_into_overwrites_stale_output() {
        let s = example();
        let d = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut out = Matrix::ones(3, 2);
        s.spmm_into(&d, &mut out);
        assert_eq!(out, s.spmm(&d));
    }

    #[test]
    fn duplicates_are_summed() {
        let s = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.to_dense().get(0, 0), 3.5);
    }

    #[test]
    fn transpose_matches_dense() {
        let s = example();
        assert_eq!(s.transpose().to_dense(), s.to_dense().transpose());
    }

    #[test]
    fn identity_spmm_is_noop() {
        let d = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(CsrMatrix::identity(3).spmm(&d), d);
    }

    #[test]
    fn empty_rows_are_fine() {
        let s = CsrMatrix::from_triplets(4, 4, &[(3, 0, 1.0)]);
        let d = Matrix::ones(4, 2);
        let out = s.spmm(&d);
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(3, 0), 1.0);
    }

    #[test]
    fn row_and_col_scaling() {
        let s = example();
        let scaled = s.scale_rows(&[2.0, 1.0, 0.5]);
        assert_eq!(scaled.to_dense().get(0, 1), 4.0);
        assert_eq!(scaled.to_dense().get(2, 2), 2.0);
        let cscaled = s.scale_cols(&[0.0, 1.0, 10.0]);
        assert_eq!(cscaled.to_dense().get(1, 0), 0.0);
        assert_eq!(cscaled.to_dense().get(0, 2), 10.0);
    }

    #[test]
    fn row_sums_match_dense() {
        let s = example();
        let dense = s.to_dense();
        for (r, sum) in s.row_sums().into_iter().enumerate() {
            assert_eq!(sum, dense.row(r).iter().sum::<f64>());
        }
    }

    #[test]
    fn display_mentions_nnz() {
        assert!(example().to_string().contains("4 nnz"));
    }

    #[test]
    fn block_diag_matches_dense_construction() {
        let a = example();
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 0, 5.0), (1, 1, -1.0)]);
        let d = CsrMatrix::block_diag(&[&a, &b]);
        assert_eq!(d.rows(), 5);
        assert_eq!(d.cols(), 5);
        assert_eq!(d.nnz(), a.nnz() + b.nnz());
        let dense = d.to_dense();
        for (r, c, v) in a.iter() {
            assert_eq!(dense.get(r, c), v);
        }
        for (r, c, v) in b.iter() {
            assert_eq!(dense.get(3 + r, 3 + c), v);
        }
        // Off-diagonal blocks are structurally zero.
        assert_eq!(dense.get(0, 4), 0.0);
        assert_eq!(dense.get(4, 0), 0.0);
    }

    #[test]
    fn block_diag_spmm_equals_per_block_spmm() {
        let a = example();
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 0.5), (1, 1, 1.5)]);
        let d = CsrMatrix::block_diag(&[&a, &b]);
        let xa = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5], &[0.0, 3.0]]);
        let xb = Matrix::from_rows(&[&[4.0, 1.0], &[-2.0, 2.0]]);
        let mut stacked = xa.as_slice().to_vec();
        stacked.extend_from_slice(xb.as_slice());
        let out = d.spmm(&Matrix::from_vec(5, 2, stacked));
        let (oa, ob) = (a.spmm(&xa), b.spmm(&xb));
        for r in 0..3 {
            assert_eq!(out.row(r), oa.row(r));
        }
        for r in 0..2 {
            assert_eq!(out.row(3 + r), ob.row(r));
        }
    }

    #[test]
    fn block_diag_of_nothing_is_empty() {
        let d = CsrMatrix::block_diag(&[]);
        assert_eq!((d.rows(), d.cols(), d.nnz()), (0, 0, 0));
    }

    #[test]
    fn spmm_jobs_is_bit_identical_to_serial() {
        let s = CsrMatrix::from_triplets(
            7,
            7,
            &[
                (0, 1, 1.5),
                (1, 0, -2.0),
                (2, 2, 0.25),
                (3, 6, 3.0),
                (5, 0, 1.0),
                (5, 5, -0.5),
                (6, 4, 2.0),
            ],
        );
        let d = Matrix::from_fn(7, 3, |r, c| ((r * 3 + c) % 5) as f64 - 2.0);
        let serial = s.spmm(&d);
        for jobs in [1, 2, 3, 16] {
            assert_eq!(s.spmm_jobs(&d, jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn spmm_into_degenerate_shapes_are_well_defined() {
        // 0xk sparse * kx0 dense -> 0x0.
        let s = CsrMatrix::from_triplets(0, 3, &[]);
        let mut out = Matrix::zeros(0, 0);
        s.spmm_into(&Matrix::zeros(3, 0), &mut out);
        assert_eq!(out.shape(), (0, 0));
        // n x 0 sparse * 0 x f dense -> n x f zeros, overwriting stale data.
        let s = CsrMatrix::from_triplets(2, 0, &[]);
        let mut out = Matrix::ones(2, 3);
        s.spmm_into(&Matrix::zeros(0, 3), &mut out);
        assert_eq!(out, Matrix::zeros(2, 3));
        // 1x1 * 1x1.
        let s = CsrMatrix::from_triplets(1, 1, &[(0, 0, 2.0)]);
        let mut out = Matrix::scalar(9.0);
        s.spmm_into(&Matrix::scalar(3.5), &mut out);
        assert_eq!(out, Matrix::scalar(7.0));
    }

    #[test]
    #[should_panic(expected = "spmm inner dimensions")]
    fn spmm_into_rejects_zero_dim_mismatch() {
        let s = CsrMatrix::from_triplets(0, 3, &[]);
        let mut out = Matrix::zeros(0, 0);
        s.spmm_into(&Matrix::zeros(4, 0), &mut out);
    }
}
