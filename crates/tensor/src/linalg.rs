//! Direct linear solvers for the closed-form regression baselines.

use crate::matrix::Matrix;
use std::fmt;

/// Error produced by the direct solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The system matrix is singular (or numerically so).
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular => f.write_str("matrix is singular"),
            LinalgError::NotPositiveDefinite => f.write_str("matrix is not positive definite"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] when a pivot vanishes.
///
/// # Panics
///
/// Panics if `A` is not square or `b.len() != n`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve expects a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    // Augmented working copy.
    let mut m: Vec<f64> = Vec::with_capacity(n * (n + 1));
    for (i, &bi) in b.iter().enumerate() {
        m.extend_from_slice(a.row(i));
        m.push(bi);
    }
    let w = n + 1;
    for col in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m[r * w + col].abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN pivots"))
            .expect("non-empty range");
        if pivot_val < 1e-12 {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            for k in 0..w {
                m.swap(col * w + k, pivot_row * w + k);
            }
        }
        let pivot = m[col * w + col];
        for r in (col + 1)..n {
            let factor = m[r * w + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..w {
                m[r * w + k] -= factor * m[col * w + k];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = m[r * w + n];
        for k in (r + 1)..n {
            acc -= m[r * w + k] * x[k];
        }
        x[r] = acc / m[r * w + r];
    }
    Ok(x)
}

/// Solves the symmetric positive-definite system `A x = b` by Cholesky
/// factorization (used for ridge/normal-equation fits).
///
/// # Errors
///
/// Returns [`LinalgError::NotPositiveDefinite`] when a diagonal pivot is
/// non-positive.
///
/// # Panics
///
/// Panics if `A` is not square or `b.len() != n`.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "cholesky expects a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    // Lower-triangular factor L with A = L L^T.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward solve L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = b[i];
        for k in 0..i {
            acc -= l[i * n + k] * y[k];
        }
        y[i] = acc / l[i * n + i];
    }
    // Back solve L^T x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for k in (i + 1)..n {
            acc -= l[k * n + i] * x[k];
        }
        x[i] = acc / l[i * n + i];
    }
    Ok(x)
}

/// Least-squares solution of `X w = y` via the (ridge-stabilized) normal
/// equations `(X^T X + eps I) w = X^T y`.
///
/// # Errors
///
/// Returns an error when the normal matrix is not solvable even after
/// the `eps` ridge (pathological inputs).
pub fn lstsq(x: &Matrix, y: &[f64], eps: f64) -> Result<Vec<f64>, LinalgError> {
    assert_eq!(x.rows(), y.len(), "row count mismatch");
    let xt = x.transpose();
    let mut xtx = xt.matmul(x);
    for i in 0..xtx.rows() {
        let v = xtx.get(i, i);
        xtx.set(i, i, v + eps);
    }
    let xty: Vec<f64> = (0..xt.rows())
        .map(|i| xt.row(i).iter().zip(y).map(|(&a, &b)| a * b).sum::<f64>())
        .collect();
    cholesky_solve(&xtx, &xty).or_else(|_| solve(&xtx, &xty))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn cholesky_matches_gaussian_on_spd() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]);
        let b = [1.0, -2.0, 0.5];
        let x1 = cholesky_solve(&a, &b).unwrap();
        let x2 = solve(&a, &b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(
            cholesky_solve(&a, &[1.0, 1.0]),
            Err(LinalgError::NotPositiveDefinite)
        );
    }

    #[test]
    fn lstsq_recovers_planted_weights() {
        // y = 2 x0 - 3 x1 + 0.5 x2 on a deterministic design.
        let rows = 12;
        let x = Matrix::from_fn(rows, 3, |r, c| ((r * 3 + c * 7) % 11) as f64 / 11.0);
        let w_true = [2.0, -3.0, 0.5];
        let y: Vec<f64> = (0..rows)
            .map(|r| {
                x.row(r)
                    .iter()
                    .zip(&w_true)
                    .map(|(&a, &b)| a * b)
                    .sum::<f64>()
            })
            .collect();
        let w = lstsq(&x, &y, 1e-10).unwrap();
        for (est, truth) in w.iter().zip(&w_true) {
            assert!((est - truth).abs() < 1e-6, "{est} vs {truth}");
        }
    }
}
