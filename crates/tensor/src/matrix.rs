use std::fmt;
use std::ops::Range;

/// Column-tile width for the blocked matmul kernel: 256 columns keep the
/// active output/right-hand rows within L1 while the k loop streams the
/// left operand. Tiling only reorders independent output columns, so
/// results stay bit-identical to the untiled loop (each element still
/// accumulates in ascending-k order).
const MATMUL_COL_TILE: usize = 256;

/// Shared matmul row-band kernel: `out = a_rows * b`, where `a_rows` holds
/// whole rows of the left operand (row-major, `ak` columns), `b` is the full
/// right operand (`bc` columns) and `out` holds the matching output rows.
/// Every output element is written exactly once (accumulation happens in a
/// stack scratch tile), so `out` may hold arbitrary stale contents on entry.
/// The per-element accumulation order is unchanged from the read-modify-write
/// form — ascending `k`, zero terms skipped — so results are bit-identical.
fn matmul_rows(a_rows: &[f64], ak: usize, b: &[f64], bc: usize, out: &mut [f64]) {
    debug_assert!(ak > 0 && bc > 0, "degenerate shapes handled by callers");
    // The GNN layers multiply tall-skinny matrices whose widths are small
    // compile-time-friendly constants (features and hidden sizes); a
    // register-resident accumulator is worth ~3x over the stack tile there.
    match bc {
        1 => return matmul_rows_w::<1>(a_rows, ak, b, out),
        2 => return matmul_rows_w::<2>(a_rows, ak, b, out),
        4 => return matmul_rows_w::<4>(a_rows, ak, b, out),
        7 => return matmul_rows_w::<7>(a_rows, ak, b, out),
        8 => return matmul_rows_w::<8>(a_rows, ak, b, out),
        16 => return matmul_rows_w::<16>(a_rows, ak, b, out),
        32 => return matmul_rows_w::<32>(a_rows, ak, b, out),
        _ => {}
    }
    let mut scratch = [0.0f64; MATMUL_COL_TILE];
    for tile in (0..bc).step_by(MATMUL_COL_TILE) {
        let width = (bc - tile).min(MATMUL_COL_TILE);
        let acc = &mut scratch[..width];
        for (a_row, out_row) in a_rows.chunks_exact(ak).zip(out.chunks_exact_mut(bc)) {
            acc.fill(0.0);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_tile = &b[k * bc + tile..k * bc + tile + width];
                for (o, &bv) in acc.iter_mut().zip(b_tile) {
                    *o += a * bv;
                }
            }
            out_row[tile..tile + width].copy_from_slice(acc);
        }
    }
}

/// [`matmul_rows`] specialized to a compile-time column count `W`: the
/// accumulator lives in registers instead of a stack slice, and rows are
/// processed in pairs so the independent FMA chains hide each other's
/// latency. Neither change touches any output element's accumulation order
/// — still ascending `k`, zero terms skipped, starting from 0.0 — so the
/// result is bit-identical to the generic kernel.
fn matmul_rows_w<const W: usize>(a_rows: &[f64], ak: usize, b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a_rows.len() / ak * W, out.len());
    let mut a_pairs = a_rows.chunks_exact(2 * ak);
    let mut o_pairs = out.chunks_exact_mut(2 * W);
    for (a2, o2) in (&mut a_pairs).zip(&mut o_pairs) {
        let (a0, a1) = a2.split_at(ak);
        let mut acc0 = [0.0f64; W];
        let mut acc1 = [0.0f64; W];
        for k in 0..ak {
            let b_row: &[f64; W] = b[k * W..(k + 1) * W].try_into().expect("W-wide row");
            let (av0, av1) = (a0[k], a1[k]);
            if av0 != 0.0 {
                for (o, &bv) in acc0.iter_mut().zip(b_row) {
                    *o += av0 * bv;
                }
            }
            if av1 != 0.0 {
                for (o, &bv) in acc1.iter_mut().zip(b_row) {
                    *o += av1 * bv;
                }
            }
        }
        let (o0, o1) = o2.split_at_mut(W);
        o0.copy_from_slice(&acc0);
        o1.copy_from_slice(&acc1);
    }
    let a_rem = a_pairs.remainder();
    let o_rem = o_pairs.into_remainder();
    for (a_row, out_row) in a_rem.chunks_exact(ak).zip(o_rem.chunks_exact_mut(W)) {
        let mut acc = [0.0f64; W];
        for (k, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let b_row: &[f64; W] = b[k * W..(k + 1) * W].try_into().expect("W-wide row");
            for (o, &bv) in acc.iter_mut().zip(b_row) {
                *o += a * bv;
            }
        }
        out_row.copy_from_slice(&acc);
    }
}

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// A 1x1 matrix holding `value`.
    pub fn scalar(value: f64) -> Self {
        Matrix::from_vec(1, 1, vec![value])
    }

    /// A column vector (n x 1) from a slice.
    pub fn column(values: &[f64]) -> Self {
        Matrix::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Logical bytes held by the element buffer: `rows * cols * 8`. Bytes
    /// *requested*, never allocator capacity or overhead, so the value is a
    /// pure function of the matrix shape — machine-independent by
    /// construction (see the `budget` crate).
    pub fn logical_bytes(&self) -> u64 {
        self.data.len() as u64 * std::mem::size_of::<f64>() as u64
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// The flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning its flat row-major buffer (the
    /// inverse of [`Matrix::from_vec`]; lets a [`crate::BufferPool`]
    /// recycle the allocation).
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Mutable flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self * rhs` written into `out`, overwriting its
    /// contents. Reusing one output buffer across repeated products avoids
    /// an allocation per call on training hot paths.
    ///
    /// Degenerate shapes (zero rows, zero columns, empty inner dimension)
    /// are well-defined: the asserts reject any mismatched combination with
    /// a typed message, and every matching combination yields the
    /// mathematically correct (possibly empty or all-zero) product. Output
    /// aliasing is impossible by construction: `rhs: &Matrix` and
    /// `out: &mut Matrix` cannot refer to the same allocation.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or when `out` is not
    /// `rows(self) x cols(rhs)`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_into_jobs(rhs, out, 1);
    }

    /// [`Matrix::matmul_into`] with the output rows partitioned across
    /// `jobs` scoped worker threads. Each thread owns a disjoint contiguous
    /// row band of `out`, so the result is bit-identical for any `jobs`
    /// value (the per-element accumulation order never changes).
    ///
    /// # Panics
    ///
    /// Same shape panics as [`Matrix::matmul_into`].
    pub fn matmul_into_jobs(&self, rhs: &Matrix, out: &mut Matrix, jobs: usize) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul inner dimensions: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul output shape: want {}x{}",
            self.rows,
            rhs.cols
        );
        let (ak, bc) = (self.cols, rhs.cols);
        if self.rows == 0 || bc == 0 {
            return; // no output elements at all
        }
        if ak == 0 {
            out.data.fill(0.0); // empty inner dimension: all-zero product
            return;
        }
        let jobs = jobs.max(1).min(self.rows);
        if jobs == 1 {
            matmul_rows(&self.data, ak, &rhs.data, bc, &mut out.data);
            return;
        }
        let band = self.rows.div_ceil(jobs);
        std::thread::scope(|scope| {
            for (a_band, out_band) in self
                .data
                .chunks(band * ak)
                .zip(out.data.chunks_mut(band * bc))
            {
                let b = &rhs.data;
                scope.spawn(move || matmul_rows(a_band, ak, b, bc, out_band));
            }
        });
    }

    /// [`Matrix::matmul`] with row-banded parallelism (see
    /// [`Matrix::matmul_into_jobs`]).
    pub fn matmul_jobs(&self, rhs: &Matrix, jobs: usize) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into_jobs(rhs, &mut out, jobs);
        out
    }

    /// `self * rhs^T` (the backward pass of a matmul needs `dC * B^T`,
    /// where `B` is a small parameter block).
    ///
    /// # Panics
    ///
    /// Panics unless `cols(self) == cols(rhs)`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        self.matmul_nt_jobs(rhs, 1)
    }

    /// [`Matrix::matmul_nt`] with the output rows partitioned across `jobs`
    /// scoped worker threads; bit-identical for any `jobs` value (each
    /// output element is one independent dot product).
    ///
    /// # Panics
    ///
    /// Panics unless `cols(self) == cols(rhs)`.
    pub fn matmul_nt_jobs(&self, rhs: &Matrix, jobs: usize) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_nt_into_jobs(rhs, &mut out, jobs);
        out
    }

    /// [`Matrix::matmul_nt_jobs`] written into `out`, overwriting its
    /// contents (buffer-reuse variant for training hot paths).
    ///
    /// # Panics
    ///
    /// Panics unless `cols(self) == cols(rhs)` and `out` is
    /// `rows(self) x rows(rhs)`.
    pub fn matmul_nt_into_jobs(&self, rhs: &Matrix, out: &mut Matrix, jobs: usize) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt inner dimensions: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.rows),
            "matmul_nt output shape: want {}x{}",
            self.rows,
            rhs.rows
        );
        if self.rows == 0 || rhs.rows == 0 {
            return; // no output elements at all
        }
        if self.cols == 0 {
            out.data.fill(0.0); // every dot product is empty
            return;
        }
        // Materializing rhs^T costs one pass over rhs — in the backward
        // passes that call this, rhs is a small parameter block — and lets
        // the product run through the register-blocked row kernel instead
        // of latency-bound scalar dot products. Each output element still
        // accumulates in ascending-k order from 0.0.
        let bt = rhs.transpose();
        let (ak, bc) = (self.cols, rhs.rows);
        let jobs = jobs.max(1).min(self.rows);
        if jobs == 1 {
            matmul_rows(&self.data, ak, &bt.data, bc, &mut out.data);
            return;
        }
        let band = self.rows.div_ceil(jobs);
        std::thread::scope(|scope| {
            for (a_band, out_band) in self
                .data
                .chunks(band * ak)
                .zip(out.data.chunks_mut(band * bc))
            {
                let b = &bt.data;
                scope.spawn(move || matmul_rows(a_band, ak, b, bc, out_band));
            }
        });
    }

    /// `self^T * rhs` without materializing the transpose (the backward
    /// pass of a matmul needs `A^T * dC`).
    ///
    /// # Panics
    ///
    /// Panics unless `rows(self) == rows(rhs)`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn inner dimensions: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        // Walk self row-major: row k of self contributes a[k][i] * rhs[k][j]
        // to out[i][j] — sequential access on all three buffers.
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self[rows]^T * rhs[rows]` — the [`Matrix::matmul_tn`] product
    /// restricted to one contiguous row segment of both operands. The
    /// batched backward pass uses this to reproduce, segment by segment,
    /// exactly the per-instance `A_i^T * dC_i` products (same ascending-k
    /// accumulation within the segment, so the result is bit-identical to
    /// slicing the rows out first).
    ///
    /// # Panics
    ///
    /// Panics unless `rows(self) == rows(rhs)` and `rows` is within range.
    pub fn matmul_tn_rows(&self, rhs: &Matrix, rows: Range<usize>) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn inner dimensions: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert!(
            rows.start <= rows.end && rows.end <= self.rows,
            "matmul_tn_rows segment {rows:?} out of range for {} rows",
            self.rows
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a * b)
    }

    /// Element-wise combination of two equally shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, rhs: &Matrix, mut f: impl FnMut(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "element-wise shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// [`Matrix::zip`] written into `out`, overwriting its contents
    /// (buffer-reuse variant for training hot paths).
    ///
    /// # Panics
    ///
    /// Panics unless `self`, `rhs` and `out` all share one shape.
    pub fn zip_into(&self, rhs: &Matrix, out: &mut Matrix, mut f: impl FnMut(f64, f64) -> f64) {
        assert_eq!(self.shape(), rhs.shape(), "element-wise shape mismatch");
        assert_eq!(
            self.shape(),
            out.shape(),
            "element-wise output shape mismatch"
        );
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = f(a, b);
        }
    }

    /// Element-wise map.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// [`Matrix::map`] written into `out`, overwriting its contents
    /// (buffer-reuse variant for training hot paths).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch with `out`.
    pub fn map_into(&self, out: &mut Matrix, mut f: impl FnMut(f64) -> f64) {
        assert_eq!(
            self.shape(),
            out.shape(),
            "element-wise output shape mismatch"
        );
        for (o, &a) in out.data.iter_mut().zip(&self.data) {
            *o = f(a);
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, c: f64) -> Matrix {
        self.map(|a| a * c)
    }

    /// In-place `self += c * rhs` (the accumulation primitive of backprop).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, c: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += c * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Column sums as a `1 x cols` row vector.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Row sums as a `rows x 1` column vector.
    pub fn row_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Largest absolute element (0.0 for an empty matrix). NaN entries
    /// propagate: the result is NaN when any element is NaN, so a magnitude
    /// check cannot mistake a NaN-poisoned tensor for a healthy one
    /// (`f64::max` alone would silently discard NaN operands).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &a| {
            let a = a.abs();
            // `a > m` is false for NaN on either side, so NaN is sticky.
            if a > m || a.is_nan() {
                a
            } else {
                m
            }
        })
    }

    /// Whether every element is finite (no NaN or ±inf). True for an empty
    /// matrix. This is the divergence guard primitive: losses and gradients
    /// are checked before they can poison parameters.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row: Vec<String> = self
                .row(r)
                .iter()
                .take(8)
                .map(|v| format!("{v:>9.4}"))
                .collect();
            writeln!(f, "  {}", row.join(" "))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_and_reductions() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::ones(2, 2);
        assert_eq!(a.add(&b).sum(), 14.0);
        assert_eq!(a.sub(&b).sum(), 6.0);
        assert_eq!(a.hadamard(&a).sum(), 30.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.col_sums(), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(a.row_sums(), Matrix::column(&[3.0, 7.0]));
        assert_eq!(a.scale(2.0).get(1, 1), 8.0);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.norm() - 30.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, -1.0], &[0.5, 0.0, 3.0]]);
        let b = Matrix::from_rows(&[&[2.0, 1.0], &[-1.0, 0.5], &[4.0, -2.0]]);
        let mut out = Matrix::ones(2, 2); // stale contents must be overwritten
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn matmul_nt_tn_match_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[3.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.5, 1.5, -1.0], &[2.0, -0.5, 1.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
        let c = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let d = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(c.matmul_tn(&d), c.transpose().matmul(&d));
    }

    #[test]
    fn matmul_into_degenerate_shapes_are_well_defined() {
        // 0xk * kx0 -> 0x0: legal, empty.
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 0);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.shape(), (0, 0));
        // mxk with k=0: the empty inner dimension yields an all-zero product
        // and must overwrite stale output contents.
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 3);
        let mut out = Matrix::ones(2, 3);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, Matrix::zeros(2, 3));
        // 1x1 * 1x1 -> 1x1.
        let a = Matrix::scalar(3.0);
        let b = Matrix::scalar(-2.0);
        let mut out = Matrix::scalar(99.0);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, Matrix::scalar(-6.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_into_rejects_zero_dim_mismatch() {
        // Degenerate dims must not slip past the shape check.
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(4, 0);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    fn matmul_nt_tn_degenerate_shapes() {
        // (0x2) * (3x2)^T -> 0x3 and the k=0 empty-dot case -> zeros.
        assert_eq!(
            Matrix::zeros(0, 2).matmul_nt(&Matrix::ones(3, 2)).shape(),
            (0, 3)
        );
        assert_eq!(
            Matrix::ones(2, 0).matmul_nt(&Matrix::ones(3, 0)),
            Matrix::zeros(2, 3)
        );
        // (0x2)^T * 0x3 -> 2x3 zeros; (2x0)^T * 2x3 -> 0x3 empty.
        assert_eq!(
            Matrix::zeros(0, 2).matmul_tn(&Matrix::zeros(0, 3)),
            Matrix::zeros(2, 3)
        );
        assert_eq!(
            Matrix::ones(2, 0).matmul_tn(&Matrix::ones(2, 3)).shape(),
            (0, 3)
        );
        // 1x1 cases.
        assert_eq!(
            Matrix::scalar(3.0).matmul_nt(&Matrix::scalar(4.0)),
            Matrix::scalar(12.0)
        );
        assert_eq!(
            Matrix::scalar(3.0).matmul_tn(&Matrix::scalar(4.0)),
            Matrix::scalar(12.0)
        );
    }

    #[test]
    #[should_panic(expected = "matmul_nt inner dimensions")]
    fn matmul_nt_rejects_zero_dim_mismatch() {
        let _ = Matrix::zeros(2, 0).matmul_nt(&Matrix::zeros(3, 1));
    }

    #[test]
    #[should_panic(expected = "matmul_tn inner dimensions")]
    fn matmul_tn_rejects_zero_dim_mismatch() {
        let _ = Matrix::zeros(0, 2).matmul_tn(&Matrix::zeros(1, 3));
    }

    #[test]
    fn matmul_jobs_is_bit_identical_to_serial() {
        let a = Matrix::from_fn(17, 13, |r, c| ((r * 31 + c * 7) % 11) as f64 - 5.0);
        let b = Matrix::from_fn(13, 9, |r, c| ((r * 13 + c * 3) % 7) as f64 - 3.0);
        let serial = a.matmul(&b);
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(a.matmul_jobs(&b, jobs), serial, "jobs={jobs}");
            assert_eq!(
                a.matmul_nt_jobs(&b.transpose(), jobs),
                serial,
                "nt jobs={jobs}"
            );
        }
    }

    #[test]
    fn matmul_tn_rows_matches_sliced_product() {
        let a = Matrix::from_fn(10, 4, |r, c| ((r * 5 + c) % 9) as f64 - 4.0);
        let b = Matrix::from_fn(10, 3, |r, c| ((r * 7 + c * 2) % 5) as f64 - 2.0);
        // Whole range == matmul_tn; sub-range == matmul_tn of the row slice.
        assert_eq!(a.matmul_tn_rows(&b, 0..10), a.matmul_tn(&b));
        let sub = |m: &Matrix, lo: usize, hi: usize| {
            Matrix::from_fn(hi - lo, m.cols(), |r, c| m.get(lo + r, c))
        };
        assert_eq!(
            a.matmul_tn_rows(&b, 3..7),
            sub(&a, 3, 7).matmul_tn(&sub(&b, 3, 7))
        );
        assert_eq!(a.matmul_tn_rows(&b, 5..5), Matrix::zeros(4, 3));
    }

    #[test]
    #[should_panic(expected = "matmul output shape")]
    fn matmul_into_rejects_bad_output_shape() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 3);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    fn max_abs_propagates_nan() {
        let healthy = Matrix::from_rows(&[&[1.0, -5.0], &[2.0, 0.0]]);
        assert_eq!(healthy.max_abs(), 5.0);
        assert!(healthy.is_finite());
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut m = healthy.clone();
            m.set(0, 1, poison);
            assert!(!m.is_finite(), "{poison} must not look healthy");
        }
        // NaN anywhere — first, middle, last — surfaces in max_abs.
        for idx in [(0, 0), (1, 0), (1, 1)] {
            let mut m = healthy.clone();
            m.set(idx.0, idx.1, f64::NAN);
            assert!(m.max_abs().is_nan(), "NaN at {idx:?} was masked");
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.axpy(2.0, &Matrix::ones(2, 2));
        a.axpy(-0.5, &Matrix::identity(2));
        assert_eq!(a.get(0, 0), 1.5);
        assert_eq!(a.get(0, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn display_is_never_empty() {
        let a = Matrix::zeros(1, 1);
        assert!(!a.to_string().is_empty());
    }
}
