use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// A 1x1 matrix holding `value`.
    pub fn scalar(value: f64) -> Self {
        Matrix::from_vec(1, 1, vec![value])
    }

    /// A column vector (n x 1) from a slice.
    pub fn column(values: &[f64]) -> Self {
        Matrix::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// The flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self * rhs` written into `out`, overwriting its
    /// contents. Reusing one output buffer across repeated products avoids
    /// an allocation per call on training hot paths.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or when `out` is not
    /// `rows(self) x cols(rhs)`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul inner dimensions: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul output shape: want {}x{}",
            self.rows,
            rhs.cols
        );
        out.data.fill(0.0);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// `self * rhs^T` without materializing the transpose (the backward
    /// pass of a matmul needs `dC * B^T`; building `B^T` would allocate a
    /// full copy of `B` per training step).
    ///
    /// # Panics
    ///
    /// Panics unless `cols(self) == cols(rhs)`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt inner dimensions: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.rows..(i + 1) * rhs.rows];
            for (o, b_row) in out_row.iter_mut().zip(rhs.data.chunks_exact(rhs.cols)) {
                *o = a_row.iter().zip(b_row).map(|(&a, &b)| a * b).sum();
            }
        }
        out
    }

    /// `self^T * rhs` without materializing the transpose (the backward
    /// pass of a matmul needs `A^T * dC`).
    ///
    /// # Panics
    ///
    /// Panics unless `rows(self) == rows(rhs)`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn inner dimensions: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        // Walk self row-major: row k of self contributes a[k][i] * rhs[k][j]
        // to out[i][j] — sequential access on all three buffers.
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a * b)
    }

    /// Element-wise combination of two equally shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, rhs: &Matrix, mut f: impl FnMut(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "element-wise shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise map.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, c: f64) -> Matrix {
        self.map(|a| a * c)
    }

    /// In-place `self += c * rhs` (the accumulation primitive of backprop).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, c: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += c * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Column sums as a `1 x cols` row vector.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Row sums as a `rows x 1` column vector.
    pub fn row_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Largest absolute element (0.0 for an empty matrix). NaN entries
    /// propagate: the result is NaN when any element is NaN, so a magnitude
    /// check cannot mistake a NaN-poisoned tensor for a healthy one
    /// (`f64::max` alone would silently discard NaN operands).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &a| {
            let a = a.abs();
            // `a > m` is false for NaN on either side, so NaN is sticky.
            if a > m || a.is_nan() {
                a
            } else {
                m
            }
        })
    }

    /// Whether every element is finite (no NaN or ±inf). True for an empty
    /// matrix. This is the divergence guard primitive: losses and gradients
    /// are checked before they can poison parameters.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row: Vec<String> = self
                .row(r)
                .iter()
                .take(8)
                .map(|v| format!("{v:>9.4}"))
                .collect();
            writeln!(f, "  {}", row.join(" "))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_and_reductions() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::ones(2, 2);
        assert_eq!(a.add(&b).sum(), 14.0);
        assert_eq!(a.sub(&b).sum(), 6.0);
        assert_eq!(a.hadamard(&a).sum(), 30.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.col_sums(), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(a.row_sums(), Matrix::column(&[3.0, 7.0]));
        assert_eq!(a.scale(2.0).get(1, 1), 8.0);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.norm() - 30.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, -1.0], &[0.5, 0.0, 3.0]]);
        let b = Matrix::from_rows(&[&[2.0, 1.0], &[-1.0, 0.5], &[4.0, -2.0]]);
        let mut out = Matrix::ones(2, 2); // stale contents must be overwritten
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn matmul_nt_tn_match_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[3.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.5, 1.5, -1.0], &[2.0, -0.5, 1.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
        let c = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let d = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(c.matmul_tn(&d), c.transpose().matmul(&d));
    }

    #[test]
    #[should_panic(expected = "matmul output shape")]
    fn matmul_into_rejects_bad_output_shape() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 3);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    fn max_abs_propagates_nan() {
        let healthy = Matrix::from_rows(&[&[1.0, -5.0], &[2.0, 0.0]]);
        assert_eq!(healthy.max_abs(), 5.0);
        assert!(healthy.is_finite());
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut m = healthy.clone();
            m.set(0, 1, poison);
            assert!(!m.is_finite(), "{poison} must not look healthy");
        }
        // NaN anywhere — first, middle, last — surfaces in max_abs.
        for idx in [(0, 0), (1, 0), (1, 1)] {
            let mut m = healthy.clone();
            m.set(idx.0, idx.1, f64::NAN);
            assert!(m.max_abs().is_nan(), "NaN at {idx:?} was masked");
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.axpy(2.0, &Matrix::ones(2, 2));
        a.axpy(-0.5, &Matrix::identity(2));
        assert_eq!(a.get(0, 0), 1.5);
        assert_eq!(a.get(0, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn display_is_never_empty() {
        let a = Matrix::zeros(1, 1);
        assert!(!a.to_string().is_empty());
    }
}
