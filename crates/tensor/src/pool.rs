//! A free-list of `f64` buffers recycled across autodiff tapes.
//!
//! Training rebuilds a [`Tape`](crate::Tape) every mini-batch, and each tape
//! holds a few dozen large node values and gradients that are all freed
//! together when the tape is dropped. Under glibc that allocation pattern —
//! many large buffers live at once, released in bulk — degenerates into
//! repeated `mmap`/`munmap` traffic, and the page faults on first touch cost
//! several times more than the arithmetic of the ops themselves. A
//! [`BufferPool`] breaks the cycle: a finished tape surrenders every buffer
//! back to the pool ([`Tape::into_pool`](crate::Tape::into_pool)) and the
//! next tape allocates from it ([`Tape::with_pool`](crate::Tape::with_pool)),
//! so steady-state training touches no allocator at all on the hot path.
//!
//! Pooling only changes where buffers come from, never what is written into
//! them — results are bit-identical with and without a pool.

use crate::Matrix;

/// Buffers below this element count are not worth pooling: small
/// allocations are served from the allocator's thread cache anyway, and
/// every tape produces a handful of scalars and bias rows that would
/// otherwise accumulate in the free list forever (each `take` scan then
/// degrades linearly with that garbage).
const MIN_POOLED_ELEMS: usize = 1024;

/// Hard cap on held buffers — a leak backstop, generously above the live
/// buffer count of one training tape.
const MAX_POOLED_BUFFERS: usize = 256;

/// A recycling free-list of flat `f64` buffers (see the [module
/// docs](self)).
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<f64>>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Number of buffers currently held.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Whether the pool holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Logical bytes held in the free list, each buffer counted at its last
    /// requested length (not its capacity) — deterministic across machines
    /// and allocators (see the `budget` crate).
    pub fn logical_bytes(&self) -> u64 {
        self.free
            .iter()
            .map(|b| b.len() as u64 * std::mem::size_of::<f64>() as u64)
            .sum()
    }

    /// Takes a buffer of exactly `len` elements, reusing the smallest held
    /// buffer whose capacity suffices (best fit). The contents are
    /// unspecified — every element the caller exposes must be written
    /// first. Use [`BufferPool::zeros`] when the consumer accumulates.
    fn take(&mut self, len: usize) -> Vec<f64> {
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, buf) in self.free.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let mut buf = self.free.swap_remove(i);
                // Shrinking never touches memory; growing within capacity
                // only writes the tail gap. Stale leading values are fine by
                // the contract above.
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// A `rows x cols` matrix whose contents are unspecified stale values;
    /// the caller must overwrite every element (write-once kernels like
    /// [`Matrix::matmul_into`](crate::Matrix::matmul_into) do).
    pub fn alloc(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take(rows * cols))
    }

    /// A `rows x cols` all-zero matrix from the pool (for consumers that
    /// accumulate rather than overwrite).
    pub fn zeros(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut buf = self.take(rows * cols);
        buf.fill(0.0);
        Matrix::from_vec(rows, cols, buf)
    }

    /// Returns a matrix's buffer to the pool for reuse. Small buffers (and
    /// anything beyond the pool's cap) are dropped instead of held — see
    /// [`MIN_POOLED_ELEMS`]; retaining them would grow the free list without
    /// bound as tapes surrender scalars the next tape never asks for.
    pub fn absorb(&mut self, m: Matrix) {
        let buf = m.into_vec();
        if buf.capacity() >= MIN_POOLED_ELEMS && self.free.len() < MAX_POOLED_BUFFERS {
            self.free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_reuses_absorbed_buffers() {
        let mut pool = BufferPool::new();
        pool.absorb(Matrix::zeros(64, 32));
        let m = pool.alloc(64, 32);
        assert_eq!(m.shape(), (64, 32));
        assert!(pool.is_empty(), "the held buffer was reused");
    }

    #[test]
    fn best_fit_prefers_the_smallest_sufficient_buffer() {
        let mut pool = BufferPool::new();
        pool.absorb(Matrix::zeros(4096, 1));
        pool.absorb(Matrix::zeros(1024, 1));
        let m = pool.alloc(1024, 1);
        assert_eq!(m.shape(), (1024, 1));
        // The 4096-element buffer is still available for a larger request.
        let big = pool.alloc(2048, 2);
        assert_eq!(big.shape(), (2048, 2));
        assert!(pool.is_empty());
    }

    #[test]
    fn zeros_are_zero_even_from_a_dirty_buffer() {
        let mut pool = BufferPool::new();
        pool.absorb(Matrix::from_fn(32, 32, |r, c| (r * 32 + c) as f64));
        let z = pool.zeros(32, 32);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn too_small_requests_leave_larger_buffers_alone() {
        let mut pool = BufferPool::new();
        pool.absorb(Matrix::zeros(32, 32));
        let m = pool.alloc(64, 64);
        assert_eq!(m.shape(), (64, 64));
        assert_eq!(pool.len(), 1, "the 32x32 buffer stays pooled");
    }

    #[test]
    fn logical_bytes_track_held_buffers() {
        let mut pool = BufferPool::new();
        assert_eq!(pool.logical_bytes(), 0);
        pool.absorb(Matrix::zeros(64, 32));
        assert_eq!(pool.logical_bytes(), 64 * 32 * 8);
        let taken = pool.alloc(64, 32);
        assert_eq!(pool.logical_bytes(), 0);
        assert_eq!(taken.logical_bytes(), 64 * 32 * 8);
    }

    #[test]
    fn small_buffers_are_not_retained() {
        // Scalars and bias rows churn through every tape; holding them
        // would grow the free list without bound (and degrade every scan).
        let mut pool = BufferPool::new();
        for _ in 0..100 {
            pool.absorb(Matrix::zeros(1, 1));
            pool.absorb(Matrix::zeros(1, 16));
        }
        assert!(pool.is_empty(), "sub-threshold buffers must be dropped");
    }
}
