//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! The tape records a DAG of operations as the forward pass runs;
//! [`Tape::backward`] then accumulates gradients in reverse topological
//! order (which is simply reverse insertion order). Models rebuild the tape
//! on every training step — parameters live outside the tape and are
//! re-inserted as leaves (see the `icnet` crate's trainer).
//!
//! Tapes are `Send`: graph operators are shared as `Arc<CsrMatrix>`, so a
//! data-parallel trainer can run one tape per worker thread against the
//! same operator (see `icnet::train`).

use crate::matrix::Matrix;
use crate::pool::BufferPool;
use crate::segments::Segments;
use crate::sparse::CsrMatrix;
use std::sync::Arc;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf {
        requires_grad: bool,
    },
    MatMul(VarId, VarId),
    SpMM {
        sparse: Arc<CsrMatrix>,
        dense: VarId,
    },
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Hadamard(VarId, VarId),
    Scale(VarId, f64),
    AddBiasRow(VarId, VarId),
    Relu(VarId),
    Exp(VarId),
    Transpose(VarId),
    SumAll(VarId),
    MeanAll(VarId),
    SoftmaxCol(VarId),
    /// Matmul over a row-stacked batch whose `b`-side (parameter) gradient
    /// is reduced per row segment, scaled by `scale`, in segment order —
    /// reproducing the per-instance trainer's `acc.axpy(scale, g_i)` fold
    /// bit for bit.
    MatMulSeg {
        a: VarId,
        b: VarId,
        segments: Arc<Segments>,
        scale: f64,
    },
    /// Per-segment row sum: `(total_rows x C) -> (num_segments x C)`.
    SegmentSum {
        a: VarId,
        segments: Arc<Segments>,
    },
    /// Softmax down a stacked column, renormalized per row segment.
    SegmentSoftmaxCol {
        a: VarId,
        segments: Arc<Segments>,
    },
    /// Broadcast of `softmax(theta)^T` over every row of a stacked batch;
    /// theta's gradient is reduced per segment with `scale` (the batched
    /// form of the ICNet feature-attention spread).
    BroadcastSoftmaxSeg {
        theta: VarId,
        segments: Arc<Segments>,
        scale: f64,
    },
    /// Bias-row add whose bias gradient folds row contributions with
    /// `scale` in row order (rows are the per-graph outputs of a batch).
    AddBiasRowSeg {
        x: VarId,
        bias: VarId,
        scale: f64,
    },
    /// Attention-weighted per-segment row sum:
    /// `out[s] = sum_{r in seg s} attn[r] * h[r]` — the fused form of
    /// spreading `attn` across columns, multiplying into `h` and
    /// segment-summing, in one pass over `h` instead of three full
    /// intermediates.
    SegmentWeightedSum {
        h: VarId,
        attn: VarId,
        segments: Arc<Segments>,
    },
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

fn wants_grad(node: &Node) -> bool {
    !matches!(
        node.op,
        Op::Leaf {
            requires_grad: false
        }
    )
}

/// Adds an owned gradient contribution to node `v` (moves the matrix into
/// an empty slot — no copy on the first contribution). Contributions that
/// are not kept (constants, second-and-later accumulations) surrender their
/// buffer to `pool`.
fn accumulate_owned(nodes: &mut [Node], pool: &mut BufferPool, v: VarId, grad: Matrix) {
    let node = &mut nodes[v.0];
    if !wants_grad(node) {
        pool.absorb(grad); // constants do not collect gradients
        return;
    }
    match &mut node.grad {
        Some(g) => {
            g.axpy(1.0, &grad);
            pool.absorb(grad);
        }
        slot @ None => *slot = Some(grad),
    }
}

/// Adds `c * grad` to node `v` without allocating a scaled temporary when a
/// gradient buffer already exists (the accumulation hot path of backprop).
fn accumulate_scaled(nodes: &mut [Node], pool: &mut BufferPool, v: VarId, c: f64, grad: &Matrix) {
    let node = &mut nodes[v.0];
    if !wants_grad(node) {
        return;
    }
    match &mut node.grad {
        Some(g) => g.axpy(c, grad),
        slot @ None => {
            let (rows, cols) = grad.shape();
            let mut m = pool.alloc(rows, cols);
            if c == 1.0 {
                grad.map_into(&mut m, |g| g);
            } else {
                grad.map_into(&mut m, |g| g * c);
            }
            *slot = Some(m);
        }
    }
}

/// Numerically stable softmax of a slice. One code path shared by the
/// per-column and per-segment softmax ops, so a segment of a batched column
/// produces bit-identical values to the same rows run through
/// [`Tape::softmax_col`] alone.
fn softmax_slice(xs: &[f64]) -> Vec<f64> {
    let max = xs.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
    let exps: Vec<f64> = xs.iter().map(|&x| (x - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / total).collect()
}

/// Looks up (or computes once) the transpose of a shared sparse operator.
/// Graph convolutions reuse one operator across every layer and instance,
/// so its transpose is cached per tape instead of being rebuilt for every
/// `SpMM` node on every backward pass.
fn cached_transpose(
    cache: &mut Vec<(usize, Arc<CsrMatrix>)>,
    sparse: &Arc<CsrMatrix>,
) -> Arc<CsrMatrix> {
    let key = Arc::as_ptr(sparse) as usize;
    if let Some((_, t)) = cache.iter().find(|(k, _)| *k == key) {
        return Arc::clone(t);
    }
    let t = Arc::new(sparse.transpose());
    cache.push((key, Arc::clone(&t)));
    t
}

/// A reverse-mode autodiff tape. See the [crate docs](crate) for an example.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    // Keyed by the operator allocation's address; the entry holds its own
    // Arc, which keeps the allocation alive (the address cannot be reused
    // while the entry exists).
    sparse_transposes: Vec<(usize, Arc<CsrMatrix>)>,
    // Worker threads for row-banded kernels (0 and 1 both mean serial).
    // Banding is row-exclusive, so results are bit-identical for any value.
    jobs: usize,
    // Recycled buffers for node values and gradients (see [`BufferPool`]).
    pool: BufferPool,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// An empty tape that allocates node values and gradients from `pool`.
    /// Training loops pass the pool from tape to tape (reclaiming it with
    /// [`Tape::into_pool`]) so steady-state steps reuse the same buffers
    /// instead of hitting the allocator — results are bit-identical either
    /// way.
    pub fn with_pool(pool: BufferPool) -> Self {
        Tape {
            pool,
            ..Tape::default()
        }
    }

    /// Consumes the tape, surrendering every node value and gradient buffer
    /// to the returned pool (the counterpart of [`Tape::with_pool`]).
    pub fn into_pool(mut self) -> BufferPool {
        let mut pool = std::mem::take(&mut self.pool);
        for node in self.nodes.drain(..) {
            pool.absorb(node.value);
            if let Some(g) = node.grad {
                pool.absorb(g);
            }
        }
        pool
    }

    /// Sets the worker-thread count for row-banded kernels (spmm and the
    /// batched matmul). Results are bit-identical for any value; the
    /// default (serial) is right for tapes that are themselves run on
    /// per-instance worker threads.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs;
    }

    /// Seeds the sparse-transpose cache with a precomputed transpose, so
    /// the backward pass of `spmm` nodes on `sparse` skips the per-tape
    /// transpose rebuild. A batched trainer computes one operator transpose
    /// per batch layout and re-seeds every fresh tape with it (tapes are
    /// rebuilt per step; the transpose is not).
    pub fn seed_transpose(&mut self, sparse: &Arc<CsrMatrix>, transpose: Arc<CsrMatrix>) {
        assert_eq!(
            (transpose.rows(), transpose.cols()),
            (sparse.cols(), sparse.rows()),
            "seeded transpose shape mismatch"
        );
        let key = Arc::as_ptr(sparse) as usize;
        if !self.sparse_transposes.iter().any(|(k, _)| *k == key) {
            self.sparse_transposes.push((key, transpose));
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Logical bytes live on the tape: every node value, every materialized
    /// gradient, and the recycled buffers waiting in the pool. Bytes
    /// requested rather than allocator capacity, so the reading is a pure
    /// function of the computation graph — training can be held to a memory
    /// budget with machine-independent verdicts (see the `budget` crate).
    pub fn logical_bytes(&self) -> u64 {
        let nodes: u64 = self
            .nodes
            .iter()
            .map(|n| n.value.logical_bytes() + n.grad.as_ref().map_or(0, Matrix::logical_bytes))
            .sum();
        nodes + self.pool.logical_bytes()
    }

    fn push(&mut self, value: Matrix, op: Op) -> VarId {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        VarId(self.nodes.len() - 1)
    }

    /// Inserts a trainable leaf (gradients will be accumulated for it).
    pub fn leaf(&mut self, value: Matrix) -> VarId {
        self.push(
            value,
            Op::Leaf {
                requires_grad: true,
            },
        )
    }

    /// Inserts a constant leaf (no gradient).
    pub fn constant(&mut self, value: Matrix) -> VarId {
        self.push(
            value,
            Op::Leaf {
                requires_grad: false,
            },
        )
    }

    /// The forward value of a node.
    pub fn value(&self, v: VarId) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The gradient of the last [`Tape::backward`] target w.r.t. `v`.
    ///
    /// # Panics
    ///
    /// Panics if `backward` has not been run or the node is unreachable from
    /// the loss (no gradient was accumulated).
    pub fn grad(&self, v: VarId) -> &Matrix {
        self.nodes[v.0]
            .grad
            .as_ref()
            .expect("no gradient: run backward() on a loss that depends on this node")
    }

    /// Like [`Tape::grad`] but returns `None` when no gradient reached `v`.
    pub fn try_grad(&self, v: VarId) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let (rows, cols) = (self.value(a).rows(), self.value(b).cols());
        let mut value = self.pool.alloc(rows, cols);
        self.value(a).matmul_into(self.value(b), &mut value);
        self.push(value, Op::MatMul(a, b))
    }

    /// Sparse-constant × dense product (`sparse` receives no gradient).
    pub fn spmm(&mut self, sparse: Arc<CsrMatrix>, dense: VarId) -> VarId {
        let jobs = self.jobs.max(1);
        let cols = self.value(dense).cols();
        let mut value = self.pool.alloc(sparse.rows(), cols);
        sparse.spmm_into_jobs(self.value(dense), &mut value, jobs);
        self.push(value, Op::SpMM { sparse, dense })
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let (rows, cols) = self.value(a).shape();
        let mut value = self.pool.alloc(rows, cols);
        self.value(a)
            .zip_into(self.value(b), &mut value, |x, y| x + y);
        self.push(value, Op::Add(a, b))
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let (rows, cols) = self.value(a).shape();
        let mut value = self.pool.alloc(rows, cols);
        self.value(a)
            .zip_into(self.value(b), &mut value, |x, y| x - y);
        self.push(value, Op::Sub(a, b))
    }

    /// Element-wise product.
    pub fn hadamard(&mut self, a: VarId, b: VarId) -> VarId {
        let (rows, cols) = self.value(a).shape();
        let mut value = self.pool.alloc(rows, cols);
        self.value(a)
            .zip_into(self.value(b), &mut value, |x, y| x * y);
        self.push(value, Op::Hadamard(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: VarId, c: f64) -> VarId {
        let (rows, cols) = self.value(a).shape();
        let mut value = self.pool.alloc(rows, cols);
        self.value(a).map_into(&mut value, |v| v * c);
        self.push(value, Op::Scale(a, c))
    }

    /// Adds a `1 x cols` bias row to every row of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x cols(x)`.
    pub fn add_bias_row(&mut self, x: VarId, bias: VarId) -> VarId {
        let (xr, xc) = self.value(x).shape();
        assert_eq!(self.value(bias).shape(), (1, xc), "bias must be 1 x cols");
        let mut value = self.pool.alloc(xr, xc);
        if xc > 0 {
            let bias_row = self.value(bias).as_slice();
            let xv = self.value(x).as_slice();
            for (orow, xrow) in value
                .as_mut_slice()
                .chunks_exact_mut(xc)
                .zip(xv.chunks_exact(xc))
            {
                for ((o, &xe), &be) in orow.iter_mut().zip(xrow).zip(bias_row) {
                    *o = xe + be;
                }
            }
        }
        self.push(value, Op::AddBiasRow(x, bias))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let (rows, cols) = self.value(a).shape();
        let mut value = self.pool.alloc(rows, cols);
        self.value(a).map_into(&mut value, |v| v.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: VarId) -> VarId {
        let (rows, cols) = self.value(a).shape();
        let mut value = self.pool.alloc(rows, cols);
        self.value(a).map_into(&mut value, f64::exp);
        self.push(value, Op::Exp(a))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let value = self.value(a).transpose();
        self.push(value, Op::Transpose(a))
    }

    /// Sum of all elements, as a `1 x 1` node.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let value = Matrix::scalar(self.value(a).sum());
        self.push(value, Op::SumAll(a))
    }

    /// Mean of all elements, as a `1 x 1` node.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let value = Matrix::scalar(self.value(a).mean());
        self.push(value, Op::MeanAll(a))
    }

    /// Numerically stable softmax down a column vector (`n x 1`).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not a column vector.
    pub fn softmax_col(&mut self, a: VarId) -> VarId {
        let v = self.value(a);
        assert_eq!(v.cols(), 1, "softmax_col expects an n x 1 column");
        let value = Matrix::column(&softmax_slice(v.as_slice()));
        self.push(value, Op::SoftmaxCol(a))
    }

    /// Batched matrix product `a * b` where `a` stacks the rows of a batch
    /// of graphs and `b` is a shared parameter. Forward equals
    /// [`Tape::matmul`]; the backward pass reduces `b`'s gradient per row
    /// segment — `sum_over_segments(scale * a[seg]^T dC[seg])`, folded in
    /// segment order — reproducing the per-instance trainer's scaled
    /// gradient accumulation bit for bit (DESIGN.md §10).
    ///
    /// # Panics
    ///
    /// Panics if `segments` does not cover exactly the rows of `a`.
    pub fn matmul_seg(&mut self, a: VarId, b: VarId, segments: Arc<Segments>, scale: f64) -> VarId {
        assert_eq!(
            self.value(a).rows(),
            segments.total_rows(),
            "matmul_seg segments must cover the stacked rows"
        );
        let jobs = self.jobs.max(1);
        let (rows, cols) = (self.value(a).rows(), self.value(b).cols());
        let mut value = self.pool.alloc(rows, cols);
        self.value(a)
            .matmul_into_jobs(self.value(b), &mut value, jobs);
        self.push(
            value,
            Op::MatMulSeg {
                a,
                b,
                segments,
                scale,
            },
        )
    }

    /// Per-segment row sum: collapses each graph's rows of a stacked
    /// `(total_rows x C)` matrix into one row, yielding
    /// `(num_segments x C)`. This is the batched Sum readout (and, scaled,
    /// the Mean readout).
    ///
    /// # Panics
    ///
    /// Panics if `segments` does not cover exactly the rows of `a`.
    pub fn segment_sum(&mut self, a: VarId, segments: Arc<Segments>) -> VarId {
        assert_eq!(
            self.value(a).rows(),
            segments.total_rows(),
            "segment_sum segments must cover the stacked rows"
        );
        let cols = self.value(a).cols();
        let mut value = self.pool.zeros(segments.len(), cols);
        {
            let src = self.value(a).as_slice();
            let dst = value.as_mut_slice();
            for (s, range) in segments.iter().enumerate() {
                for r in range {
                    let row = &src[r * cols..(r + 1) * cols];
                    let out = &mut dst[s * cols..(s + 1) * cols];
                    for (o, &x) in out.iter_mut().zip(row) {
                        *o += x;
                    }
                }
            }
        }
        self.push(value, Op::SegmentSum { a, segments })
    }

    /// Softmax down a stacked `(total_rows x 1)` column, renormalized per
    /// row segment — each graph's rows form one independent softmax,
    /// bit-identical to running [`Tape::softmax_col`] on that graph alone.
    ///
    /// # Panics
    ///
    /// Panics unless `a` is a column covered exactly by `segments`.
    pub fn segment_softmax_col(&mut self, a: VarId, segments: Arc<Segments>) -> VarId {
        let rows = {
            let v = self.value(a);
            assert_eq!(v.cols(), 1, "segment_softmax_col expects an n x 1 column");
            assert_eq!(
                v.rows(),
                segments.total_rows(),
                "segment_softmax_col segments must cover the stacked rows"
            );
            v.rows()
        };
        // The segments cover every row exactly once, so each element of the
        // pooled buffer is overwritten below.
        let mut value = self.pool.alloc(rows, 1);
        {
            let src = self.value(a).as_slice();
            let data = value.as_mut_slice();
            for range in segments.iter() {
                let y = softmax_slice(&src[range.clone()]);
                data[range].copy_from_slice(&y);
            }
        }
        self.push(value, Op::SegmentSoftmaxCol { a, segments })
    }

    /// Broadcasts `softmax(theta)^T` (theta is `F x 1`) over every row of a
    /// stacked batch, yielding `(total_rows x F)`; theta's gradient is
    /// reduced per segment with `scale` in segment order. This is the
    /// batched form of the ICNet feature-attention spread
    /// (`ones(n,1) * softmax(theta)^T` per instance).
    ///
    /// # Panics
    ///
    /// Panics unless `theta` is a column vector.
    pub fn broadcast_softmax_seg(
        &mut self,
        theta: VarId,
        segments: Arc<Segments>,
        scale: f64,
    ) -> VarId {
        let t = self.value(theta);
        assert_eq!(t.cols(), 1, "broadcast_softmax_seg expects an F x 1 theta");
        let y = softmax_slice(t.as_slice());
        let f = y.len();
        let rows = segments.total_rows();
        let mut value = self.pool.alloc(rows, f);
        if f > 0 {
            for row in value.as_mut_slice().chunks_exact_mut(f) {
                row.copy_from_slice(&y);
            }
        }
        self.push(
            value,
            Op::BroadcastSoftmaxSeg {
                theta,
                segments,
                scale,
            },
        )
    }

    /// Attention-weighted per-segment row sum: collapses each segment's
    /// rows of `h` (`total_rows x C`) into one row of the
    /// `(num_segments x C)` output, each row weighted by its `attn` entry
    /// (`total_rows x 1`). One pass over `h` replaces the
    /// spread-multiply-pool chain (`hadamard(h, attn * ones^T)` followed by
    /// [`Tape::segment_sum`]) while accumulating each output element in the
    /// same ascending-row order from 0.0, so the result is bit-identical to
    /// the unfused composition — and to the per-instance `h^T * attn`
    /// readout it batches (DESIGN.md §10).
    ///
    /// # Panics
    ///
    /// Panics unless `attn` is a column whose rows match `h`, covered
    /// exactly by `segments`.
    pub fn segment_weighted_sum(
        &mut self,
        h: VarId,
        attn: VarId,
        segments: Arc<Segments>,
    ) -> VarId {
        let (rows, cols) = self.value(h).shape();
        assert_eq!(
            self.value(attn).shape(),
            (rows, 1),
            "segment_weighted_sum expects an n x 1 attention column"
        );
        assert_eq!(
            rows,
            segments.total_rows(),
            "segment_weighted_sum segments must cover the stacked rows"
        );
        let mut value = self.pool.zeros(segments.len(), cols);
        {
            let hs = self.value(h).as_slice();
            let avs = self.value(attn).as_slice();
            let dst = value.as_mut_slice();
            for (s, range) in segments.iter().enumerate() {
                let out = &mut dst[s * cols..(s + 1) * cols];
                for r in range {
                    let a = avs[r];
                    let hrow = &hs[r * cols..(r + 1) * cols];
                    for (o, &hv) in out.iter_mut().zip(hrow) {
                        *o += a * hv;
                    }
                }
            }
        }
        self.push(value, Op::SegmentWeightedSum { h, attn, segments })
    }

    /// Adds a `1 x cols` bias row to every row of `x`, where each row is
    /// one graph's output; the bias gradient folds row contributions with
    /// `scale` in row order (the batched form of the per-instance scalar
    /// bias add).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x cols(x)`.
    pub fn add_bias_row_seg(&mut self, x: VarId, bias: VarId, scale: f64) -> VarId {
        let (xr, xc) = self.value(x).shape();
        assert_eq!(self.value(bias).shape(), (1, xc), "bias must be 1 x cols");
        let mut value = self.pool.alloc(xr, xc);
        if xc > 0 {
            let bias_row = self.value(bias).as_slice();
            let xv = self.value(x).as_slice();
            for (orow, xrow) in value
                .as_mut_slice()
                .chunks_exact_mut(xc)
                .zip(xv.chunks_exact(xc))
            {
                for ((o, &xe), &be) in orow.iter_mut().zip(xrow).zip(bias_row) {
                    *o = xe + be;
                }
            }
        }
        self.push(value, Op::AddBiasRowSeg { x, bias, scale })
    }

    /// Mean squared error between `pred` and a constant `target`, as a
    /// `1 x 1` node. Convenience composition of `sub`/`hadamard`/`mean_all`.
    pub fn mse_loss(&mut self, pred: VarId, target: Matrix) -> VarId {
        let t = self.constant(target);
        let diff = self.sub(pred, t);
        let sq = self.hadamard(diff, diff);
        self.mean_all(sq)
    }

    /// Runs the backward pass from `target` (which must be `1 x 1`),
    /// accumulating gradients into every reachable node.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a `1 x 1` node.
    pub fn backward(&mut self, target: VarId) {
        assert_eq!(
            self.nodes[target.0].value.shape(),
            (1, 1),
            "backward target must be scalar (1 x 1)"
        );
        let Tape {
            nodes,
            sparse_transposes,
            jobs,
            pool,
        } = self;
        let jobs = (*jobs).max(1);
        for node in nodes.iter_mut() {
            if let Some(g) = node.grad.take() {
                pool.absorb(g); // reclaim buffers from a previous backward
            }
        }
        nodes[target.0].grad = Some(Matrix::scalar(1.0));

        for i in (0..=target.0).rev() {
            // Every operand of node `i` has a smaller index (push order), so
            // splitting at `i` lets the node's gradient be read while the
            // operands' gradients are written — no per-node clone.
            let (head, tail) = nodes.split_at_mut(i);
            let node = &tail[0];
            let Some(grad) = node.grad.as_ref() else {
                continue;
            };
            match &node.op {
                Op::Leaf { .. } => {}
                &Op::MatMul(a, b) => {
                    // Either side may be a constant (e.g. a broadcast ones
                    // row); its gradient would be discarded, so skip
                    // computing it.
                    if wants_grad(&head[a.0]) {
                        let mut da = pool.alloc(grad.rows(), head[b.0].value.rows());
                        grad.matmul_nt_into_jobs(&head[b.0].value, &mut da, 1);
                        accumulate_owned(head, pool, a, da);
                    }
                    if wants_grad(&head[b.0]) {
                        let db = head[a.0].value.matmul_tn(grad);
                        accumulate_owned(head, pool, b, db);
                    }
                }
                Op::SpMM { sparse, dense } => {
                    let st = cached_transpose(sparse_transposes, sparse);
                    let mut dd = pool.alloc(st.rows(), grad.cols());
                    st.spmm_into_jobs(grad, &mut dd, jobs);
                    accumulate_owned(head, pool, *dense, dd);
                }
                &Op::Add(a, b) => {
                    accumulate_scaled(head, pool, a, 1.0, grad);
                    accumulate_scaled(head, pool, b, 1.0, grad);
                }
                &Op::Sub(a, b) => {
                    accumulate_scaled(head, pool, a, 1.0, grad);
                    accumulate_scaled(head, pool, b, -1.0, grad);
                }
                &Op::Hadamard(a, b) => {
                    let (rows, cols) = grad.shape();
                    // A constant factor (e.g. gated input features) collects
                    // no gradient — skip the full-matrix pass producing it.
                    if wants_grad(&head[a.0]) {
                        let mut da = pool.alloc(rows, cols);
                        grad.zip_into(&head[b.0].value, &mut da, |g, v| g * v);
                        accumulate_owned(head, pool, a, da);
                    }
                    if wants_grad(&head[b.0]) {
                        let mut db = pool.alloc(rows, cols);
                        grad.zip_into(&head[a.0].value, &mut db, |g, v| g * v);
                        accumulate_owned(head, pool, b, db);
                    }
                }
                &Op::Scale(a, c) => accumulate_scaled(head, pool, a, c, grad),
                &Op::AddBiasRow(x, bias) => {
                    accumulate_scaled(head, pool, x, 1.0, grad);
                    accumulate_owned(head, pool, bias, grad.col_sums());
                }
                &Op::Relu(a) => {
                    let (rows, cols) = grad.shape();
                    let mut da = pool.alloc(rows, cols);
                    grad.zip_into(
                        &head[a.0].value,
                        &mut da,
                        |g, v| {
                            if v > 0.0 {
                                g
                            } else {
                                0.0
                            }
                        },
                    );
                    accumulate_owned(head, pool, a, da);
                }
                &Op::Exp(a) => {
                    let (rows, cols) = grad.shape();
                    let mut da = pool.alloc(rows, cols);
                    grad.zip_into(&node.value, &mut da, |g, v| g * v);
                    accumulate_owned(head, pool, a, da);
                }
                &Op::Transpose(a) => accumulate_owned(head, pool, a, grad.transpose()),
                &Op::SumAll(a) => {
                    let (r, c) = head[a.0].value.shape();
                    let g = grad.get(0, 0);
                    let mut da = pool.alloc(r, c);
                    da.as_mut_slice().fill(g);
                    accumulate_owned(head, pool, a, da);
                }
                &Op::MeanAll(a) => {
                    let (r, c) = head[a.0].value.shape();
                    let g = grad.get(0, 0) / (r * c) as f64;
                    let mut da = pool.alloc(r, c);
                    da.as_mut_slice().fill(g);
                    accumulate_owned(head, pool, a, da);
                }
                &Op::SoftmaxCol(a) => {
                    // dx = y ⊙ (dy - <y, dy>)
                    let y = &node.value;
                    let dot: f64 = y
                        .as_slice()
                        .iter()
                        .zip(grad.as_slice())
                        .map(|(&yi, &gi)| yi * gi)
                        .sum();
                    let dx = y.zip(grad, |yi, gi| yi * (gi - dot));
                    accumulate_owned(head, pool, a, dx);
                }
                Op::MatMulSeg {
                    a,
                    b,
                    segments,
                    scale,
                } => {
                    let (a, b, scale) = (*a, *b, *scale);
                    let mut da = pool.alloc(grad.rows(), head[b.0].value.rows());
                    grad.matmul_nt_into_jobs(&head[b.0].value, &mut da, jobs);
                    // Parameter gradient: per-segment A_i^T dC_i products,
                    // folded with `scale` in segment order — the same fold
                    // the per-instance trainer performs across a batch.
                    let (br, bc) = head[b.0].value.shape();
                    let av = &head[a.0].value;
                    let mut db = Matrix::zeros(br, bc);
                    for range in segments.iter() {
                        let g = av.matmul_tn_rows(grad, range);
                        db.axpy(scale, &g);
                    }
                    accumulate_owned(head, pool, a, da);
                    accumulate_owned(head, pool, b, db);
                }
                Op::SegmentSum { a, segments } => {
                    let (ar, cols) = head[a.0].value.shape();
                    // Every row of `da` belongs to exactly one segment, so
                    // the copies below overwrite the whole (pooled) buffer.
                    let mut da = pool.alloc(ar, cols);
                    {
                        let dst = da.as_mut_slice();
                        let g = grad.as_slice();
                        for (s, range) in segments.iter().enumerate() {
                            for r in range {
                                dst[r * cols..(r + 1) * cols]
                                    .copy_from_slice(&g[s * cols..(s + 1) * cols]);
                            }
                        }
                    }
                    accumulate_owned(head, pool, *a, da);
                }
                Op::SegmentSoftmaxCol { a, segments } => {
                    // Per segment: dx = y ⊙ (dy - <y, dy>), exactly the
                    // SoftmaxCol rule on that segment's rows. The segments
                    // cover every row, so the pooled buffer is fully
                    // overwritten.
                    let y = node.value.as_slice();
                    let g = grad.as_slice();
                    let mut da = pool.alloc(y.len(), 1);
                    {
                        let dx = da.as_mut_slice();
                        for range in segments.iter() {
                            let dot: f64 = y[range.clone()]
                                .iter()
                                .zip(&g[range.clone()])
                                .map(|(&yi, &gi)| yi * gi)
                                .sum();
                            for r in range {
                                dx[r] = y[r] * (g[r] - dot);
                            }
                        }
                    }
                    accumulate_owned(head, pool, *a, da);
                }
                Op::BroadcastSoftmaxSeg {
                    theta,
                    segments,
                    scale,
                } => {
                    // Recompute softmax(theta) via the forward code path
                    // (bit-identical), then fold the per-segment softmax
                    // jacobian contributions with `scale` in segment order.
                    let y = softmax_slice(head[theta.0].value.as_slice());
                    let f = y.len();
                    let g = grad.as_slice();
                    let mut acc = Matrix::zeros(f, 1);
                    for range in segments.iter() {
                        // Column sums over the segment rows, ascending —
                        // the per-instance ones^T · d(spread) product.
                        let mut gseg = vec![0.0; f];
                        for r in range {
                            for (o, &gv) in gseg.iter_mut().zip(&g[r * f..(r + 1) * f]) {
                                *o += gv;
                            }
                        }
                        let dot: f64 = y.iter().zip(&gseg).map(|(&yi, &gi)| yi * gi).sum();
                        let dtheta: Vec<f64> = y
                            .iter()
                            .zip(&gseg)
                            .map(|(&yi, &gi)| yi * (gi - dot))
                            .collect();
                        acc.axpy(*scale, &Matrix::from_vec(f, 1, dtheta));
                    }
                    accumulate_owned(head, pool, *theta, acc);
                }
                Op::SegmentWeightedSum { h, attn, segments } => {
                    let (h, attn) = (*h, *attn);
                    let (n, f) = head[h.0].value.shape();
                    let mut dh = pool.alloc(n, f);
                    let mut da = pool.alloc(n, 1);
                    {
                        let g = grad.as_slice();
                        let hs = head[h.0].value.as_slice();
                        let avs = head[attn.0].value.as_slice();
                        let dhs = dh.as_mut_slice();
                        let das = da.as_mut_slice();
                        // Each stacked row belongs to exactly one segment,
                        // so both pooled buffers are fully overwritten.
                        for (s, range) in segments.iter().enumerate() {
                            let grow = &g[s * f..(s + 1) * f];
                            for r in range {
                                let a = avs[r];
                                let hrow = &hs[r * f..(r + 1) * f];
                                let drow = &mut dhs[r * f..(r + 1) * f];
                                for (o, &gv) in drow.iter_mut().zip(grow) {
                                    *o = gv * a;
                                }
                                // d_attn[r] = <h[r], g[s]>, ascending
                                // columns with exact-zero h terms skipped —
                                // the per-instance `h^T * grad` product's
                                // accumulation order.
                                let mut acc = 0.0;
                                for (&hv, &gv) in hrow.iter().zip(grow) {
                                    if hv == 0.0 {
                                        continue;
                                    }
                                    acc += hv * gv;
                                }
                                das[r] = acc;
                            }
                        }
                    }
                    accumulate_owned(head, pool, h, dh);
                    accumulate_owned(head, pool, attn, da);
                }
                &Op::AddBiasRowSeg { x, bias, scale } => {
                    accumulate_scaled(head, pool, x, 1.0, grad);
                    let (gr, gc) = grad.shape();
                    // Fold row contributions with `scale` in row order (the
                    // per-instance trainer's scaled bias-gradient fold).
                    let mut acc = Matrix::zeros(1, gc);
                    {
                        let a = acc.as_mut_slice();
                        let g = grad.as_slice();
                        for r in 0..gr {
                            for (o, &gv) in a.iter_mut().zip(&g[r * gc..(r + 1) * gc]) {
                                *o += scale * gv;
                            }
                        }
                    }
                    accumulate_owned(head, pool, bias, acc);
                }
            }
        }
    }
}

// The training engine moves tapes across scoped worker threads; a compile
// error here means an `!Send` type (e.g. `Rc`) crept back into the tape.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Tape>();
    assert_send::<Matrix>();
    assert_send::<CsrMatrix>();
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check of d(loss)/d(param[idx]).
    fn finite_diff(
        build: &dyn Fn(&mut Tape, VarId) -> VarId,
        param: &Matrix,
        r: usize,
        c: usize,
    ) -> f64 {
        let eps = 1e-6;
        let eval = |delta: f64| {
            let mut p = param.clone();
            p.set(r, c, p.get(r, c) + delta);
            let mut tape = Tape::new();
            let pv = tape.leaf(p);
            let loss = build(&mut tape, pv);
            tape.value(loss).get(0, 0)
        };
        (eval(eps) - eval(-eps)) / (2.0 * eps)
    }

    fn check_grads(build: &dyn Fn(&mut Tape, VarId) -> VarId, param: Matrix) {
        let mut tape = Tape::new();
        let pv = tape.leaf(param.clone());
        let loss = build(&mut tape, pv);
        tape.backward(loss);
        let analytic = tape.grad(pv).clone();
        for r in 0..param.rows() {
            for c in 0..param.cols() {
                let numeric = finite_diff(build, &param, r, c);
                let a = analytic.get(r, c);
                assert!(
                    (a - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                    "grad mismatch at ({r},{c}): analytic {a}, numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn logical_bytes_grow_with_nodes_and_gradients() {
        let mut tape = Tape::new();
        assert_eq!(tape.logical_bytes(), 0);
        let a = tape.leaf(Matrix::zeros(8, 4));
        assert_eq!(tape.logical_bytes(), 8 * 4 * 8);
        let s = tape.sum_all(a);
        let before_backward = tape.logical_bytes();
        assert_eq!(before_backward, (8 * 4 + 1) * 8);
        tape.backward(s);
        assert!(
            tape.logical_bytes() > before_backward,
            "materialized gradients count toward the footprint"
        );
        // Deterministic: the same graph reads the same bytes.
        let mut again = Tape::new();
        let a2 = again.leaf(Matrix::zeros(8, 4));
        let s2 = again.sum_all(a2);
        again.backward(s2);
        assert_eq!(tape.logical_bytes(), again.logical_bytes());
    }

    #[test]
    fn matmul_grad_matches_finite_difference() {
        let x = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0], &[2.0, 1.0]]);
        let build = move |tape: &mut Tape, w: VarId| {
            let xv = tape.constant(x.clone());
            let h = tape.matmul(xv, w);
            let sq = tape.hadamard(h, h);
            tape.mean_all(sq)
        };
        check_grads(&build, Matrix::from_rows(&[&[0.3, -0.7], &[1.1, 0.2]]));
    }

    #[test]
    fn relu_exp_chain_grad() {
        let build = |tape: &mut Tape, w: VarId| {
            let r = tape.relu(w);
            let e = tape.exp(r);
            tape.sum_all(e)
        };
        check_grads(&build, Matrix::from_rows(&[&[0.5, -0.5], &[1.5, -2.0]]));
    }

    #[test]
    fn softmax_attention_grad() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]);
        let build = move |tape: &mut Tape, theta: VarId| {
            let xv = tape.constant(x.clone());
            let scores = tape.matmul(xv, theta); // 3x1
            let attn = tape.softmax_col(scores);
            let xt = tape.transpose(xv); // 2x3
            let pooled = tape.matmul(xt, attn); // 2x1
            let sq = tape.hadamard(pooled, pooled);
            tape.sum_all(sq)
        };
        check_grads(&build, Matrix::column(&[0.3, -0.2]));
    }

    #[test]
    fn spmm_grad() {
        let s = Arc::new(CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, -1.0), (2, 2, 0.5)],
        ));
        let build = move |tape: &mut Tape, x: VarId| {
            let h = tape.spmm(Arc::clone(&s), x);
            let sq = tape.hadamard(h, h);
            tape.mean_all(sq)
        };
        check_grads(
            &build,
            Matrix::from_rows(&[&[1.0, 2.0], &[-1.0, 0.5], &[0.3, 0.7]]),
        );
    }

    #[test]
    fn stacked_spmm_layers_share_one_cached_transpose() {
        // Two convolution layers on the same operator — the shape of every
        // GNN in this repo; gradients must still match finite differences
        // when the backward pass reuses one cached transpose.
        let s = Arc::new(CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, -1.0), (1, 1, 0.5)],
        ));
        let build = move |tape: &mut Tape, x: VarId| {
            let h1 = tape.spmm(Arc::clone(&s), x);
            let r1 = tape.relu(h1);
            let h2 = tape.spmm(Arc::clone(&s), r1);
            let sq = tape.hadamard(h2, h2);
            tape.mean_all(sq)
        };
        check_grads(
            &build,
            Matrix::from_rows(&[&[1.0, 2.0], &[-1.0, 0.5], &[0.3, 0.7]]),
        );
    }

    #[test]
    fn bias_scale_sub_grads() {
        let build = |tape: &mut Tape, w: VarId| {
            let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
            let two_w = tape.scale(w, 2.0);
            let d = tape.sub(x, two_w);
            let s = tape.add(d, d);
            let sq = tape.hadamard(s, s);
            tape.mean_all(sq)
        };
        check_grads(&build, Matrix::from_rows(&[&[0.1, -0.4], &[0.9, 0.2]]));
    }

    #[test]
    fn add_bias_row_grad() {
        let build = |tape: &mut Tape, b: VarId| {
            let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
            let h = tape.add_bias_row(x, b);
            let sq = tape.hadamard(h, h);
            tape.sum_all(sq)
        };
        check_grads(&build, Matrix::from_rows(&[&[0.5, -1.0]]));
    }

    #[test]
    fn mse_loss_value_and_grad() {
        let mut tape = Tape::new();
        let pred = tape.leaf(Matrix::column(&[1.0, 2.0]));
        let loss = tape.mse_loss(pred, Matrix::column(&[0.0, 0.0]));
        assert!((tape.value(loss).get(0, 0) - 2.5).abs() < 1e-12);
        tape.backward(loss);
        // d/dp mean((p - t)^2) = 2(p - t)/n
        assert!((tape.grad(pred).get(0, 0) - 1.0).abs() < 1e-12);
        assert!((tape.grad(pred).get(1, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn constants_collect_no_gradient() {
        let mut tape = Tape::new();
        let c = tape.constant(Matrix::scalar(3.0));
        let w = tape.leaf(Matrix::scalar(2.0));
        let p = tape.hadamard(c, w);
        let l = tape.sum_all(p);
        tape.backward(l);
        assert!(tape.try_grad(c).is_none());
        assert_eq!(tape.grad(w).get(0, 0), 3.0);
    }

    #[test]
    fn backward_is_rerunnable() {
        let mut tape = Tape::new();
        let w = tape.leaf(Matrix::scalar(2.0));
        let sq = tape.hadamard(w, w);
        let l = tape.sum_all(sq);
        tape.backward(l);
        let g1 = tape.grad(w).get(0, 0);
        tape.backward(l);
        let g2 = tape.grad(w).get(0, 0);
        assert_eq!(g1, g2, "gradients must reset between backward passes");
        assert_eq!(g1, 4.0);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_non_scalar() {
        let mut tape = Tape::new();
        let w = tape.leaf(Matrix::ones(2, 2));
        tape.backward(w);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::column(&[1000.0, 1000.0, 999.0]));
        let s = tape.softmax_col(a);
        let v = tape.value(s);
        assert!(v.as_slice().iter().all(|x| x.is_finite()));
        assert!((v.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_seg_grad_matches_finite_difference() {
        // Two stacked "graphs" (3 + 2 rows) against one shared parameter;
        // with scale = 1.0 the segment-reduced gradient is the plain sum,
        // i.e. the true derivative.
        let x = Matrix::from_rows(&[
            &[1.0, -2.0],
            &[0.5, 3.0],
            &[2.0, 1.0],
            &[-1.0, 0.25],
            &[0.75, -0.5],
        ]);
        let seg = Arc::new(Segments::from_lens(&[3, 2]));
        let build = move |tape: &mut Tape, w: VarId| {
            let xv = tape.constant(x.clone());
            let h = tape.matmul_seg(xv, w, Arc::clone(&seg), 1.0);
            let sq = tape.hadamard(h, h);
            tape.sum_all(sq)
        };
        check_grads(&build, Matrix::from_rows(&[&[0.3, -0.7], &[1.1, 0.2]]));
    }

    #[test]
    fn segment_ops_grads_match_finite_difference() {
        let seg = Arc::new(Segments::from_lens(&[2, 3]));
        // segment_sum: pool a trainable stacked matrix.
        let seg2 = Arc::clone(&seg);
        let build = move |tape: &mut Tape, x: VarId| {
            let pooled = tape.segment_sum(x, Arc::clone(&seg2));
            let sq = tape.hadamard(pooled, pooled);
            tape.sum_all(sq)
        };
        check_grads(
            &build,
            Matrix::from_rows(&[
                &[1.0, 2.0],
                &[-1.0, 0.5],
                &[0.3, 0.7],
                &[2.0, -2.0],
                &[0.1, 0.9],
            ]),
        );
        // segment_softmax_col on trainable scores.
        let seg3 = Arc::clone(&seg);
        let build = move |tape: &mut Tape, s: VarId| {
            let attn = tape.segment_softmax_col(s, Arc::clone(&seg3));
            let sq = tape.hadamard(attn, attn);
            tape.sum_all(sq)
        };
        check_grads(&build, Matrix::column(&[0.3, -0.2, 1.5, 0.0, -0.7]));
    }

    #[test]
    fn broadcast_softmax_and_bias_seg_grads_match_finite_difference() {
        let seg = Arc::new(Segments::from_lens(&[2, 3]));
        let x = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 2.0],
            &[1.0, 1.0],
            &[0.5, -0.5],
            &[2.0, 0.25],
        ]);
        let seg2 = Arc::clone(&seg);
        let build = move |tape: &mut Tape, theta: VarId| {
            let spread = tape.broadcast_softmax_seg(theta, Arc::clone(&seg2), 1.0);
            let xv = tape.constant(x.clone());
            let weighted = tape.hadamard(xv, spread);
            let sq = tape.hadamard(weighted, weighted);
            tape.sum_all(sq)
        };
        check_grads(&build, Matrix::column(&[0.3, -0.2]));
        let build = |tape: &mut Tape, b: VarId| {
            let x = tape.constant(Matrix::column(&[1.0, -2.0, 0.5]));
            let out = tape.add_bias_row_seg(x, b, 1.0);
            let sq = tape.hadamard(out, out);
            tape.sum_all(sq)
        };
        check_grads(&build, Matrix::scalar(0.4));
    }

    #[test]
    fn segment_ops_are_bit_identical_to_per_instance_ops() {
        // Run two instances through the classic per-instance ops and the
        // same two instances stacked through the segment ops; forward
        // values and parameter gradients must agree to the last bit.
        let xs = [
            Matrix::from_rows(&[&[1.0, 0.5], &[-0.25, 2.0], &[0.75, -1.5]]),
            Matrix::from_rows(&[&[2.0, -1.0], &[0.5, 0.125]]),
        ];
        let w = Matrix::from_rows(&[&[0.3, -0.7], &[1.1, 0.2]]);
        let scale = 1.0 / xs.len() as f64;

        // Per-instance reference: grad fold acc += scale * g_i.
        let mut ref_grad = Matrix::zeros(2, 2);
        let mut ref_vals = Vec::new();
        for x in &xs {
            let mut tape = Tape::new();
            let wv = tape.leaf(w.clone());
            let xv = tape.constant(x.clone());
            let h = tape.matmul(xv, wv);
            let r = tape.relu(h);
            let sq = tape.hadamard(r, r);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            ref_vals.extend_from_slice(tape.value(r).as_slice());
            ref_grad.axpy(scale, tape.grad(wv));
        }

        // Batched: one stacked tape with segment-aware reduction.
        let seg = Arc::new(Segments::from_lens(&[3, 2]));
        let mut stacked = xs[0].as_slice().to_vec();
        stacked.extend_from_slice(xs[1].as_slice());
        let mut tape = Tape::new();
        let wv = tape.leaf(w.clone());
        let xv = tape.constant(Matrix::from_vec(5, 2, stacked));
        let h = tape.matmul_seg(xv, wv, seg, scale);
        let r = tape.relu(h);
        let sq = tape.hadamard(r, r);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        assert_eq!(tape.value(r).as_slice(), &ref_vals[..]);
        assert_eq!(tape.grad(wv), &ref_grad);
    }

    #[test]
    fn segment_weighted_sum_grads_match_finite_difference() {
        let seg = Arc::new(Segments::from_lens(&[2, 3]));
        let h = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 2.0],
            &[1.0, 1.0],
            &[0.5, -0.5],
            &[2.0, 0.25],
        ]);
        // Gradient through the attention column.
        let (h2, seg2) = (h.clone(), Arc::clone(&seg));
        let build = move |tape: &mut Tape, attn: VarId| {
            let hv = tape.constant(h2.clone());
            let pooled = tape.segment_weighted_sum(hv, attn, Arc::clone(&seg2));
            let sq = tape.hadamard(pooled, pooled);
            tape.sum_all(sq)
        };
        check_grads(&build, Matrix::column(&[0.3, -0.2, 1.5, 0.1, -0.7]));
        // Gradient through the stacked features.
        let seg3 = Arc::clone(&seg);
        let attn = Matrix::column(&[0.6, 0.4, 0.2, 0.3, 0.5]);
        let build = move |tape: &mut Tape, hv: VarId| {
            let av = tape.constant(attn.clone());
            let pooled = tape.segment_weighted_sum(hv, av, Arc::clone(&seg3));
            let sq = tape.hadamard(pooled, pooled);
            tape.sum_all(sq)
        };
        check_grads(&build, h);
    }

    #[test]
    fn segment_weighted_sum_is_bit_identical_to_the_unfused_chain() {
        // The fused readout must reproduce, to the last bit, the
        // spread-multiply-pool composition it replaces — values and the
        // gradients reaching both operands.
        let seg = Arc::new(Segments::from_lens(&[3, 2]));
        let h = Matrix::from_fn(5, 4, |r, c| ((r * 7 + c * 3) % 11) as f64 * 0.25 - 1.0);
        let scores = Matrix::column(&[0.3, -0.2, 1.5, 0.0, -0.7]);

        let run = |fused: bool| {
            let mut tape = Tape::new();
            let hv = tape.leaf(h.clone());
            let sv = tape.leaf(scores.clone());
            let attn = tape.segment_softmax_col(sv, Arc::clone(&seg));
            let pooled = if fused {
                tape.segment_weighted_sum(hv, attn, Arc::clone(&seg))
            } else {
                let ones_row = tape.constant(Matrix::ones(1, 4));
                let spread = tape.matmul(attn, ones_row);
                let weighted = tape.hadamard(hv, spread);
                tape.segment_sum(weighted, Arc::clone(&seg))
            };
            let sq = tape.hadamard(pooled, pooled);
            let l = tape.sum_all(sq);
            tape.backward(l);
            (
                tape.value(pooled).clone(),
                tape.grad(hv).clone(),
                tape.grad(sv).clone(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn seeded_transpose_is_used_and_correct() {
        let s = Arc::new(CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, -1.0)],
        ));
        let t = Arc::new(s.transpose());
        let run = |seed: bool| {
            let mut tape = Tape::new();
            if seed {
                tape.seed_transpose(&s, Arc::clone(&t));
            }
            let x = tape.leaf(Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]));
            let h = tape.spmm(Arc::clone(&s), x);
            let sq = tape.hadamard(h, h);
            let l = tape.sum_all(sq);
            tape.backward(l);
            tape.grad(x).clone()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn jobs_do_not_change_tape_results() {
        let s = Arc::new(CsrMatrix::from_triplets(
            4,
            4,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, -1.0), (3, 3, 0.5)],
        ));
        let seg = Arc::new(Segments::from_lens(&[4]));
        let run = |jobs: usize| {
            let mut tape = Tape::new();
            tape.set_jobs(jobs);
            let w = tape.leaf(Matrix::from_rows(&[&[0.2, -0.4], &[0.6, 0.1]]));
            let x = tape.constant(Matrix::from_fn(4, 2, |r, c| (r + c) as f64 - 1.5));
            let h = tape.spmm(Arc::clone(&s), x);
            let m = tape.matmul_seg(h, w, Arc::clone(&seg), 1.0);
            let sq = tape.hadamard(m, m);
            let l = tape.sum_all(sq);
            tape.backward(l);
            (tape.value(l).get(0, 0), tape.grad(w).clone())
        };
        let base = run(1);
        for jobs in [2, 3, 8] {
            assert_eq!(run(jobs), base, "jobs={jobs}");
        }
    }

    #[test]
    fn tapes_move_across_threads() {
        let s = Arc::new(CsrMatrix::identity(2));
        let handle = std::thread::spawn(move || {
            let mut tape = Tape::new();
            let x = tape.leaf(Matrix::ones(2, 1));
            let h = tape.spmm(s, x);
            let l = tape.sum_all(h);
            tape.backward(l);
            tape.grad(x).clone()
        });
        let grad = handle.join().expect("worker thread");
        assert_eq!(grad, Matrix::ones(2, 1));
    }
}
