//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! The tape records a DAG of operations as the forward pass runs;
//! [`Tape::backward`] then accumulates gradients in reverse topological
//! order (which is simply reverse insertion order). Models rebuild the tape
//! on every training step — parameters live outside the tape and are
//! re-inserted as leaves (see the `icnet` crate's trainer).
//!
//! Tapes are `Send`: graph operators are shared as `Arc<CsrMatrix>`, so a
//! data-parallel trainer can run one tape per worker thread against the
//! same operator (see `icnet::train`).

use crate::matrix::Matrix;
use crate::sparse::CsrMatrix;
use std::sync::Arc;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf {
        requires_grad: bool,
    },
    MatMul(VarId, VarId),
    SpMM {
        sparse: Arc<CsrMatrix>,
        dense: VarId,
    },
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Hadamard(VarId, VarId),
    Scale(VarId, f64),
    AddBiasRow(VarId, VarId),
    Relu(VarId),
    Exp(VarId),
    Transpose(VarId),
    SumAll(VarId),
    MeanAll(VarId),
    SoftmaxCol(VarId),
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

fn wants_grad(node: &Node) -> bool {
    !matches!(
        node.op,
        Op::Leaf {
            requires_grad: false
        }
    )
}

/// Adds an owned gradient contribution to node `v` (moves the matrix into
/// an empty slot — no copy on the first contribution).
fn accumulate_owned(nodes: &mut [Node], v: VarId, grad: Matrix) {
    let node = &mut nodes[v.0];
    if !wants_grad(node) {
        return; // constants do not collect gradients
    }
    match &mut node.grad {
        Some(g) => g.axpy(1.0, &grad),
        slot @ None => *slot = Some(grad),
    }
}

/// Adds `c * grad` to node `v` without allocating a scaled temporary when a
/// gradient buffer already exists (the accumulation hot path of backprop).
fn accumulate_scaled(nodes: &mut [Node], v: VarId, c: f64, grad: &Matrix) {
    let node = &mut nodes[v.0];
    if !wants_grad(node) {
        return;
    }
    match &mut node.grad {
        Some(g) => g.axpy(c, grad),
        slot @ None => {
            *slot = Some(if c == 1.0 {
                grad.clone()
            } else {
                grad.scale(c)
            });
        }
    }
}

/// Looks up (or computes once) the transpose of a shared sparse operator.
/// Graph convolutions reuse one operator across every layer and instance,
/// so its transpose is cached per tape instead of being rebuilt for every
/// `SpMM` node on every backward pass.
fn cached_transpose(
    cache: &mut Vec<(usize, Arc<CsrMatrix>)>,
    sparse: &Arc<CsrMatrix>,
) -> Arc<CsrMatrix> {
    let key = Arc::as_ptr(sparse) as usize;
    if let Some((_, t)) = cache.iter().find(|(k, _)| *k == key) {
        return Arc::clone(t);
    }
    let t = Arc::new(sparse.transpose());
    cache.push((key, Arc::clone(&t)));
    t
}

/// A reverse-mode autodiff tape. See the [crate docs](crate) for an example.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    // Keyed by the operator allocation's address; the entry holds its own
    // Arc, which keeps the allocation alive (the address cannot be reused
    // while the entry exists).
    sparse_transposes: Vec<(usize, Arc<CsrMatrix>)>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op) -> VarId {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        VarId(self.nodes.len() - 1)
    }

    /// Inserts a trainable leaf (gradients will be accumulated for it).
    pub fn leaf(&mut self, value: Matrix) -> VarId {
        self.push(
            value,
            Op::Leaf {
                requires_grad: true,
            },
        )
    }

    /// Inserts a constant leaf (no gradient).
    pub fn constant(&mut self, value: Matrix) -> VarId {
        self.push(
            value,
            Op::Leaf {
                requires_grad: false,
            },
        )
    }

    /// The forward value of a node.
    pub fn value(&self, v: VarId) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The gradient of the last [`Tape::backward`] target w.r.t. `v`.
    ///
    /// # Panics
    ///
    /// Panics if `backward` has not been run or the node is unreachable from
    /// the loss (no gradient was accumulated).
    pub fn grad(&self, v: VarId) -> &Matrix {
        self.nodes[v.0]
            .grad
            .as_ref()
            .expect("no gradient: run backward() on a loss that depends on this node")
    }

    /// Like [`Tape::grad`] but returns `None` when no gradient reached `v`.
    pub fn try_grad(&self, v: VarId) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).matmul(self.value(b));
        self.push(value, Op::MatMul(a, b))
    }

    /// Sparse-constant × dense product (`sparse` receives no gradient).
    pub fn spmm(&mut self, sparse: Arc<CsrMatrix>, dense: VarId) -> VarId {
        let value = sparse.spmm(self.value(dense));
        self.push(value, Op::SpMM { sparse, dense })
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).add(self.value(b));
        self.push(value, Op::Add(a, b))
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).sub(self.value(b));
        self.push(value, Op::Sub(a, b))
    }

    /// Element-wise product.
    pub fn hadamard(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).hadamard(self.value(b));
        self.push(value, Op::Hadamard(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: VarId, c: f64) -> VarId {
        let value = self.value(a).scale(c);
        self.push(value, Op::Scale(a, c))
    }

    /// Adds a `1 x cols` bias row to every row of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x cols(x)`.
    pub fn add_bias_row(&mut self, x: VarId, bias: VarId) -> VarId {
        let (xr, xc) = self.value(x).shape();
        assert_eq!(self.value(bias).shape(), (1, xc), "bias must be 1 x cols");
        let bias_row: Vec<f64> = self.value(bias).as_slice().to_vec();
        let xv = self.value(x);
        let value = Matrix::from_fn(xr, xc, |r, c| xv.get(r, c) + bias_row[c]);
        self.push(value, Op::AddBiasRow(x, bias))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let value = self.value(a).map(|v| v.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: VarId) -> VarId {
        let value = self.value(a).map(f64::exp);
        self.push(value, Op::Exp(a))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let value = self.value(a).transpose();
        self.push(value, Op::Transpose(a))
    }

    /// Sum of all elements, as a `1 x 1` node.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let value = Matrix::scalar(self.value(a).sum());
        self.push(value, Op::SumAll(a))
    }

    /// Mean of all elements, as a `1 x 1` node.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let value = Matrix::scalar(self.value(a).mean());
        self.push(value, Op::MeanAll(a))
    }

    /// Numerically stable softmax down a column vector (`n x 1`).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not a column vector.
    pub fn softmax_col(&mut self, a: VarId) -> VarId {
        let v = self.value(a);
        assert_eq!(v.cols(), 1, "softmax_col expects an n x 1 column");
        let max = v
            .as_slice()
            .iter()
            .fold(f64::NEG_INFINITY, |m, &x| m.max(x));
        let exps: Vec<f64> = v.as_slice().iter().map(|&x| (x - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        let value = Matrix::column(&exps.iter().map(|&e| e / total).collect::<Vec<_>>());
        self.push(value, Op::SoftmaxCol(a))
    }

    /// Mean squared error between `pred` and a constant `target`, as a
    /// `1 x 1` node. Convenience composition of `sub`/`hadamard`/`mean_all`.
    pub fn mse_loss(&mut self, pred: VarId, target: Matrix) -> VarId {
        let t = self.constant(target);
        let diff = self.sub(pred, t);
        let sq = self.hadamard(diff, diff);
        self.mean_all(sq)
    }

    /// Runs the backward pass from `target` (which must be `1 x 1`),
    /// accumulating gradients into every reachable node.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a `1 x 1` node.
    pub fn backward(&mut self, target: VarId) {
        assert_eq!(
            self.nodes[target.0].value.shape(),
            (1, 1),
            "backward target must be scalar (1 x 1)"
        );
        for node in &mut self.nodes {
            node.grad = None;
        }
        self.nodes[target.0].grad = Some(Matrix::scalar(1.0));

        for i in (0..=target.0).rev() {
            // Every operand of node `i` has a smaller index (push order), so
            // splitting at `i` lets the node's gradient be read while the
            // operands' gradients are written — no per-node clone.
            let (head, tail) = self.nodes.split_at_mut(i);
            let node = &tail[0];
            let Some(grad) = node.grad.as_ref() else {
                continue;
            };
            match &node.op {
                Op::Leaf { .. } => {}
                &Op::MatMul(a, b) => {
                    let da = grad.matmul_nt(&head[b.0].value);
                    let db = head[a.0].value.matmul_tn(grad);
                    accumulate_owned(head, a, da);
                    accumulate_owned(head, b, db);
                }
                Op::SpMM { sparse, dense } => {
                    let st = cached_transpose(&mut self.sparse_transposes, sparse);
                    let dd = st.spmm(grad);
                    accumulate_owned(head, *dense, dd);
                }
                &Op::Add(a, b) => {
                    accumulate_scaled(head, a, 1.0, grad);
                    accumulate_scaled(head, b, 1.0, grad);
                }
                &Op::Sub(a, b) => {
                    accumulate_scaled(head, a, 1.0, grad);
                    accumulate_scaled(head, b, -1.0, grad);
                }
                &Op::Hadamard(a, b) => {
                    let da = grad.hadamard(&head[b.0].value);
                    let db = grad.hadamard(&head[a.0].value);
                    accumulate_owned(head, a, da);
                    accumulate_owned(head, b, db);
                }
                &Op::Scale(a, c) => accumulate_scaled(head, a, c, grad),
                &Op::AddBiasRow(x, bias) => {
                    accumulate_scaled(head, x, 1.0, grad);
                    accumulate_owned(head, bias, grad.col_sums());
                }
                &Op::Relu(a) => {
                    let da = grad.zip(&head[a.0].value, |g, v| if v > 0.0 { g } else { 0.0 });
                    accumulate_owned(head, a, da);
                }
                &Op::Exp(a) => {
                    let da = grad.hadamard(&node.value);
                    accumulate_owned(head, a, da);
                }
                &Op::Transpose(a) => accumulate_owned(head, a, grad.transpose()),
                &Op::SumAll(a) => {
                    let (r, c) = head[a.0].value.shape();
                    let g = grad.get(0, 0);
                    accumulate_owned(head, a, Matrix::from_vec(r, c, vec![g; r * c]));
                }
                &Op::MeanAll(a) => {
                    let (r, c) = head[a.0].value.shape();
                    let g = grad.get(0, 0) / (r * c) as f64;
                    accumulate_owned(head, a, Matrix::from_vec(r, c, vec![g; r * c]));
                }
                &Op::SoftmaxCol(a) => {
                    // dx = y ⊙ (dy - <y, dy>)
                    let y = &node.value;
                    let dot: f64 = y
                        .as_slice()
                        .iter()
                        .zip(grad.as_slice())
                        .map(|(&yi, &gi)| yi * gi)
                        .sum();
                    let dx = y.zip(grad, |yi, gi| yi * (gi - dot));
                    accumulate_owned(head, a, dx);
                }
            }
        }
    }
}

// The training engine moves tapes across scoped worker threads; a compile
// error here means an `!Send` type (e.g. `Rc`) crept back into the tape.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Tape>();
    assert_send::<Matrix>();
    assert_send::<CsrMatrix>();
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check of d(loss)/d(param[idx]).
    fn finite_diff(
        build: &dyn Fn(&mut Tape, VarId) -> VarId,
        param: &Matrix,
        r: usize,
        c: usize,
    ) -> f64 {
        let eps = 1e-6;
        let eval = |delta: f64| {
            let mut p = param.clone();
            p.set(r, c, p.get(r, c) + delta);
            let mut tape = Tape::new();
            let pv = tape.leaf(p);
            let loss = build(&mut tape, pv);
            tape.value(loss).get(0, 0)
        };
        (eval(eps) - eval(-eps)) / (2.0 * eps)
    }

    fn check_grads(build: &dyn Fn(&mut Tape, VarId) -> VarId, param: Matrix) {
        let mut tape = Tape::new();
        let pv = tape.leaf(param.clone());
        let loss = build(&mut tape, pv);
        tape.backward(loss);
        let analytic = tape.grad(pv).clone();
        for r in 0..param.rows() {
            for c in 0..param.cols() {
                let numeric = finite_diff(build, &param, r, c);
                let a = analytic.get(r, c);
                assert!(
                    (a - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                    "grad mismatch at ({r},{c}): analytic {a}, numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn matmul_grad_matches_finite_difference() {
        let x = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0], &[2.0, 1.0]]);
        let build = move |tape: &mut Tape, w: VarId| {
            let xv = tape.constant(x.clone());
            let h = tape.matmul(xv, w);
            let sq = tape.hadamard(h, h);
            tape.mean_all(sq)
        };
        check_grads(&build, Matrix::from_rows(&[&[0.3, -0.7], &[1.1, 0.2]]));
    }

    #[test]
    fn relu_exp_chain_grad() {
        let build = |tape: &mut Tape, w: VarId| {
            let r = tape.relu(w);
            let e = tape.exp(r);
            tape.sum_all(e)
        };
        check_grads(&build, Matrix::from_rows(&[&[0.5, -0.5], &[1.5, -2.0]]));
    }

    #[test]
    fn softmax_attention_grad() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]);
        let build = move |tape: &mut Tape, theta: VarId| {
            let xv = tape.constant(x.clone());
            let scores = tape.matmul(xv, theta); // 3x1
            let attn = tape.softmax_col(scores);
            let xt = tape.transpose(xv); // 2x3
            let pooled = tape.matmul(xt, attn); // 2x1
            let sq = tape.hadamard(pooled, pooled);
            tape.sum_all(sq)
        };
        check_grads(&build, Matrix::column(&[0.3, -0.2]));
    }

    #[test]
    fn spmm_grad() {
        let s = Arc::new(CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, -1.0), (2, 2, 0.5)],
        ));
        let build = move |tape: &mut Tape, x: VarId| {
            let h = tape.spmm(Arc::clone(&s), x);
            let sq = tape.hadamard(h, h);
            tape.mean_all(sq)
        };
        check_grads(
            &build,
            Matrix::from_rows(&[&[1.0, 2.0], &[-1.0, 0.5], &[0.3, 0.7]]),
        );
    }

    #[test]
    fn stacked_spmm_layers_share_one_cached_transpose() {
        // Two convolution layers on the same operator — the shape of every
        // GNN in this repo; gradients must still match finite differences
        // when the backward pass reuses one cached transpose.
        let s = Arc::new(CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, -1.0), (1, 1, 0.5)],
        ));
        let build = move |tape: &mut Tape, x: VarId| {
            let h1 = tape.spmm(Arc::clone(&s), x);
            let r1 = tape.relu(h1);
            let h2 = tape.spmm(Arc::clone(&s), r1);
            let sq = tape.hadamard(h2, h2);
            tape.mean_all(sq)
        };
        check_grads(
            &build,
            Matrix::from_rows(&[&[1.0, 2.0], &[-1.0, 0.5], &[0.3, 0.7]]),
        );
    }

    #[test]
    fn bias_scale_sub_grads() {
        let build = |tape: &mut Tape, w: VarId| {
            let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
            let two_w = tape.scale(w, 2.0);
            let d = tape.sub(x, two_w);
            let s = tape.add(d, d);
            let sq = tape.hadamard(s, s);
            tape.mean_all(sq)
        };
        check_grads(&build, Matrix::from_rows(&[&[0.1, -0.4], &[0.9, 0.2]]));
    }

    #[test]
    fn add_bias_row_grad() {
        let build = |tape: &mut Tape, b: VarId| {
            let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
            let h = tape.add_bias_row(x, b);
            let sq = tape.hadamard(h, h);
            tape.sum_all(sq)
        };
        check_grads(&build, Matrix::from_rows(&[&[0.5, -1.0]]));
    }

    #[test]
    fn mse_loss_value_and_grad() {
        let mut tape = Tape::new();
        let pred = tape.leaf(Matrix::column(&[1.0, 2.0]));
        let loss = tape.mse_loss(pred, Matrix::column(&[0.0, 0.0]));
        assert!((tape.value(loss).get(0, 0) - 2.5).abs() < 1e-12);
        tape.backward(loss);
        // d/dp mean((p - t)^2) = 2(p - t)/n
        assert!((tape.grad(pred).get(0, 0) - 1.0).abs() < 1e-12);
        assert!((tape.grad(pred).get(1, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn constants_collect_no_gradient() {
        let mut tape = Tape::new();
        let c = tape.constant(Matrix::scalar(3.0));
        let w = tape.leaf(Matrix::scalar(2.0));
        let p = tape.hadamard(c, w);
        let l = tape.sum_all(p);
        tape.backward(l);
        assert!(tape.try_grad(c).is_none());
        assert_eq!(tape.grad(w).get(0, 0), 3.0);
    }

    #[test]
    fn backward_is_rerunnable() {
        let mut tape = Tape::new();
        let w = tape.leaf(Matrix::scalar(2.0));
        let sq = tape.hadamard(w, w);
        let l = tape.sum_all(sq);
        tape.backward(l);
        let g1 = tape.grad(w).get(0, 0);
        tape.backward(l);
        let g2 = tape.grad(w).get(0, 0);
        assert_eq!(g1, g2, "gradients must reset between backward passes");
        assert_eq!(g1, 4.0);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_non_scalar() {
        let mut tape = Tape::new();
        let w = tape.leaf(Matrix::ones(2, 2));
        tape.backward(w);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::column(&[1000.0, 1000.0, 999.0]));
        let s = tape.softmax_col(a);
        let v = tape.value(s);
        assert!(v.as_slice().iter().all(|x| x.is_finite()));
        assert!((v.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tapes_move_across_threads() {
        let s = Arc::new(CsrMatrix::identity(2));
        let handle = std::thread::spawn(move || {
            let mut tape = Tape::new();
            let x = tape.leaf(Matrix::ones(2, 1));
            let h = tape.spmm(s, x);
            let l = tape.sum_all(h);
            tape.backward(l);
            tape.grad(x).clone()
        });
        let grad = handle.join().expect("worker thread");
        assert_eq!(grad, Matrix::ones(2, 1));
    }
}
