//! Max-heap over variables ordered by VSIDS activity.

use crate::lit::Var;

/// Binary max-heap keyed by an external activity array, with position
/// tracking so arbitrary variables can be re-ordered after activity bumps.
#[derive(Debug, Clone, Default)]
pub(crate) struct VarHeap {
    heap: Vec<Var>,
    /// `pos[v] == usize::MAX` means "not in heap".
    pos: Vec<usize>,
}

const NOT_IN_HEAP: usize = usize::MAX;

impl VarHeap {
    pub(crate) fn new() -> Self {
        VarHeap::default()
    }

    pub(crate) fn grow_to(&mut self, num_vars: usize) {
        if self.pos.len() < num_vars {
            self.pos.resize(num_vars, NOT_IN_HEAP);
        }
    }

    pub(crate) fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != NOT_IN_HEAP
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top.index()] = NOT_IN_HEAP;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Re-orders `v` after its activity increased.
    pub(crate) fn decrease_key(&mut self, v: Var, activity: &[f64]) {
        let p = self.pos[v.index()];
        if p != NOT_IN_HEAP {
            self.sift_up(p, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] <= activity[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < self.heap.len()
                && activity[self.heap[l].index()] > activity[self.heap[largest].index()]
            {
                largest = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r].index()] > activity[self.heap[largest].index()]
            {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index()] = a;
        self.pos[self.heap[b].index()] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = [1.0, 5.0, 3.0, 4.0, 2.0];
        let mut heap = VarHeap::new();
        heap.grow_to(5);
        for i in 0..5 {
            heap.insert(Var::from_index(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop_max(&activity))
            .map(Var::index)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
        assert!(heap.is_empty());
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = [1.0, 2.0];
        let mut heap = VarHeap::new();
        heap.grow_to(2);
        let v = Var::from_index(0);
        heap.insert(v, &activity);
        heap.insert(v, &activity);
        assert_eq!(heap.pop_max(&activity), Some(v));
        assert!(heap.pop_max(&activity).is_none());
    }

    #[test]
    fn decrease_key_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarHeap::new();
        heap.grow_to(3);
        for i in 0..3 {
            heap.insert(Var::from_index(i), &activity);
        }
        activity[0] = 10.0;
        heap.decrease_key(Var::from_index(0), &activity);
        assert_eq!(heap.pop_max(&activity), Some(Var::from_index(0)));
    }
}
