use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered densely from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Builds a variable from its dense index.
    pub fn from_index(index: usize) -> Self {
        Var(index as u32)
    }

    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `var * 2 + sign` where `sign == 1` means negated; this makes
/// literals directly usable as watch-list indices.
///
/// ```
/// use sat::{Lit, Var};
///
/// let v = Var::from_index(3);
/// let l = Lit::positive(v);
/// assert_eq!(!l, Lit::negative(v));
/// assert_eq!((!l).var(), v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: Var) -> Self {
        Lit((var.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = negated).
    pub fn new(var: Var, negated: bool) -> Self {
        Lit((var.0 << 1) | negated as u32)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive (non-negated).
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The watch-list / array index of this literal (`var*2 + sign`).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// Converts a DIMACS-style signed integer (non-zero) to a literal, where
    /// variable `n` maps to index `n - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `dimacs == 0`.
    pub fn from_dimacs(dimacs: i64) -> Self {
        assert!(dimacs != 0, "DIMACS literals are non-zero");
        let var = Var((dimacs.unsigned_abs() - 1) as u32);
        Lit::new(var, dimacs < 0)
    }

    /// Converts to a DIMACS-style signed integer.
    pub fn to_dimacs(self) -> i64 {
        let v = (self.0 >> 1) as i64 + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.0 >> 1)
        } else {
            write!(f, "!x{}", self.0 >> 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var::from_index(7);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::from_code(p.code()), p);
    }

    #[test]
    fn dimacs_conversion() {
        assert_eq!(Lit::from_dimacs(1), Lit::positive(Var(0)));
        assert_eq!(Lit::from_dimacs(-3), Lit::negative(Var(2)));
        assert_eq!(Lit::from_dimacs(-3).to_dimacs(), -3);
        assert_eq!(Lit::from_dimacs(12).to_dimacs(), 12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn display_forms() {
        let v = Var::from_index(2);
        assert_eq!(Lit::positive(v).to_string(), "x2");
        assert_eq!(Lit::negative(v).to_string(), "!x2");
        assert_eq!(v.to_string(), "x2");
    }
}
