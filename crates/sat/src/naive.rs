//! A deliberately simple DPLL reference solver.
//!
//! This module exists for the differential test battery: the CDCL core in
//! [`Solver`](crate::Solver) is heavily optimised (arena storage, watched
//! literals, clause learning, inprocessing), so its verdicts are
//! cross-checked against this independent implementation, which shares no
//! code or data structures with it. Recursion-free backtracking over a plain
//! `Vec<Vec<Lit>>` clause list with unit propagation only — slow, but small
//! enough to audit by eye.
//!
//! Not intended for production use; the API is deliberately minimal.

use crate::lit::Lit;
use crate::model::Model;

/// Verdict of [`solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NaiveResult {
    /// Satisfiable, with a witness assignment.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The node budget ran out before a verdict.
    Unknown,
}

impl NaiveResult {
    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            NaiveResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum V {
    True,
    False,
    Undef,
}

/// Decides satisfiability of `clauses` over `num_vars` variables by plain
/// DPLL (unit propagation + chronological backtracking), exploring at most
/// `node_budget` branch nodes. Literals must reference variables with index
/// `< num_vars`.
pub fn solve(num_vars: usize, clauses: &[Vec<Lit>], node_budget: u64) -> NaiveResult {
    // An empty clause is immediately unsatisfiable.
    if clauses.iter().any(|c| c.is_empty()) {
        return NaiveResult::Unsat;
    }
    let mut assign = vec![V::Undef; num_vars];
    // Explicit decision stack: (var, tried_second_phase).
    let mut decisions: Vec<(usize, bool)> = Vec::new();
    // Trail of assigned vars per depth for backtracking (depth 0 = units
    // implied before any decision).
    let mut trail: Vec<Vec<usize>> = vec![Vec::new()];
    let mut nodes = 0u64;

    fn lit_val(assign: &[V], l: Lit) -> V {
        match (assign[l.var().index()], l.is_positive()) {
            (V::Undef, _) => V::Undef,
            (V::True, true) | (V::False, false) => V::True,
            _ => V::False,
        }
    }

    // Unit propagation to fixpoint; returns false on conflict. Newly
    // assigned variables are appended to the current trail frame.
    fn propagate(assign: &mut [V], clauses: &[Vec<Lit>], frame: &mut Vec<usize>) -> bool {
        loop {
            let mut changed = false;
            for clause in clauses {
                let mut unassigned: Option<Lit> = None;
                let mut n_unassigned = 0;
                let mut satisfied = false;
                for &l in clause {
                    match lit_val(assign, l) {
                        V::True => {
                            satisfied = true;
                            break;
                        }
                        V::Undef => {
                            n_unassigned += 1;
                            unassigned = Some(l);
                        }
                        V::False => {}
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => return false, // all false: conflict
                    1 => {
                        let l = unassigned.unwrap();
                        assign[l.var().index()] = if l.is_positive() { V::True } else { V::False };
                        frame.push(l.var().index());
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return true;
            }
        }
    }

    // Initial propagation of unit clauses.
    let mut conflict = !propagate(&mut assign, clauses, &mut trail[0]);
    loop {
        if conflict {
            // Backtrack to the most recent decision with an untried phase.
            loop {
                match decisions.pop() {
                    None => return NaiveResult::Unsat,
                    Some((var, tried_second)) => {
                        let frame = trail.pop().expect("frame per decision");
                        for v in frame {
                            assign[v] = V::Undef;
                        }
                        if !tried_second {
                            // Flip to the second phase (False first, see below).
                            decisions.push((var, true));
                            let mut frame = vec![var];
                            assign[var] = V::True;
                            conflict = !propagate(&mut assign, clauses, &mut frame);
                            trail.push(frame);
                            break;
                        }
                    }
                }
            }
            continue;
        }
        // Pick the lowest-index unassigned variable.
        match (0..num_vars).find(|&v| assign[v] == V::Undef) {
            None => {
                let values = assign.iter().map(|&v| v == V::True).collect();
                return NaiveResult::Sat(Model::new(values));
            }
            Some(var) => {
                nodes += 1;
                if nodes > node_budget {
                    return NaiveResult::Unknown;
                }
                decisions.push((var, false));
                let mut frame = vec![var];
                assign[var] = V::False;
                conflict = !propagate(&mut assign, clauses, &mut frame);
                trail.push(frame);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i64) -> Lit {
        Lit::from_dimacs(n)
    }

    fn check_model(clauses: &[Vec<Lit>], m: &Model) {
        for c in clauses {
            assert!(c.iter().any(|&l| m.lit_value(l)), "clause {c:?} violated");
        }
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(matches!(solve(3, &[], 1000), NaiveResult::Sat(_)));
    }

    #[test]
    fn empty_clause_is_unsat() {
        assert_eq!(solve(1, &[vec![]], 1000), NaiveResult::Unsat);
    }

    #[test]
    fn unit_and_implications() {
        let clauses = vec![vec![lit(1)], vec![lit(-1), lit(2)], vec![lit(-2), lit(3)]];
        match solve(3, &clauses, 1000) {
            NaiveResult::Sat(m) => {
                check_model(&clauses, &m);
                assert!(m.values().iter().all(|&v| v));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_units_unsat() {
        let clauses = vec![vec![lit(1)], vec![lit(-1)]];
        assert_eq!(solve(1, &clauses, 1000), NaiveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_2_unsat() {
        // 3 pigeons, 2 holes.
        let p = |i: i64, j: i64| lit(i * 2 + j + 1);
        let mut clauses = Vec::new();
        for i in 0..3 {
            clauses.push((0..2).map(|j| p(i, j)).collect());
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![!p(i1, j), !p(i2, j)]);
                }
            }
        }
        assert_eq!(solve(6, &clauses, 100_000), NaiveResult::Unsat);
    }

    #[test]
    fn budget_exhaustion_returns_unknown() {
        // php(5,4) needs far more than 2 nodes.
        let p = |i: i64, j: i64| lit(i * 4 + j + 1);
        let mut clauses = Vec::new();
        for i in 0..5 {
            clauses.push((0..4).map(|j| p(i, j)).collect());
        }
        for j in 0..4 {
            for i1 in 0..5 {
                for i2 in (i1 + 1)..5 {
                    clauses.push(vec![!p(i1, j), !p(i2, j)]);
                }
            }
        }
        assert_eq!(solve(20, &clauses, 2), NaiveResult::Unknown);
    }

    #[test]
    fn xor_cycle_parity() {
        // x1^x2=1, x2^x3=1, x1^x3=1 is UNSAT (odd cycle).
        let mut clauses = Vec::new();
        for (a, b) in [(1, 2), (2, 3), (1, 3)] {
            clauses.push(vec![lit(a), lit(b)]);
            clauses.push(vec![lit(-a), lit(-b)]);
        }
        assert_eq!(solve(3, &clauses, 100_000), NaiveResult::Unsat);
    }
}
