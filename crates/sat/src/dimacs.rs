//! DIMACS CNF reader/writer for interoperability and test fixtures.

use crate::lit::Lit;
use std::fmt;

/// Error produced by [`parse_dimacs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Explanation of the failure.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DIMACS parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses DIMACS CNF text into `(num_vars, clauses)`.
///
/// The `p cnf` header is optional; the variable count is the maximum of the
/// declared count and the largest variable mentioned.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers or non-integer tokens.
pub fn parse_dimacs(text: &str) -> Result<(usize, Vec<Vec<Lit>>), ParseDimacsError> {
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut declared_vars = 0usize;
    let mut max_var = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(ParseDimacsError {
                    line: lineno,
                    message: "expected `p cnf <vars> <clauses>`".into(),
                });
            }
            declared_vars =
                parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseDimacsError {
                        line: lineno,
                        message: "invalid variable count".into(),
                    })?;
            continue;
        }
        for token in line.split_whitespace() {
            let value: i64 = token.parse().map_err(|_| ParseDimacsError {
                line: lineno,
                message: format!("invalid literal `{token}`"),
            })?;
            if value == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                max_var = max_var.max(value.unsigned_abs() as usize);
                current.push(Lit::from_dimacs(value));
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok((declared_vars.max(max_var), clauses))
}

/// Serializes clauses as DIMACS CNF text.
pub fn write_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", num_vars, clauses.len());
    for clause in clauses {
        for lit in clause {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};

    #[test]
    fn parse_simple_cnf() {
        let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let (vars, clauses) = parse_dimacs(text).unwrap();
        assert_eq!(vars, 3);
        assert_eq!(clauses.len(), 2);
        assert_eq!(clauses[0][1], Lit::from_dimacs(-2));
    }

    #[test]
    fn parse_without_header() {
        let (vars, clauses) = parse_dimacs("1 2 0\n-1 0\n").unwrap();
        assert_eq!(vars, 2);
        assert_eq!(clauses.len(), 2);
    }

    #[test]
    fn multiline_clause_and_trailing_clause() {
        let (_, clauses) = parse_dimacs("1 2\n3 0 -1 -2").unwrap();
        assert_eq!(clauses.len(), 2);
        assert_eq!(clauses[0].len(), 3);
        assert_eq!(clauses[1].len(), 2);
    }

    #[test]
    fn bad_token_is_error() {
        let err = parse_dimacs("1 x 0").unwrap_err();
        assert!(err.to_string().contains("invalid literal"));
    }

    #[test]
    fn bad_header_is_error() {
        assert!(parse_dimacs("p sat 3 2").is_err());
        assert!(parse_dimacs("p cnf nope 2").is_err());
    }

    #[test]
    fn round_trip_and_solve() {
        let text = "p cnf 2 2\n1 2 0\n-1 2 0\n";
        let (vars, clauses) = parse_dimacs(text).unwrap();
        let rewritten = write_dimacs(vars, &clauses);
        let (vars2, clauses2) = parse_dimacs(&rewritten).unwrap();
        assert_eq!(vars, vars2);
        assert_eq!(clauses, clauses2);

        let mut solver = Solver::new();
        solver.new_vars(vars);
        for clause in clauses {
            solver.add_clause(clause);
        }
        match solver.solve() {
            SolveResult::Sat(m) => assert!(m.value(crate::Var::from_index(1))),
            other => panic!("expected SAT, got {other:?}"),
        }
    }
}
