//! A from-scratch CDCL (conflict-driven clause learning) SAT solver.
//!
//! This is the attack engine of the ICNet reproduction: the oracle-guided
//! SAT attack in the `attack` crate drives this solver incrementally. The
//! implementation follows the MiniSat lineage:
//!
//! * an arena-allocated clause store (one flat `u32` buffer addressed by
//!   `ClauseRef` offsets) with compacting garbage collection instead of
//!   per-clause heap boxes,
//! * two-literal watching with blocker literals for fast unit propagation,
//! * VSIDS variable activity with a binary heap and phase saving,
//! * first-UIP conflict analysis with clause minimization,
//! * Luby-sequence restarts,
//! * learnt-clause database reduction driven by LBD and activity,
//! * incremental solving under assumptions with a conflict budget,
//! * an inprocessing pass ([`Solver::preprocess`]) doing root-level
//!   sweeping, subsumption, self-subsuming resolution, and budgeted
//!   failed-literal probing between incremental solves.
//!
//! The solver also exposes deterministic work counters ([`SolverStats`])
//! which the dataset pipeline uses as a reproducible runtime measure.
//!
//! # Example
//!
//! ```
//! use sat::{Lit, SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! // (a | b) & (!a | b) forces b.
//! solver.add_clause([Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause([Lit::negative(a), Lit::positive(b)]);
//! match solver.solve() {
//!     SolveResult::Sat(model) => assert!(model.value(b)),
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! ```

mod arena;
mod dimacs;
mod heap;
mod lit;
mod model;
pub mod naive;
mod simplify;
mod solver;
mod stats;

pub use dimacs::{parse_dimacs, write_dimacs, ParseDimacsError};
pub use lit::{Lit, Var};
pub use model::Model;
pub use solver::{OutOfBudget, SolveResult, Solver};
pub use stats::SolverStats;
