//! The CDCL search engine.

use crate::arena::{ClauseArena, ClauseRef, Watcher};
use crate::heap::VarHeap;
use crate::lit::{Lit, Var};
use crate::model::Model;
use crate::stats::SolverStats;
use std::time::Instant;

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found.
    Sat(Model),
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
}

impl SolveResult {
    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the result is [`SolveResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// Whether the result is [`SolveResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat)
    }
}

/// Which resource cap produced the most recent [`SolveResult::Unknown`]
/// (see [`Solver::out_of_budget`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutOfBudget {
    /// The conflict budget ([`Solver::set_conflict_budget`]) ran out.
    Conflicts,
    /// The wall-clock deadline ([`Solver::set_deadline`]) passed.
    Deadline,
    /// The logical-byte memory budget ([`Solver::set_memory_budget`])
    /// stayed exhausted even after staged learnt-DB reduction.
    Memory,
}

/// Tri-state assignment encoding: truth values are per-*variable*, and a
/// literal's value is the variable's byte XOR the literal's sign bit, so
/// `value()` is branch-free. Any byte `>= 2` reads as "unassigned"
/// (`VAL_UNDEF ^ sign` is 2 or 3).
pub(crate) const VAL_TRUE: u8 = 0;
pub(crate) const VAL_FALSE: u8 = 1;
pub(crate) const VAL_UNDEF: u8 = 2;

const VAR_DECAY: f64 = 0.95;
const CLAUSE_DECAY: f32 = 0.999;
const VAR_RESCALE_LIMIT: f64 = 1e100;
/// Clause activities live in the arena as `f32`, so they rescale at a much
/// lower magnitude than the `f64` variable activities.
const CLA_RESCALE_LIMIT: f32 = 1e20;
const LUBY_UNIT: u64 = 100;
/// Conflicts between wall-clock deadline checks: `Instant::now` costs tens
/// of nanoseconds, so polling it every conflict would be measurable on easy
/// queries; every 64 conflicts the overhead is noise while a runaway solve
/// still stops within milliseconds of its deadline.
const DEADLINE_CHECK_INTERVAL: u64 = 64;
/// Propagations between wall-clock deadline checks. A propagation-dominated
/// solve (large miters driven almost entirely by unit propagation) can
/// generate arbitrarily few conflicts, so the conflict-interval check above
/// may never fire; the main loop therefore also polls the clock every this
/// many propagations. At tens of millions of propagations per second the
/// poll amortises to noise while bounding overshoot to milliseconds.
const DEADLINE_CHECK_PROPS: u64 = 8192;
/// Emit one `solver.progress` observability snapshot every this many
/// propagation-axis deadline polls (~1M propagations between snapshots).
const SNAPSHOT_POLL_INTERVAL: u64 = 128;
/// Also snapshot every this many conflicts within a single solve.
const SNAPSHOT_CONFLICT_INTERVAL: u64 = 4096;
/// Default arena-compaction trigger: collect once this fraction of the
/// arena is tombstones or shrunk tails (see [`Solver::set_gc_fraction`]).
const DEFAULT_GC_FRACTION: f64 = 0.25;
/// Logical bytes accounted per variable: assignment byte, decision level,
/// reason slot, activity, saved phase, and seen mark. The watch-list `Vec`
/// headers are deliberately ignored — they are capacity, not content.
const VAR_BYTES: u64 = 26;
/// Logical bytes accounted per clause header for its two watchers (a
/// `Watcher` is a `ClauseRef` + blocker `Lit`, 8 bytes each).
const WATCHER_BYTES_PER_CLAUSE: u64 = 16;
/// Memory-pressure floor for the learnt-clause cap: degradation never
/// squeezes `max_learnts` below this, so search keeps *some* learning even
/// in the last stage before an [`OutOfBudget::Memory`] verdict.
const MIN_MAX_LEARNTS: usize = 64;

/// An incremental CDCL SAT solver. See the [crate docs](crate) for the
/// feature list and an example.
#[derive(Debug)]
pub struct Solver {
    pub(crate) arena: ClauseArena,
    pub(crate) watches: Vec<Vec<Watcher>>,
    pub(crate) assign: Vec<u8>,
    pub(crate) level: Vec<u32>,
    pub(crate) reason: Vec<Option<ClauseRef>>,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    pub(crate) qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f32,
    order: VarHeap,
    saved_phase: Vec<bool>,
    seen: Vec<bool>,
    pub(crate) ok: bool,
    pub(crate) stats: SolverStats,
    conflict_budget: Option<u64>,
    deadline: Option<Instant>,
    /// Logical-byte cap enforced by `check_memory` (see
    /// [`Solver::set_memory_budget`]).
    mem_budget: Option<u64>,
    /// Shared logical-byte meter this solver accounts its arena, watcher,
    /// and per-variable storage to.
    meter: budget::MemoryMeter,
    /// Bytes currently accounted to `meter`, so re-accounting is a delta.
    accounted_bytes: u64,
    /// Why the most recent solve returned [`SolveResult::Unknown`].
    out_of_budget: Option<OutOfBudget>,
    /// Optional watchdog pulse, beaten at every deadline-poll site.
    heartbeat: Option<budget::Heartbeat>,
    max_learnts: usize,
    pub(crate) num_learnt_live: usize,
    gc_fraction: f64,
    /// Failed-literal probing budget (propagations) per `preprocess` call.
    pub(crate) probe_budget: u64,
    /// Round-robin cursor so successive `preprocess` calls probe different
    /// variables; advances deterministically.
    pub(crate) probe_cursor: usize,
    /// Scratch for `analyze` (kept across conflicts to avoid reallocation).
    learnt_buf: Vec<Lit>,
    analyze_clear: Vec<Var>,
    lbd_buf: Vec<u32>,
    /// Every clause exactly as the caller passed it, before any in-solver
    /// simplification. Debug builds check each returned model against this
    /// list, so no arena, GC, or preprocessing bug can silently ship an
    /// unsound model (release builds skip both the memory and the check).
    #[cfg(debug_assertions)]
    original: Vec<Vec<Lit>>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with no variables or clauses.
    pub fn new() -> Self {
        Solver {
            arena: ClauseArena::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarHeap::new(),
            saved_phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            conflict_budget: None,
            deadline: None,
            mem_budget: None,
            meter: budget::MemoryMeter::new(),
            accounted_bytes: 0,
            out_of_budget: None,
            heartbeat: None,
            max_learnts: 4000,
            num_learnt_live: 0,
            gc_fraction: DEFAULT_GC_FRACTION,
            probe_budget: 20_000,
            probe_cursor: 0,
            learnt_buf: Vec::new(),
            analyze_clear: Vec::new(),
            lbd_buf: Vec::new(),
            #[cfg(debug_assertions)]
            original: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assign.len());
        self.assign.push(VAL_UNDEF);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(self.assign.len());
        self.account_memory();
        v
    }

    /// Allocates `n` fresh variables and returns them in order.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses currently alive (problem + learnt).
    pub fn num_clauses(&self) -> usize {
        self.arena
            .refs()
            .filter(|&c| !self.arena.is_deleted(c))
            .count()
    }

    /// Total clause slots including tombstoned (deleted) clauses — O(1),
    /// cheap enough for per-iteration observability snapshots where
    /// [`Solver::num_clauses`]'s O(n) scan would not be.
    pub fn num_clauses_total(&self) -> usize {
        self.arena.num_headers()
    }

    /// Accumulated work counters.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Caps the number of conflicts any single future [`Solver::solve`] call
    /// may spend; `None` removes the cap. When the budget is exhausted the
    /// call returns [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Installs a wall-clock deadline for future [`Solver::solve`] calls;
    /// `None` removes it. The deadline is polled once at solve entry and
    /// then periodically on both work axes — every few conflicts and every
    /// few thousand propagations, so even a conflict-free solve stops within
    /// a bounded interval — and costs nothing on the hot path; when it
    /// passes, the in-flight call returns [`SolveResult::Unknown`] — exactly
    /// the budget-exhausted verdict — and the solver remains usable.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Caps the *logical* bytes (see [`budget::MemoryMeter`]) the solver's
    /// clause arena, watchers, and per-variable storage may occupy; `None`
    /// removes the cap. Enforcement is staged: when the meter crosses the
    /// budget at a conflict boundary, the solver first applies aggressive
    /// learnt-DB reduction pressure (halving the learnt cap down to a
    /// floor, reducing, and force-compacting the arena); only if the
    /// formula still does not fit does the call return
    /// [`SolveResult::Unknown`] with [`OutOfBudget::Memory`] as its
    /// [`Solver::out_of_budget`] cause. Logical bytes are a pure function
    /// of the search trajectory, so the verdict is deterministic and
    /// machine-independent — label-safe, unlike an RSS cap.
    pub fn set_memory_budget(&mut self, bytes: Option<u64>) {
        self.mem_budget = bytes;
    }

    /// Registers an external [`budget::MemoryMeter`] to account this
    /// solver's storage to (for callers that pool one meter across the
    /// solver and the structures feeding it). The solver's current
    /// footprint moves from the old meter to the new one.
    pub fn set_meter(&mut self, meter: budget::MemoryMeter) {
        self.meter.free(self.accounted_bytes);
        self.meter = meter;
        self.meter.alloc(self.accounted_bytes);
    }

    /// The meter this solver accounts to (peak usage via
    /// [`budget::MemoryMeter::high_water`]).
    pub fn meter(&self) -> &budget::MemoryMeter {
        &self.meter
    }

    /// Registers a watchdog pulse, beaten at every deadline-poll site
    /// (both the conflict and the propagation axis), so a stall monitor
    /// can tell a hard-but-progressing solve from a wedged one.
    pub fn set_heartbeat(&mut self, heartbeat: Option<budget::Heartbeat>) {
        self.heartbeat = heartbeat;
    }

    /// Which resource cap caused the most recent [`SolveResult::Unknown`]
    /// (`None` when the last solve was decided, or was cut short by
    /// something other than a budget, e.g. an injected fault).
    pub fn out_of_budget(&self) -> Option<OutOfBudget> {
        self.out_of_budget
    }

    /// Re-derives the solver's logical footprint and pushes the delta to
    /// the meter. Called from every site that grows or compacts the big
    /// allocations; O(1).
    fn account_memory(&mut self) {
        let bytes = self.arena.logical_bytes()
            + self.arena.num_headers() as u64 * WATCHER_BYTES_PER_CLAUSE
            + self.assign.len() as u64 * VAR_BYTES;
        self.meter.resize(self.accounted_bytes, bytes);
        self.accounted_bytes = bytes;
    }

    /// Memory-budget enforcement at a conflict boundary. Returns `false`
    /// when the solve must give up with [`OutOfBudget::Memory`]; `true`
    /// when within budget, possibly after shedding learnt clauses. The
    /// `budget.exceed` fault site forces the over-budget path so chaos
    /// tests can exercise degradation without a real memory spike.
    fn check_memory(&mut self) -> bool {
        let Some(cap) = self.mem_budget else {
            return true;
        };
        if let Some(fault) = faults::inject("budget.exceed") {
            match fault.action {
                // A forced trip: behave as if even full degradation could
                // not fit the formula under the budget.
                faults::Action::Unknown => {
                    self.stats.mem_pressure_events += 1;
                    return false;
                }
                faults::Action::Panic => panic!(
                    "injected fault: budget.exceed panic (occurrence {})",
                    fault.occurrence
                ),
                _ => fault.unsupported("budget.exceed"),
            }
        }
        if self.meter.current() <= cap {
            return true;
        }
        // Stage 1: shed learnt clauses. Halve the cap (respecting the
        // floor), reduce, and force a compaction regardless of the wasted
        // fraction — tombstones do not give bytes back until collected.
        self.max_learnts = (self.num_learnt_live / 2).max(MIN_MAX_LEARNTS);
        self.reduce_db();
        // reduce_db grows max_learnts by 10% for the next cycle; under
        // memory pressure that relief is cancelled so pressure stays on.
        self.max_learnts = self.max_learnts.saturating_sub(self.max_learnts / 11);
        let fraction = self.gc_fraction;
        self.gc_fraction = 0.0;
        self.maybe_gc();
        self.gc_fraction = fraction;
        self.stats.mem_pressure_events += 1;
        // Stage 2: if the *problem* clauses alone still exceed the budget,
        // no amount of learnt shedding will fit — give up deterministically.
        self.meter.current() <= cap
    }

    /// Tunes when the clause arena is compacted: collection runs once the
    /// wasted (tombstoned/shrunk) fraction of the arena exceeds `fraction`.
    /// `0.0` collects after every deletion wave; anything `> 1.0` disables
    /// collection. Compaction only relocates clauses — it never reorders
    /// them or their watchers — so search behaviour, counters, and models
    /// are identical for every setting (pinned by the determinism tests).
    pub fn set_gc_fraction(&mut self, fraction: f64) {
        self.gc_fraction = fraction;
    }

    /// Caps the propagation work each [`Solver::preprocess`] call may spend
    /// on failed-literal probing. `0` disables probing.
    pub fn set_probe_budget(&mut self, propagations: u64) {
        self.probe_budget = propagations;
    }

    pub(crate) fn past_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The literal's truth value: [`VAL_TRUE`], [`VAL_FALSE`], or `>= 2`
    /// for unassigned (see the encoding note on the constants).
    #[inline]
    pub(crate) fn value(&self, lit: Lit) -> u8 {
        self.assign[(lit.0 >> 1) as usize] ^ (lit.0 as u8 & 1)
    }

    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause to the formula.
    ///
    /// Duplicated literals are removed and tautologies are dropped silently.
    /// Returns `false` when the formula has become trivially unsatisfiable
    /// (an empty clause was derived), `true` otherwise. Adding a clause
    /// resets the search to decision level 0.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        #[cfg(debug_assertions)]
        self.original.push(lits.clone());
        lits.sort();
        lits.dedup();
        // Tautology / level-0 simplification.
        let mut simplified = Vec::with_capacity(lits.len());
        for (i, &l) in lits.iter().enumerate() {
            if i + 1 < lits.len() && lits[i + 1] == !l {
                return true; // tautology: contains l and !l (adjacent after sort)
            }
            match self.value(l) {
                VAL_TRUE => return true, // satisfied at level 0
                VAL_FALSE => continue,   // falsified at level 0: drop
                _ => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(&simplified, false, 0);
                true
            }
        }
    }

    pub(crate) fn attach_clause(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.arena.alloc(lits, learnt);
        self.arena.set_lbd(cref, lbd);
        self.arena.set_activity(cref, self.cla_inc);
        let w0 = Watcher {
            clause: cref,
            blocker: lits[1],
        };
        let w1 = Watcher {
            clause: cref,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).code()].push(w0);
        self.watches[(!lits[1]).code()].push(w1);
        if learnt {
            self.num_learnt_live += 1;
            self.stats.learnt_clauses += 1;
        }
        self.account_memory();
        cref
    }

    /// Tombstones a clause and keeps the live-clause accounting straight.
    /// The arena words (and any watchers still pointing at the tombstone)
    /// are reclaimed by the next [`Solver::maybe_gc`].
    pub(crate) fn free_clause(&mut self, cref: ClauseRef) {
        if self.arena.is_learnt(cref) {
            self.num_learnt_live -= 1;
        }
        self.arena.free(cref);
        self.stats.deleted_clauses += 1;
    }

    pub(crate) fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert!(self.value(lit) >= VAL_UNDEF);
        let v = lit.var().index();
        self.assign[v] = lit.0 as u8 & 1; // positive => VAL_TRUE, negative => VAL_FALSE
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation; returns the conflicting clause, if any.
    pub(crate) fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.value(w.blocker) == VAL_TRUE {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.clause;
                if self.arena.is_deleted(cref) {
                    continue; // drop tombstoned watcher
                }
                let false_lit = !p;
                // Normalize so the false literal sits at position 1.
                if self.arena.lit(cref, 0) == false_lit {
                    self.arena.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.arena.lit(cref, 1), false_lit);
                let first = self.arena.lit(cref, 0);
                let new_watch = Watcher {
                    clause: cref,
                    blocker: first,
                };
                if first != w.blocker && self.value(first) == VAL_TRUE {
                    ws[j] = new_watch;
                    j += 1;
                    continue;
                }
                // Search for a non-false literal to watch instead.
                let len = self.arena.len(cref);
                for k in 2..len {
                    let lk = self.arena.lit(cref, k);
                    if self.value(lk) != VAL_FALSE {
                        self.arena.swap_lits(cref, 1, k);
                        self.watches[(!lk).code()].push(new_watch);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting under the current trail.
                ws[j] = new_watch;
                j += 1;
                if self.value(first) == VAL_FALSE {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                }
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    pub(crate) fn cancel_until(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let bound = self.trail_lim[target_level as usize];
        for idx in (bound..self.trail.len()).rev() {
            let lit = self.trail[idx];
            let v = lit.var();
            self.saved_phase[v.index()] = lit.is_positive();
            self.assign[v.index()] = VAL_UNDEF;
            self.reason[v.index()] = None;
            if !self.order.contains(v) {
                self.order.insert(v, &self.activity);
            }
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > VAR_RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.decrease_key(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let act = self.arena.activity(cref) + self.cla_inc;
        self.arena.set_activity(cref, act);
        if act > CLA_RESCALE_LIMIT {
            let refs: Vec<ClauseRef> = self.arena.refs().collect();
            for c in refs {
                if !self.arena.is_deleted(c) {
                    let scaled = self.arena.activity(c) * 1e-20;
                    self.arena.set_activity(c, scaled);
                }
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Fills `self.learnt_buf` with the learnt
    /// clause (asserting literal first) and returns the backtrack level and
    /// the clause's literal block distance.
    fn analyze(&mut self, mut conflict: ClauseRef) -> (u32, u32) {
        let mut learnt = std::mem::take(&mut self.learnt_buf);
        let mut to_clear = std::mem::take(&mut self.analyze_clear);
        learnt.clear();
        to_clear.clear();
        learnt.push(Lit(0)); // placeholder for the asserting literal

        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current_level = self.decision_level();

        loop {
            if self.arena.is_learnt(conflict) {
                self.bump_clause(conflict);
            }
            let len = self.arena.len(conflict);
            let start = if p.is_none() { 0 } else { 1 };
            for k in start..len {
                let q = self.arena.lit(conflict, k);
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.bump_var(v);
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    if self.level[v.index()] >= current_level {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next trail literal that contributed to the conflict.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                break;
            }
            conflict = self.reason[lit.var().index()].expect("non-decision on conflict path");
        }
        learnt[0] = !p.expect("conflict analysis found a UIP");

        // Cheap clause minimization: drop literals implied by the rest.
        let mut w = 1;
        for r in 1..learnt.len() {
            let l = learnt[r];
            if !self.literal_redundant(l) {
                learnt[w] = l;
                w += 1;
            }
        }
        learnt.truncate(w);

        for &v in &to_clear {
            self.seen[v.index()] = false;
        }

        // Compute backtrack level and move its literal into slot 1.
        let backtrack = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };

        // Literal block distance = number of distinct decision levels.
        let mut levels = std::mem::take(&mut self.lbd_buf);
        levels.clear();
        levels.extend(learnt.iter().map(|l| self.level[l.var().index()]));
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;
        self.lbd_buf = levels;

        self.learnt_buf = learnt;
        self.analyze_clear = to_clear;
        (backtrack, lbd)
    }

    /// A learnt literal is redundant if its reason clause's other literals
    /// are all already marked `seen` (i.e. already in the learnt clause or on
    /// the conflict path) or assigned at level 0.
    fn literal_redundant(&self, lit: Lit) -> bool {
        let Some(reason) = self.reason[lit.var().index()] else {
            return false;
        };
        (1..self.arena.len(reason)).all(|k| {
            let q = self.arena.lit(reason, k);
            self.seen[q.var().index()] || self.level[q.var().index()] == 0
        })
    }

    fn reduce_db(&mut self) {
        // Collect live learnt clauses sorted worst-first.
        let mut candidates: Vec<ClauseRef> = self
            .arena
            .refs()
            .filter(|&c| {
                self.arena.is_learnt(c)
                    && !self.arena.is_deleted(c)
                    && self.arena.len(c) > 2
                    && !self.is_locked(c)
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            self.arena.lbd(b).cmp(&self.arena.lbd(a)).then(
                self.arena
                    .activity(a)
                    .partial_cmp(&self.arena.activity(b))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let to_delete = candidates.len() / 2;
        for &c in candidates.iter().take(to_delete) {
            self.free_clause(c);
        }
        self.max_learnts += self.max_learnts / 10;
    }

    fn is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.arena.lit(cref, 0);
        self.value(first) == VAL_TRUE && self.reason[first.var().index()] == Some(cref)
    }

    /// Compacts the clause arena when enough of it is tombstones, rewriting
    /// every watcher and reason reference through the relocation map.
    /// Collection preserves clause order, literal order, and watcher order,
    /// so search behaviour is identical whether or not (and whenever) it
    /// runs — see the determinism tests.
    pub(crate) fn maybe_gc(&mut self) {
        if self.arena.wasted_fraction() <= self.gc_fraction {
            return;
        }
        let map = self.arena.collect();
        for ws in &mut self.watches {
            ws.retain_mut(|w| match map.remap(w.clause) {
                Some(nc) => {
                    w.clause = nc;
                    true
                }
                None => false,
            });
        }
        for slot in &mut self.reason {
            if let Some(c) = *slot {
                // A reason clause can only have been tombstoned for a
                // level-0 assignment (reduce_db never frees locked clauses),
                // and level-0 assignments never need their reason again.
                *slot = map.remap(c);
            }
        }
        self.account_memory();
    }

    /// Rebuilds every watch list from the live clauses, in arena order.
    pub(crate) fn rebuild_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        let Solver { arena, watches, .. } = self;
        let mut it = arena.refs();
        for cref in &mut it {
            if arena.is_deleted(cref) {
                continue;
            }
            let (l0, l1) = (arena.lit(cref, 0), arena.lit(cref, 1));
            watches[(!l0).code()].push(Watcher {
                clause: cref,
                blocker: l1,
            });
            watches[(!l1).code()].push(Watcher {
                clause: cref,
                blocker: l0,
            });
        }
    }

    /// Simplifies the clause database using the level-0 assignment: clauses
    /// satisfied by a root-level literal are deleted and false root-level
    /// literals are removed from the remaining clauses. Watch lists are
    /// rebuilt. Sound and complete: the formula stays equisatisfiable.
    ///
    /// Useful between incremental solves that add many unit clauses (the
    /// SAT attack fixes hundreds of inputs/outputs per DIP), which otherwise
    /// leave permanently satisfied clauses clogging propagation. For the
    /// heavier pass that also subsumes, strengthens, and probes, see
    /// [`Solver::preprocess`].
    pub fn simplify(&mut self) {
        if !self.ok {
            return;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return;
        }
        self.root_sweep();
        self.rebuild_watches();
        self.maybe_gc();
    }

    /// Deletes clauses satisfied at level 0 and strips false level-0
    /// literals in place. Watch lists are stale afterwards; the caller must
    /// rebuild them before propagating again.
    pub(crate) fn root_sweep(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let refs: Vec<ClauseRef> = self.arena.refs().collect();
        for cref in refs {
            if self.arena.is_deleted(cref) {
                continue;
            }
            let len = self.arena.len(cref);
            if (0..len).any(|k| {
                let l = self.arena.lit(cref, k);
                self.value(l) == VAL_TRUE && self.level[l.var().index()] == 0
            }) {
                self.free_clause(cref);
                continue;
            }
            // Compact surviving literals to the front.
            let mut w = 0;
            for k in 0..len {
                let l = self.arena.lit(cref, k);
                if !(self.value(l) == VAL_FALSE && self.level[l.var().index()] == 0) {
                    if w != k {
                        let lw = self.arena.lit(cref, k);
                        self.arena.set_lit(cref, w, lw);
                    }
                    w += 1;
                }
            }
            if w < len {
                debug_assert!(
                    w >= 2,
                    "unit/empty clauses cannot survive level-0 propagation to fixpoint"
                );
                self.arena.shrink(cref, w);
            }
        }
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// Assumptions act like temporary unit clauses: the result is relative to
    /// them, and the solver state remains reusable afterwards (clauses can be
    /// added and `solve*` called again).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.out_of_budget = None;
        if let Some(fault) = faults::inject("sat.solve") {
            match fault.action {
                faults::Action::Panic => panic!(
                    "injected fault: sat.solve panic (occurrence {})",
                    fault.occurrence
                ),
                // A spurious indeterminate answer, as a flaky solver or an
                // external deadline race would produce.
                faults::Action::Unknown => return SolveResult::Unknown,
                _ => fault.unsupported("sat.solve"),
            }
        }
        let result = self.solve_inner(assumptions);
        #[cfg(debug_assertions)]
        if let SolveResult::Sat(model) = &result {
            self.assert_model_sound(model, assumptions);
        }
        // One snapshot per solve keeps short solves visible in traces that
        // never reach the periodic in-loop snapshot thresholds.
        if obs::enabled() {
            self.emit_snapshot();
        }
        result
    }

    /// Model-soundness invariant (debug builds only): every model returned
    /// by the solver must satisfy every clause exactly as the caller passed
    /// it — *before* any dedup, strengthening, subsumption, or arena GC. A
    /// corrupted arena or an unsound simplification therefore panics here
    /// instead of shipping a wrong label.
    #[cfg(debug_assertions)]
    fn assert_model_sound(&self, model: &Model, assumptions: &[Lit]) {
        for clause in &self.original {
            assert!(
                clause.iter().any(|&l| model.lit_value(l)),
                "model violates original clause {clause:?} (arena or simplification corruption)"
            );
        }
        for &a in assumptions {
            assert!(model.lit_value(a), "model violates assumption {a}");
        }
    }

    /// Test hook (debug builds only): flips the sign of the first literal of
    /// the first live clause *without* recording the change in the original
    /// clause list, simulating arena corruption. The next SAT verdict then
    /// trips the model-soundness assertion.
    #[cfg(debug_assertions)]
    #[doc(hidden)]
    pub fn debug_corrupt_first_clause(&mut self) {
        let cref = self
            .arena
            .refs()
            .find(|&c| !self.arena.is_deleted(c))
            .expect("a live clause to corrupt");
        let flipped = !self.arena.lit(cref, 0);
        self.arena.set_lit(cref, 0, flipped);
        self.rebuild_watches();
    }

    /// Record a `solver.progress` observability snapshot of the counters.
    fn emit_snapshot(&self) {
        obs::emit(obs::EventKind::SolverProgress {
            decisions: self.stats.decisions,
            propagations: self.stats.propagations,
            conflicts: self.stats.conflicts,
            restarts: self.stats.restarts,
            learnt_live: self.num_learnt_live as u64,
        });
    }

    fn solve_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.solves += 1;
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.past_deadline() {
            self.out_of_budget = Some(OutOfBudget::Deadline);
            return SolveResult::Unknown;
        }
        if !self.check_memory() {
            // The formula alone does not fit the budget: no search step can
            // shrink it, so give up before spending any work.
            self.out_of_budget = Some(OutOfBudget::Memory);
            return SolveResult::Unknown;
        }
        if let Some(hb) = &self.heartbeat {
            hb.beat();
        }
        self.cancel_until(0);
        // Seed the order heap with every unassigned variable.
        for i in 0..self.assign.len() {
            let v = Var::from_index(i);
            if self.assign[i] == VAL_UNDEF && !self.order.contains(v) {
                self.order.insert(v, &self.activity);
            }
        }

        let budget_start = self.stats.conflicts;
        let mut restart_count = 0u64;
        let mut conflicts_until_restart = luby(restart_count) * LUBY_UNIT;
        let mut conflicts_this_restart = 0u64;
        let mut next_deadline_poll = self.stats.propagations + DEADLINE_CHECK_PROPS;
        let mut deadline_polls = 0u64;

        loop {
            // Wall-clock poll on the propagation axis: a conflict-free solve
            // never reaches the conflict-interval check below, so the
            // deadline must also be enforced here or a propagation-dominated
            // query can overshoot it without bound.
            if self.stats.propagations >= next_deadline_poll {
                next_deadline_poll = self.stats.propagations + DEADLINE_CHECK_PROPS;
                deadline_polls += 1;
                if let Some(hb) = &self.heartbeat {
                    hb.beat();
                }
                if self.past_deadline() {
                    self.cancel_until(0);
                    self.out_of_budget = Some(OutOfBudget::Deadline);
                    return SolveResult::Unknown;
                }
                if deadline_polls.is_multiple_of(SNAPSHOT_POLL_INTERVAL) && obs::enabled() {
                    self.emit_snapshot();
                }
            }
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                let (backtrack, lbd) = self.analyze(conflict);
                // Never backtrack past the assumption levels.
                self.cancel_until(backtrack);
                if self.learnt_buf.len() == 1 {
                    // Asserting unit at level 0 context of its backtrack level.
                    let unit = self.learnt_buf[0];
                    match self.value(unit) {
                        VAL_FALSE => {
                            self.ok = false;
                            return SolveResult::Unsat;
                        }
                        VAL_TRUE => {}
                        _ => self.unchecked_enqueue(unit, None),
                    }
                } else {
                    let asserting = self.learnt_buf[0];
                    let learnt = std::mem::take(&mut self.learnt_buf);
                    let cref = self.attach_clause(&learnt, true, lbd);
                    self.learnt_buf = learnt;
                    self.unchecked_enqueue(asserting, Some(cref));
                }
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLAUSE_DECAY;

                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts - budget_start >= budget {
                        self.cancel_until(0);
                        self.out_of_budget = Some(OutOfBudget::Conflicts);
                        return SolveResult::Unknown;
                    }
                }
                if (self.stats.conflicts - budget_start).is_multiple_of(DEADLINE_CHECK_INTERVAL) {
                    if let Some(hb) = &self.heartbeat {
                        hb.beat();
                    }
                    if self.past_deadline() {
                        self.cancel_until(0);
                        self.out_of_budget = Some(OutOfBudget::Deadline);
                        return SolveResult::Unknown;
                    }
                }
                if !self.check_memory() {
                    self.cancel_until(0);
                    self.out_of_budget = Some(OutOfBudget::Memory);
                    return SolveResult::Unknown;
                }
                if (self.stats.conflicts - budget_start).is_multiple_of(SNAPSHOT_CONFLICT_INTERVAL)
                    && obs::enabled()
                {
                    self.emit_snapshot();
                }
                if self.num_learnt_live > self.max_learnts {
                    self.reduce_db();
                    self.maybe_gc();
                }
                if conflicts_this_restart >= conflicts_until_restart {
                    self.stats.restarts += 1;
                    restart_count += 1;
                    conflicts_this_restart = 0;
                    conflicts_until_restart = luby(restart_count) * LUBY_UNIT;
                    self.cancel_until(0);
                }
            } else {
                // No conflict: extend with assumptions first, then decide.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let p = assumptions[dl];
                    match self.value(p) {
                        VAL_TRUE => {
                            // Already satisfied: open a dummy level so the
                            // assumption index advances.
                            self.trail_lim.push(self.trail.len());
                        }
                        VAL_FALSE => {
                            self.cancel_until(0);
                            return SolveResult::Unsat;
                        }
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        let model =
                            Model::new(self.assign.iter().map(|&a| a == VAL_TRUE).collect());
                        self.cancel_until(0);
                        return SolveResult::Sat(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        let lit = Lit::new(v, !self.saved_phase[v.index()]);
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(lit, None);
                    }
                }
            }
        }
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v.index()] == VAL_UNDEF {
                return Some(v);
            }
        }
        None
    }

    /// Test-only access to the learnt-clause cap (forces frequent DB
    /// reductions).
    #[cfg(test)]
    pub(crate) fn set_max_learnts(&mut self, n: usize) {
        self.max_learnts = n;
    }
}

impl Drop for Solver {
    fn drop(&mut self) {
        // Give the accounted footprint back so a meter shared across
        // consecutive solvers (one attack = many queries) stays balanced.
        self.meter.free(self.accounted_bytes);
    }
}

impl Clone for Solver {
    fn clone(&self) -> Self {
        let cloned = Solver {
            arena: self.arena.clone(),
            watches: self.watches.clone(),
            assign: self.assign.clone(),
            level: self.level.clone(),
            reason: self.reason.clone(),
            trail: self.trail.clone(),
            trail_lim: self.trail_lim.clone(),
            qhead: self.qhead,
            activity: self.activity.clone(),
            var_inc: self.var_inc,
            cla_inc: self.cla_inc,
            order: self.order.clone(),
            saved_phase: self.saved_phase.clone(),
            seen: self.seen.clone(),
            ok: self.ok,
            stats: self.stats,
            conflict_budget: self.conflict_budget,
            deadline: self.deadline,
            mem_budget: self.mem_budget,
            meter: self.meter.clone(),
            accounted_bytes: self.accounted_bytes,
            out_of_budget: self.out_of_budget,
            heartbeat: self.heartbeat.clone(),
            max_learnts: self.max_learnts,
            num_learnt_live: self.num_learnt_live,
            gc_fraction: self.gc_fraction,
            probe_budget: self.probe_budget,
            probe_cursor: self.probe_cursor,
            learnt_buf: self.learnt_buf.clone(),
            analyze_clear: self.analyze_clear.clone(),
            lbd_buf: self.lbd_buf.clone(),
            #[cfg(debug_assertions)]
            original: self.original.clone(),
        };
        // The clone shares the meter handle; its footprint is a second copy
        // of every buffer, which must be accounted (and is freed again by
        // the clone's own Drop).
        cloned.meter.alloc(cloned.accounted_bytes);
        cloned
    }
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,...
fn luby(i: u64) -> u64 {
    // Find the finite subsequence containing index i.
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut i = i;
    while size - 1 != i {
        size = (size - 1) >> 1;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i64) -> Lit {
        Lit::from_dimacs(n)
    }

    fn solver_with_vars(n: usize) -> Solver {
        let mut s = Solver::new();
        s.new_vars(n);
        s
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn single_unit_clause() {
        let mut s = solver_with_vars(1);
        s.add_clause([lit(1)]);
        match s.solve() {
            SolveResult::Sat(m) => assert!(m.value(Var::from_index(0))),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = solver_with_vars(1);
        assert!(s.add_clause([lit(1)]));
        assert!(!s.add_clause([lit(-1)]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn simple_implication_chain() {
        // x1, x1->x2, x2->x3 ... forces all true.
        let mut s = solver_with_vars(10);
        s.add_clause([lit(1)]);
        for i in 1..10i64 {
            s.add_clause([lit(-i), lit(i + 1)]);
        }
        match s.solve() {
            SolveResult::Sat(m) => {
                for i in 0..10 {
                    assert!(m.value(Var::from_index(i)));
                }
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    fn pigeonhole(n: i64, h: i64) -> Solver {
        let mut s = solver_with_vars((n * h) as usize);
        let p = |i: i64, j: i64| lit(i * h + j + 1);
        for i in 0..n {
            let clause: Vec<Lit> = (0..h).map(|j| p(i, j)).collect();
            s.add_clause(clause);
        }
        for j in 0..h {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([!p(i1, j), !p(i2, j)]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        assert!(pigeonhole(3, 2).solve().is_unsat());
    }

    #[test]
    fn pigeonhole_5_into_4_is_unsat() {
        let mut s = pigeonhole(5, 4);
        assert!(s.solve().is_unsat());
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = solver_with_vars(2);
        assert!(s.add_clause([lit(1), lit(-1)]));
        assert!(s.add_clause([lit(2), lit(1), lit(-2)]));
        assert!(s.solve().is_sat());
        assert_eq!(s.num_clauses(), 0);
    }

    #[test]
    fn duplicate_literals_are_merged() {
        let mut s = solver_with_vars(2);
        s.add_clause([lit(1), lit(1), lit(2)]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = solver_with_vars(2);
        s.add_clause([lit(1), lit(2)]);
        assert!(s.solve_with_assumptions(&[lit(-1), lit(-2)]).is_unsat());
        // The solver stays usable and SAT without assumptions.
        assert!(s.solve().is_sat());
        match s.solve_with_assumptions(&[lit(-1)]) {
            SolveResult::Sat(m) => {
                assert!(!m.value(Var::from_index(0)));
                assert!(m.value(Var::from_index(1)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = solver_with_vars(3);
        s.add_clause([lit(1), lit(2), lit(3)]);
        assert!(s.solve().is_sat());
        s.add_clause([lit(-1)]);
        s.add_clause([lit(-2)]);
        match s.solve() {
            SolveResult::Sat(m) => assert!(m.value(Var::from_index(2))),
            other => panic!("expected SAT, got {other:?}"),
        }
        s.add_clause([lit(-3)]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn conflict_budget_yields_unknown() {
        // A hard instance (php 7 into 6) with a tiny budget.
        let mut s = pigeonhole(7, 6);
        s.set_conflict_budget(Some(10));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn expired_deadline_yields_unknown() {
        let mut s = pigeonhole(7, 6);
        s.set_deadline(Some(std::time::Instant::now()));
        assert_eq!(s.solve(), SolveResult::Unknown);
        // Clearing the deadline restores normal operation on the same state.
        s.set_deadline(None);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn mid_search_deadline_stops_a_hard_solve() {
        // php(9,8) runs for seconds unbounded; a few-ms deadline must stop
        // it at a conflict-check boundary and leave the solver reusable.
        let mut s = pigeonhole(9, 8);
        s.set_deadline(Some(
            std::time::Instant::now() + std::time::Duration::from_millis(20),
        ));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert!(s.stats().conflicts > 0, "search actually started");
        s.set_deadline(None);
        let mut easy = pigeonhole(3, 2);
        assert!(easy.solve().is_unsat());
    }

    #[test]
    fn propagation_dominated_deadline_stops_without_conflicts() {
        // XOR-equivalence chains (v_i <-> v_{i+1}): deciding any variable
        // propagates its entire chain in either phase, and the all-false
        // model is consistent, so the solve is pure unit propagation with
        // zero conflicts. The conflict-interval deadline check can therefore
        // never fire; only the propagation-interval check can stop it.
        fn equivalence_chains(chains: i64, len: i64) -> Solver {
            let mut s = solver_with_vars((chains * len) as usize);
            for c in 0..chains {
                let base = c * len;
                for i in 0..len - 1 {
                    let a = lit(base + i + 1);
                    let b = lit(base + i + 2);
                    s.add_clause([!a, b]);
                    s.add_clause([a, !b]);
                }
            }
            s
        }
        const CHAINS: i64 = 800;
        const LEN: i64 = 500;

        // Reference: the unbounded solve is satisfiable and conflict-free.
        let mut reference = equivalence_chains(CHAINS, LEN);
        let unbounded_start = std::time::Instant::now();
        assert!(matches!(reference.solve(), SolveResult::Sat(_)));
        let unbounded = unbounded_start.elapsed();
        assert_eq!(reference.stats().conflicts, 0, "chains never conflict");
        assert!(reference.stats().propagations >= (CHAINS * (LEN - 1)) as u64);

        // Bounded: a deadline far shorter than the full solve must stop it
        // even though no conflict ever happens. Before the propagation-axis
        // check existed this ran to completion (elapsed ≈ unbounded).
        let deadline = (unbounded / 20).max(std::time::Duration::from_micros(500));
        let mut bounded = equivalence_chains(CHAINS, LEN);
        bounded.set_deadline(Some(std::time::Instant::now() + deadline));
        let verdict = bounded.solve();
        // Only meaningful when the machine isn't so fast that the whole
        // solve fits inside the minimum deadline; skip silently otherwise.
        if unbounded >= deadline * 10 {
            // Pre-fix behaviour: zero conflicts means the conflict-interval
            // check never fires, so the solve runs to completion and returns
            // Sat. Unknown proves the propagation-axis check stopped it.
            assert_eq!(verdict, SolveResult::Unknown);
            assert_eq!(
                bounded.stats().conflicts,
                0,
                "stopped on the propagation axis, not via a conflict check"
            );
            // Bounded overshoot, asserted on the work axis rather than wall
            // clock (parallel test load makes wall-time bounds flaky): with
            // a deadline of ~1/20 of the full solve, finishing even half the
            // propagations would mean a 10x overshoot.
            assert!(
                bounded.stats().propagations < reference.stats().propagations / 2,
                "deadline {deadline:?} overshot: {} of {} propagations done",
                bounded.stats().propagations,
                reference.stats().propagations,
            );
            // The solver remains usable after an expired deadline.
            bounded.set_deadline(None);
            assert!(matches!(bounded.solve(), SolveResult::Sat(_)));
        }
    }

    #[test]
    fn generous_deadline_does_not_change_verdicts() {
        let mut s = pigeonhole(5, 4);
        s.set_deadline(Some(
            std::time::Instant::now() + std::time::Duration::from_secs(600),
        ));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn model_satisfies_all_clauses_random_3sat() {
        // Deterministic LCG-generated satisfiable-ish 3-SAT at low density;
        // whenever SAT is reported the model must satisfy every clause.
        let mut state = 0x12345678u64;
        let mut next = move |bound: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % bound
        };
        for round in 0..10 {
            let num_vars = 30;
            let num_clauses = 90 + round * 3;
            let mut s = solver_with_vars(num_vars);
            let mut clauses = Vec::new();
            for _ in 0..num_clauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = next(num_vars as u64) as i64 + 1;
                    let sign = if next(2) == 0 { 1 } else { -1 };
                    c.push(lit(sign * v));
                }
                clauses.push(c.clone());
                s.add_clause(c);
            }
            if let SolveResult::Sat(m) = s.solve() {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| m.lit_value(l)),
                        "model violates clause {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn xor_chain_parity_unsat() {
        // Encode x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 1 (odd cycle): UNSAT.
        let mut s = solver_with_vars(3);
        let xor1 = |s: &mut Solver, a: i64, b: i64| {
            // a ^ b = 1  <=>  (a|b) & (!a|!b)
            s.add_clause([lit(a), lit(b)]);
            s.add_clause([lit(-a), lit(-b)]);
        };
        xor1(&mut s, 1, 2);
        xor1(&mut s, 2, 3);
        xor1(&mut s, 1, 3);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn clause_db_reduction_preserves_soundness() {
        // A formula hard enough to trigger reduce_db (php 8 into 7 learns
        // thousands of clauses), cross-checked for the UNSAT verdict.
        let mut s = pigeonhole(8, 7);
        // Force frequent reductions.
        s.set_max_learnts(50);
        assert!(s.solve().is_unsat());
        assert!(s.stats().deleted_clauses > 0, "reduce_db must have fired");
    }

    #[test]
    fn odd_cycle_coloring_is_unsat_even_cycle_sat() {
        // 2-coloring a cycle: SAT iff the cycle length is even.
        for &len in &[6usize, 7] {
            let mut s = solver_with_vars(len);
            for i in 0..len {
                let a = (i + 1) as i64;
                let b = ((i + 1) % len + 1) as i64;
                // adjacent vertices differ: (a|b) & (!a|!b)
                s.add_clause([lit(a), lit(b)]);
                s.add_clause([lit(-a), lit(-b)]);
            }
            assert_eq!(s.solve().is_sat(), len % 2 == 0, "cycle length {len}");
        }
    }

    #[test]
    fn solved_solver_accepts_more_vars_and_clauses() {
        let mut s = solver_with_vars(2);
        s.add_clause([lit(1), lit(2)]);
        assert!(s.solve().is_sat());
        let v = s.new_var();
        s.add_clause([Lit::negative(v)]);
        match s.solve() {
            SolveResult::Sat(m) => assert!(!m.value(v)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn budget_then_unlimited_is_consistent() {
        // Unknown under a tiny budget must not corrupt state: the later
        // unlimited solve still returns the correct verdict.
        let mut budgeted = pigeonhole(6, 5);
        budgeted.set_conflict_budget(Some(5));
        while budgeted.solve() == SolveResult::Unknown {
            // keep re-solving under the same tiny budget; learnt clauses
            // accumulate across calls, so this terminates
        }
        budgeted.set_conflict_budget(None);
        assert!(budgeted.solve().is_unsat());
        let mut reference = pigeonhole(6, 5);
        assert!(reference.solve().is_unsat());
    }

    #[test]
    fn simplify_preserves_verdicts_and_prunes() {
        // SAT case with removable clauses. The unit is added *after* the
        // clauses (add_clause simplifies eagerly against existing level-0
        // facts, so the other order would never store them).
        let mut s = solver_with_vars(4);
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(3), lit(4)]); // loses the false -x1
        s.add_clause([lit(3), lit(-4)]);
        s.add_clause([lit(1)]); // unit: satisfies the first clause
        let before = s.num_clauses();
        s.simplify();
        assert!(s.num_clauses() < before);
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(m.value(Var::from_index(0)));
                // x3 | x4 (shrunk) and x3 | !x4 must both hold.
                assert!(m.value(Var::from_index(2)) || m.value(Var::from_index(3)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }

        // UNSAT case must stay UNSAT after simplify.
        let mut s = pigeonhole(5, 4);
        s.add_clause([lit(1)]); // fix something so simplify has work
        s.simplify();
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn simplify_then_incremental_solving_works() {
        let mut s = solver_with_vars(3);
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.add_clause([lit(-1)]);
        s.simplify();
        assert!(s.solve().is_sat());
        s.add_clause([lit(-2)]);
        s.simplify();
        match s.solve() {
            SolveResult::Sat(m) => assert!(m.value(Var::from_index(2))),
            other => panic!("expected SAT, got {other:?}"),
        }
        s.add_clause([lit(-3)]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn stats_accumulate() {
        let mut s = solver_with_vars(2);
        s.add_clause([lit(1), lit(2)]);
        let before = *s.stats();
        s.solve();
        let after = *s.stats();
        assert_eq!(after.since(&before).solves, 1);
        assert!(after.work() >= before.work());
    }

    #[test]
    fn gc_is_behavior_neutral_on_hard_unsat() {
        // Same instance, arena compaction after every deletion wave vs
        // never: every counter must match, proving collection only moves
        // memory. php(7,6) triggers reduce_db via the lowered cap.
        let run = |gc_fraction: f64| {
            let mut s = pigeonhole(7, 6);
            s.set_max_learnts(100);
            s.set_gc_fraction(gc_fraction);
            assert!(s.solve().is_unsat());
            *s.stats()
        };
        let eager = run(0.0);
        let never = run(2.0);
        assert_eq!(eager, never, "GC timing must not affect search behaviour");
        assert!(eager.deleted_clauses > 0, "reduce_db must have fired");
    }

    #[test]
    fn gc_is_behavior_neutral_on_sat_models() {
        // A satisfiable instance with enough conflicts to delete clauses:
        // the returned model must be bit-identical with and without GC.
        let build = || {
            let mut state = 0xD1CEu64;
            let mut next = move |bound: u64| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % bound
            };
            let mut s = solver_with_vars(60);
            for _ in 0..240 {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = next(60) as i64 + 1;
                    c.push(lit(if next(2) == 0 { v } else { -v }));
                }
                s.add_clause(c);
            }
            s.set_max_learnts(20);
            s
        };
        let mut eager = build();
        eager.set_gc_fraction(0.0);
        let mut never = build();
        never.set_gc_fraction(2.0);
        let (r1, r2) = (eager.solve(), never.solve());
        assert_eq!(r1, r2, "verdict and model must not depend on GC timing");
        assert_eq!(eager.stats(), never.stats());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "model violates original clause")]
    fn corrupted_arena_trips_model_soundness_assert() {
        // Flipping a stored literal behind the solver's back makes the
        // search solve a different formula; the debug-build model check
        // against the original clause list must catch it.
        let mut s = solver_with_vars(2);
        s.add_clause([lit(1), lit(2)]);
        s.debug_corrupt_first_clause();
        let _ = s.solve();
    }

    #[test]
    fn meter_tracks_logical_bytes_and_balances_on_drop() {
        let meter = budget::MemoryMeter::new();
        {
            let mut s = solver_with_vars(4);
            s.set_meter(meter.clone());
            assert!(meter.current() > 0, "variables are accounted");
            let before = meter.current();
            s.add_clause([lit(1), lit(2), lit(3)]);
            assert!(meter.current() > before, "clauses are accounted");
        }
        assert_eq!(meter.current(), 0, "drop returns the footprint");
        assert!(meter.high_water() > 0);
    }

    #[test]
    fn unknown_causes_are_reported() {
        let mut s = pigeonhole(7, 6);
        s.set_conflict_budget(Some(10));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.out_of_budget(), Some(OutOfBudget::Conflicts));
        s.set_conflict_budget(None);
        s.set_deadline(Some(std::time::Instant::now()));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.out_of_budget(), Some(OutOfBudget::Deadline));
        s.set_deadline(None);
        assert!(s.solve().is_unsat());
        assert_eq!(s.out_of_budget(), None, "a decided solve clears the cause");
    }

    #[test]
    fn tight_memory_budget_degrades_then_gives_up() {
        // A budget below the problem clauses themselves: no amount of
        // learnt shedding can fit the formula, so the solve must give up
        // with the Memory cause rather than thrash.
        let mut s = pigeonhole(8, 7);
        let floor = s.meter().current();
        s.set_memory_budget(Some(floor / 2));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.out_of_budget(), Some(OutOfBudget::Memory));
        // Raising the budget lets the same solver finish.
        s.set_memory_budget(None);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn memory_budget_verdict_is_deterministic() {
        let run = || {
            let mut s = pigeonhole(8, 7);
            let cap = s.meter().current() + 4096;
            s.set_memory_budget(Some(cap));
            let verdict = s.solve();
            (verdict, *s.stats())
        };
        let (v1, s1) = run();
        let (v2, s2) = run();
        assert_eq!(v1, v2);
        assert_eq!(s1, s2, "logical-byte trips reproduce exactly");
        assert!(s1.mem_pressure_events > 0, "degradation actually ran");
    }

    #[test]
    fn generous_memory_budget_does_not_change_verdicts() {
        let mut capped = pigeonhole(6, 5);
        capped.set_memory_budget(Some(1 << 30));
        assert!(capped.solve().is_unsat());
        let mut free = pigeonhole(6, 5);
        assert!(free.solve().is_unsat());
        assert_eq!(
            capped.stats(),
            free.stats(),
            "an unhit budget must not perturb the search"
        );
    }

    #[test]
    fn heartbeat_beats_during_search() {
        let dog = budget::Watchdog::new(budget::WatchdogConfig {
            stall_after: std::time::Duration::from_secs(3600),
            poll: std::time::Duration::from_millis(50),
        });
        let hb = dog.watch("solver", |_| {});
        let mut s = pigeonhole(7, 6);
        s.set_heartbeat(Some(hb.clone()));
        assert!(s.solve().is_unsat());
        assert!(!hb.tripped());
    }

    #[test]
    fn deleted_watchers_are_dropped_lazily_and_by_gc() {
        // After reduce_db tombstones clauses, both the lazy watcher sweep
        // and an eager GC must leave the solver consistent.
        let mut s = pigeonhole(7, 6);
        s.set_max_learnts(50);
        s.set_gc_fraction(0.0);
        assert!(s.solve().is_unsat());
        assert!(s.stats().deleted_clauses > 0);
    }
}
