use std::fmt;

/// Deterministic work counters accumulated by a [`Solver`](crate::Solver).
///
/// The dataset pipeline converts these into a reproducible runtime measure
/// (see the `attack` crate), because wall-clock time is machine-dependent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals propagated by unit propagation.
    pub propagations: u64,
    /// Conflicts encountered (= learnt clauses before reduction).
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently retained.
    pub learnt_clauses: u64,
    /// Learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Solve calls.
    pub solves: u64,
    /// Memory-pressure degradation rounds: times the memory budget forced
    /// an aggressive learnt-DB reduction (see `Solver::set_memory_budget`).
    pub mem_pressure_events: u64,
}

impl SolverStats {
    /// A single scalar measure of solver effort, used as the deterministic
    /// runtime proxy: `propagations + 2*decisions + 10*conflicts`.
    ///
    /// The weights approximate the relative instruction cost of each event in
    /// this implementation; the exact values only set the proxy's scale.
    pub fn work(&self) -> u64 {
        self.propagations + 2 * self.decisions + 10 * self.conflicts
    }

    /// Element-wise difference (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learnt_clauses: self.learnt_clauses.saturating_sub(earlier.learnt_clauses),
            deleted_clauses: self.deleted_clauses.saturating_sub(earlier.deleted_clauses),
            solves: self.solves.saturating_sub(earlier.solves),
            mem_pressure_events: self
                .mem_pressure_events
                .saturating_sub(earlier.mem_pressure_events),
        }
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} conflicts={} restarts={} learnt={} deleted={} solves={}",
            self.decisions,
            self.propagations,
            self.conflicts,
            self.restarts,
            self.learnt_clauses,
            self.deleted_clauses,
            self.solves
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_weights() {
        let s = SolverStats {
            decisions: 3,
            propagations: 5,
            conflicts: 2,
            ..SolverStats::default()
        };
        assert_eq!(s.work(), 5 + 6 + 20);
    }

    #[test]
    fn since_subtracts() {
        let a = SolverStats {
            decisions: 10,
            propagations: 100,
            conflicts: 5,
            ..SolverStats::default()
        };
        let b = SolverStats {
            decisions: 4,
            propagations: 40,
            conflicts: 5,
            ..SolverStats::default()
        };
        let d = a.since(&b);
        assert_eq!(d.decisions, 6);
        assert_eq!(d.propagations, 60);
        assert_eq!(d.conflicts, 0);
    }

    #[test]
    fn display_mentions_counters() {
        let s = SolverStats::default();
        let text = s.to_string();
        assert!(text.contains("decisions=0"));
        assert!(text.contains("conflicts=0"));
    }
}
