//! Inprocessing: clause-database simplification between incremental solves.
//!
//! [`Solver::preprocess`] runs a bounded pipeline of classic preprocessing
//! techniques, each of which preserves equisatisfiability *and* keeps every
//! model of the simplified database a model of the original clauses (no
//! variable elimination, so no model reconstruction is needed):
//!
//! 1. **Root sweep** — delete clauses satisfied at level 0, strip false
//!    level-0 literals ([`Solver::root_sweep`]).
//! 2. **Subsumption** — delete any clause that is a superset of another
//!    (the subsumer stays, so every model still satisfies the deleted
//!    clause).
//! 3. **Self-subsuming resolution** — when resolving clauses `C` and `D`
//!    yields a strict subset of `C`, shrink `C` in place to that resolvent.
//! 4. **Failed-literal probing** — assume a literal at a fresh decision
//!    level and propagate; a conflict proves its negation at the root.
//!    Budgeted, with a cursor that rotates across calls.
//!
//! The pass is only sound at decision level 0 with no outstanding
//! assumptions; the solver's own `solve` calls always return at level 0, and
//! the SAT attack invokes `preprocess` strictly *between* DIP iterations,
//! never while an assumption-scoped query is in flight.

use crate::arena::ClauseRef;
use crate::lit::{Lit, Var};
use crate::solver::{Solver, VAL_FALSE, VAL_TRUE, VAL_UNDEF};

/// Clauses longer than this are not indexed for subsumption; long clauses
/// (e.g. the miter's output disjunction) are rarely subsumed and would
/// dominate the occurrence lists.
const SUB_CLAUSE_MAX: usize = 16;
/// Occurrence lists longer than this are skipped when gathering subsumption
/// candidates, bounding the classic quadratic blowup on frequent literals.
const OCC_CAP: usize = 400;
/// Targets (subsumption) / probes (failed-literal) between wall-clock
/// deadline polls. Inprocessing honours the same [`Solver::set_deadline`]
/// contract as search: a caller that asked for a 2-second solve must not
/// first spend 10 seconds inside `preprocess`. Same rationale as the main
/// loop's conflict-axis interval: `Instant::now` every iteration would be
/// measurable, every 64 it is noise.
const DEADLINE_POLL_INTERVAL: usize = 64;

impl Solver {
    /// Simplifies the clause database in place: root-level sweep,
    /// subsumption, self-subsuming resolution, and budgeted failed-literal
    /// probing (see the [module docs](crate::simplify) for the pipeline and
    /// its soundness argument). A superset of [`Solver::simplify`].
    ///
    /// Must be called with no assumptions in flight (always true between
    /// [`Solver::solve`] calls). The solver remains incrementally usable:
    /// clauses can be added and solved under assumptions afterwards.
    pub fn preprocess(&mut self) {
        if !self.ok {
            return;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return;
        }
        self.root_sweep();
        let pending = self.subsume_pass();
        self.rebuild_watches();
        if !pending.is_empty() {
            for l in pending {
                match self.value(l) {
                    VAL_TRUE => {}
                    VAL_FALSE => {
                        self.ok = false;
                        return;
                    }
                    _ => self.unchecked_enqueue(l, None),
                }
            }
            if self.propagate().is_some() {
                self.ok = false;
                return;
            }
            // The new units may satisfy or weaken further clauses.
            self.root_sweep();
            self.rebuild_watches();
        }
        // Probing is pure propagation work; skip it entirely once the
        // deadline has passed (subsume_pass above already stops early).
        if self.probe_budget > 0 && !self.past_deadline() && !self.probe_pass() {
            return;
        }
        self.maybe_gc();
    }

    /// One bounded subsumption / self-subsuming-resolution sweep over all
    /// live clauses of length `<= SUB_CLAUSE_MAX`. Returns unit literals
    /// produced by strengthening (the caller enqueues them once watch lists
    /// are valid again). Watch lists are stale afterwards.
    fn subsume_pass(&mut self) -> Vec<Lit> {
        let mut pending = Vec::new();
        let list: Vec<ClauseRef> = self
            .arena
            .refs()
            .filter(|&c| !self.arena.is_deleted(c) && self.arena.len(c) <= SUB_CLAUSE_MAX)
            .collect();
        if list.is_empty() {
            return pending;
        }
        let n_codes = self.num_vars() * 2;
        // occ[l] = indices into `list` of clauses containing literal l;
        // sig[i] = 64-bit variable signature of list[i] (sound prefilter:
        // D ⊆ C up to sign flips requires sig(D) ⊆ sig(C)).
        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); n_codes];
        let mut sig: Vec<u64> = Vec::with_capacity(list.len());
        for (idx, &c) in list.iter().enumerate() {
            let mut s = 0u64;
            for l in self.arena.lits(c) {
                occ[l.code()].push(idx as u32);
                s |= 1u64 << (l.var().index() % 64);
            }
            sig.push(s);
        }
        let mut lit_stamp: Vec<u32> = vec![0; n_codes];
        let mut clause_stamp: Vec<u32> = vec![0; list.len()];
        let mut target_lits: Vec<Lit> = Vec::new();

        // For each target C, find subsumers/strengtheners D among clauses
        // sharing a literal with C. Complete for both rules whenever
        // D ∩ C ≠ ∅, which subsumption (D ⊆ C) always satisfies and
        // strengthening satisfies unless D is a unit (impossible here: units
        // live on the trail, not in the clause database).
        for ci in 0..list.len() {
            // Stopping between targets is sound: the pass is a pure
            // optimisation and every completed deletion/strengthening
            // stands on its own (the caller rebuilds watches either way).
            if ci % DEADLINE_POLL_INTERVAL == 0 && self.past_deadline() {
                break;
            }
            let c = list[ci];
            if self.arena.is_deleted(c) {
                continue;
            }
            let stamp = ci as u32 + 1;
            target_lits.clear();
            target_lits.extend(self.arena.lits(c));
            for &l in &target_lits {
                lit_stamp[l.code()] = stamp;
            }
            let mut clen = target_lits.len();

            'candidates: for &l in &target_lits {
                if lit_stamp[l.code()] != stamp {
                    continue; // removed from C by an earlier strengthening
                }
                if occ[l.code()].len() > OCC_CAP {
                    continue;
                }
                for &di in &occ[l.code()] {
                    let di = di as usize;
                    if di == ci || clause_stamp[di] == stamp {
                        continue;
                    }
                    clause_stamp[di] = stamp;
                    let d = list[di];
                    if self.arena.is_deleted(d) || self.arena.len(d) > clen {
                        continue;
                    }
                    if sig[di] & !sig[ci] != 0 {
                        continue;
                    }
                    // Verify D ⊆ C allowing at most one sign-flipped literal.
                    let mut flip: Option<Lit> = None;
                    let mut fits = true;
                    for dl in self.arena.lits(d) {
                        if lit_stamp[dl.code()] == stamp {
                            continue;
                        }
                        if lit_stamp[(!dl).code()] == stamp && flip.is_none() {
                            flip = Some(dl);
                            continue;
                        }
                        fits = false;
                        break;
                    }
                    if !fits {
                        continue;
                    }
                    match flip {
                        None => {
                            // D subsumes C. Only delete C when that cannot
                            // lose information later: a learnt subsumer can
                            // itself be dropped by reduce_db, so it may only
                            // subsume other learnt clauses.
                            if self.arena.is_learnt(d) && !self.arena.is_learnt(c) {
                                continue;
                            }
                            self.free_clause(c);
                            break 'candidates;
                        }
                        Some(dl) => {
                            // Resolving C and D on var(dl) yields C \ {!dl}:
                            // strengthen C in place. Sound even when D is
                            // learnt — the resolvent replaces C permanently.
                            let rem = !dl;
                            let pos = (0..clen)
                                .position(|i| self.arena.lit(c, i) == rem)
                                .expect("flipped literal is in the target");
                            self.arena.swap_lits(c, pos, clen - 1);
                            self.arena.shrink(c, clen - 1);
                            clen -= 1;
                            lit_stamp[rem.code()] = 0;
                            sig[ci] = self
                                .arena
                                .lits(c)
                                .fold(0u64, |s, l| s | 1u64 << (l.var().index() % 64));
                            if clen == 1 {
                                pending.push(self.arena.lit(c, 0));
                                self.free_clause(c);
                                break 'candidates;
                            }
                        }
                    }
                }
            }
        }
        pending
    }

    /// Budgeted failed-literal probing at the root: assume each phase of a
    /// variable at a throwaway decision level; a propagation conflict proves
    /// the opposite phase as a level-0 unit. The cursor rotates so repeated
    /// calls cover different variables; probing propagations count into the
    /// ordinary propagation statistics. Returns `false` when probing proved
    /// the formula unsatisfiable.
    fn probe_pass(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let nv = self.num_vars();
        if nv == 0 {
            return true;
        }
        let start_props = self.stats.propagations;
        let mut checked = 0usize;
        while checked < nv && self.stats.propagations - start_props < self.probe_budget {
            // The propagation budget is deterministic but wall-clock-blind;
            // a huge budget on a slow instance must still respect the
            // solver's deadline (same contract as the search loop).
            if checked.is_multiple_of(DEADLINE_POLL_INTERVAL) && self.past_deadline() {
                break;
            }
            let v = self.probe_cursor % nv;
            self.probe_cursor = (self.probe_cursor + 1) % nv;
            checked += 1;
            if self.assign[v] != VAL_UNDEF {
                continue;
            }
            let var = Var::from_index(v);
            for probe in [Lit::positive(var), Lit::negative(var)] {
                if self.value(probe) != VAL_UNDEF {
                    break; // first phase failed; its negation is now fixed
                }
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(probe, None);
                let conflicted = self.propagate().is_some();
                self.cancel_until(0);
                if conflicted {
                    // probe leads to conflict, so !probe holds at the root.
                    self.unchecked_enqueue(!probe, None);
                    if self.propagate().is_some() {
                        self.ok = false;
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use crate::lit::{Lit, Var};
    use crate::solver::{SolveResult, Solver};

    fn lit(n: i64) -> Lit {
        Lit::from_dimacs(n)
    }

    fn solver_with_vars(n: usize) -> Solver {
        let mut s = Solver::new();
        s.new_vars(n);
        s
    }

    #[test]
    fn subsumption_deletes_supersets() {
        let mut s = solver_with_vars(4);
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(2), lit(3)]); // subsumed
        s.add_clause([lit(1), lit(2), lit(3), lit(4)]); // subsumed
        s.add_clause([lit(3), lit(4)]); // unrelated, stays
        s.preprocess();
        assert_eq!(s.num_clauses(), 2);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn self_subsuming_resolution_strengthens() {
        // (x1 | x2) and (!x1 | x2 | x3): resolving on x1 gives (x2 | x3),
        // a strict subset of the second clause, which shrinks in place.
        let mut s = solver_with_vars(3);
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(2), lit(3)]);
        s.preprocess();
        assert_eq!(s.num_clauses(), 2);
        // Force x2 false: the strengthened clause (x2|x3) must now imply x3.
        s.add_clause([lit(-2)]);
        match s.solve() {
            SolveResult::Sat(m) => assert!(m.value(Var::from_index(2))),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn strengthening_to_unit_propagates() {
        // (x1 | x2) and (!x1 | x2) resolve to the unit x2.
        let mut s = solver_with_vars(2);
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(2)]);
        s.preprocess();
        match s.solve() {
            SolveResult::Sat(m) => assert!(m.value(Var::from_index(1))),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn preprocess_detects_root_unsat() {
        // Strengthening chains down to complementary units.
        let mut s = solver_with_vars(2);
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(1), lit(-2)]);
        s.add_clause([lit(-1), lit(-2)]);
        s.preprocess();
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn failed_literal_probing_finds_units() {
        // x1 -> x2, x1 -> !x2: probing x1 conflicts, so !x1 is forced,
        // even though plain propagation finds nothing (no unit clauses).
        let mut s = solver_with_vars(3);
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-1), lit(-2)]);
        s.add_clause([lit(1), lit(3)]); // with !x1 this forces x3
        s.preprocess();
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(!m.value(Var::from_index(0)));
                assert!(m.value(Var::from_index(2)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn probing_can_prove_unsat() {
        // Both phases of x1 conflict.
        let mut s = solver_with_vars(2);
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-1), lit(-2)]);
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(-2)]);
        // Disable subsumption's ability to solve this first by probing only.
        s.preprocess();
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn probe_budget_zero_disables_probing() {
        let mut s = solver_with_vars(2);
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(1), lit(2)]);
        s.set_probe_budget(0);
        s.preprocess();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn preprocess_keeps_incremental_solving_sound() {
        // Preprocess between incremental additions; verdicts must track the
        // accumulated formula exactly.
        let mut s = solver_with_vars(4);
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.add_clause([lit(1), lit(2), lit(3), lit(4)]); // subsumed
        s.preprocess();
        assert!(s.solve().is_sat());
        s.add_clause([lit(-1)]);
        s.add_clause([lit(-2)]);
        s.preprocess();
        match s.solve() {
            SolveResult::Sat(m) => assert!(m.value(Var::from_index(2))),
            other => panic!("expected SAT, got {other:?}"),
        }
        s.add_clause([lit(-3)]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn preprocess_respects_assumption_queries_afterwards() {
        let mut s = solver_with_vars(3);
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.preprocess();
        assert!(s.solve_with_assumptions(&[lit(-1), lit(-2)]).is_unsat());
        assert!(s.solve_with_assumptions(&[lit(-1)]).is_sat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn preprocess_on_unsat_solver_is_a_noop() {
        let mut s = solver_with_vars(1);
        s.add_clause([lit(1)]);
        s.add_clause([lit(-1)]);
        s.preprocess();
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn preprocess_honours_an_expired_deadline() {
        // Regression guard: `preprocess` must poll the same wall-clock
        // deadline as search. A long implication chain makes every probe
        // propagate O(n) literals, so an effectively unlimited probe budget
        // burns ~n²/2 propagations — unless the (already expired) deadline
        // stops the pass almost immediately. Propagation counts are
        // deterministic, so the comparison is machine-independent.
        let n = 400usize;
        let fresh = || {
            let mut s = solver_with_vars(n);
            // Chain only: any extra clause touching the chain variables
            // lets self-subsuming resolution derive a unit (e.g. (1,2) with
            // (-1,2) strengthens to (2)), which fixes the whole chain at the
            // root and leaves probing nothing to do.
            for i in 1..n as i64 {
                s.add_clause([lit(-i), lit(i + 1)]);
            }
            s.set_probe_budget(u64::MAX);
            s
        };

        let mut unbounded = fresh();
        unbounded.preprocess();
        let unbounded_props = unbounded.stats().propagations;
        assert!(
            unbounded_props > 10_000,
            "chain probing should be expensive, got {unbounded_props}"
        );

        let mut bounded = fresh();
        bounded.set_deadline(Some(std::time::Instant::now()));
        bounded.preprocess();
        let bounded_props = bounded.stats().propagations;
        assert!(
            bounded_props < unbounded_props / 10,
            "expired deadline must stop probing: {bounded_props} vs {unbounded_props}"
        );

        // The half-finished pass leaves the solver sound and usable.
        bounded.set_deadline(None);
        assert!(bounded.solve().is_sat());
        bounded.add_clause([lit(1)]);
        bounded.add_clause([lit(-(n as i64))]);
        assert!(bounded.solve().is_unsat(), "x1 forces the whole chain");
    }

    #[test]
    fn learnt_subsumer_does_not_delete_problem_clause() {
        // Regression guard for the soundness rule: a learnt clause may be
        // dropped by reduce_db later, so it must never be the sole survivor
        // of a problem clause it subsumes. Exercised indirectly: run a hard
        // instance (learning many clauses), preprocess, and re-verify.
        let mut s = solver_with_vars(12);
        // php(4,3) over 12 vars.
        let p = |i: i64, j: i64| lit(i * 3 + j + 1);
        for i in 0..4 {
            let clause: Vec<Lit> = (0..3).map(|j| p(i, j)).collect();
            s.add_clause(clause);
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_clause([!p(i1, j), !p(i2, j)]);
                }
            }
        }
        s.preprocess();
        assert!(s.solve().is_unsat());
    }
}
