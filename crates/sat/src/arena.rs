//! Arena-allocated clause storage.
//!
//! All clauses live in one flat `Vec<u32>`; a [`ClauseRef`] is the word
//! offset of a clause header inside that vector. Compared to boxing each
//! clause in its own `Vec<Lit>`, this removes one pointer chase and one heap
//! allocation per clause, keeps clauses that are propagated together close
//! in memory, and makes garbage collection a single linear compaction pass.
//!
//! # Layout
//!
//! Each clause occupies `HEADER_WORDS + capacity` words:
//!
//! ```text
//! word 0: size << 3 | learnt (bit 0) | deleted (bit 1) | forwarded (bit 2)
//! word 1: capacity at allocation time (shrinking keeps it, GC resets it)
//! word 2: LBD (learnt clauses) — doubles as the forwarding address during GC
//! word 3: f32 activity bits (learnt clauses)
//! word 4…: literal codes
//! ```
//!
//! `size` is the live literal count; `capacity` is the allocated span, so
//! in-place strengthening just decrements `size` and the dead tail is
//! reclaimed by the next collection. Freeing a clause sets the `deleted`
//! bit; the words are reclaimed — and every live [`ClauseRef`] rewritten —
//! only when [`ClauseArena::collect`] runs.

use crate::lit::Lit;

/// Word offset of a clause header in the arena. Stable until the next
/// [`ClauseArena::collect`], which hands out a [`GcMap`] to translate old
/// refs to new ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ClauseRef(pub(crate) u32);

/// A watch-list entry: the clause plus a "blocker" literal whose truth lets
/// propagation skip loading the clause at all.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Watcher {
    pub(crate) clause: ClauseRef,
    pub(crate) blocker: Lit,
}

pub(crate) const HEADER_WORDS: usize = 4;

const LEARNT_BIT: u32 = 1;
const DELETED_BIT: u32 = 1 << 1;
const FORWARDED_BIT: u32 = 1 << 2;
const SIZE_SHIFT: u32 = 3;

#[derive(Debug, Clone, Default)]
pub(crate) struct ClauseArena {
    data: Vec<u32>,
    /// Words occupied by freed clauses and shrunk tails, reclaimable by
    /// [`ClauseArena::collect`].
    wasted: usize,
    /// Clause headers currently in the arena, live or tombstoned.
    headers: usize,
}

impl ClauseArena {
    pub(crate) fn new() -> Self {
        ClauseArena::default()
    }

    /// Allocates a clause and returns its reference.
    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() < (1 << 28), "clause size fits the header");
        let cref = ClauseRef(self.data.len() as u32);
        let flags = ((lits.len() as u32) << SIZE_SHIFT) | if learnt { LEARNT_BIT } else { 0 };
        self.data.push(flags);
        self.data.push(lits.len() as u32); // capacity
        self.data.push(0); // lbd
        self.data.push(0f32.to_bits()); // activity
        self.data.extend(lits.iter().map(|l| l.0));
        self.headers += 1;
        cref
    }

    #[inline]
    fn word0(&self, c: ClauseRef) -> u32 {
        self.data[c.0 as usize]
    }

    #[inline]
    pub(crate) fn len(&self, c: ClauseRef) -> usize {
        (self.word0(c) >> SIZE_SHIFT) as usize
    }

    #[inline]
    fn capacity(&self, c: ClauseRef) -> usize {
        self.data[c.0 as usize + 1] as usize
    }

    #[inline]
    pub(crate) fn is_learnt(&self, c: ClauseRef) -> bool {
        self.word0(c) & LEARNT_BIT != 0
    }

    #[inline]
    pub(crate) fn is_deleted(&self, c: ClauseRef) -> bool {
        self.word0(c) & DELETED_BIT != 0
    }

    #[inline]
    pub(crate) fn lit(&self, c: ClauseRef, i: usize) -> Lit {
        debug_assert!(i < self.len(c));
        Lit(self.data[c.0 as usize + HEADER_WORDS + i])
    }

    #[inline]
    pub(crate) fn set_lit(&mut self, c: ClauseRef, i: usize, lit: Lit) {
        debug_assert!(i < self.len(c));
        self.data[c.0 as usize + HEADER_WORDS + i] = lit.0;
    }

    #[inline]
    pub(crate) fn swap_lits(&mut self, c: ClauseRef, i: usize, j: usize) {
        let base = c.0 as usize + HEADER_WORDS;
        self.data.swap(base + i, base + j);
    }

    /// Iterates the clause's literals.
    pub(crate) fn lits(&self, c: ClauseRef) -> impl Iterator<Item = Lit> + '_ {
        let base = c.0 as usize + HEADER_WORDS;
        self.data[base..base + self.len(c)].iter().map(|&w| Lit(w))
    }

    /// Shrinks the clause to its first `new_len` literals. The freed tail
    /// counts as wasted space until the next collection.
    pub(crate) fn shrink(&mut self, c: ClauseRef, new_len: usize) {
        let old_len = self.len(c);
        debug_assert!(new_len <= old_len);
        if new_len == old_len {
            return;
        }
        let i = c.0 as usize;
        self.data[i] = (self.data[i] & ((1 << SIZE_SHIFT) - 1)) | ((new_len as u32) << SIZE_SHIFT);
        self.wasted += old_len - new_len;
    }

    #[inline]
    pub(crate) fn lbd(&self, c: ClauseRef) -> u32 {
        self.data[c.0 as usize + 2]
    }

    #[inline]
    pub(crate) fn set_lbd(&mut self, c: ClauseRef, lbd: u32) {
        self.data[c.0 as usize + 2] = lbd;
    }

    #[inline]
    pub(crate) fn activity(&self, c: ClauseRef) -> f32 {
        f32::from_bits(self.data[c.0 as usize + 3])
    }

    #[inline]
    pub(crate) fn set_activity(&mut self, c: ClauseRef, act: f32) {
        self.data[c.0 as usize + 3] = act.to_bits();
    }

    /// Tombstones the clause; its words are reclaimed by the next
    /// [`ClauseArena::collect`].
    pub(crate) fn free(&mut self, c: ClauseRef) {
        debug_assert!(!self.is_deleted(c));
        self.data[c.0 as usize] |= DELETED_BIT;
        self.wasted += HEADER_WORDS + self.capacity(c);
    }

    /// All clause refs in allocation order, live and tombstoned.
    pub(crate) fn refs(&self) -> ArenaIter<'_> {
        ArenaIter {
            arena: self,
            offset: 0,
        }
    }

    /// Fraction of arena words occupied by tombstones and shrunk tails.
    pub(crate) fn wasted_fraction(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.wasted as f64 / self.data.len() as f64
        }
    }

    /// Live + tombstoned header count (O(1); the observability snapshot
    /// uses this where a live-only scan would be too slow).
    pub(crate) fn num_headers(&self) -> usize {
        self.headers
    }

    /// Logical bytes the arena occupies: words appended so far (headers,
    /// literals, and not-yet-collected tombstones), independent of `Vec`
    /// capacity growth policy — see `budget::MemoryMeter` for why logical
    /// rather than physical bytes.
    pub(crate) fn logical_bytes(&self) -> u64 {
        self.data.len() as u64 * 4
    }

    /// Compacts the arena: live clauses move to the front of a fresh
    /// buffer, preserving allocation order, with `capacity` reset to `size`.
    /// Returns a [`GcMap`] translating pre-collection refs; the caller must
    /// rewrite every stored [`ClauseRef`] (watch lists, reason slots)
    /// through it. Relocation never reorders clauses or literals, so search
    /// behaviour is byte-for-byte unaffected by when collection runs.
    pub(crate) fn collect(&mut self) -> GcMap {
        let mut new_data = Vec::with_capacity(self.data.len().saturating_sub(self.wasted));
        let mut headers = 0usize;
        let mut off = 0usize;
        while off < self.data.len() {
            let w0 = self.data[off];
            let size = (w0 >> SIZE_SHIFT) as usize;
            let cap = self.data[off + 1] as usize;
            if w0 & DELETED_BIT == 0 {
                let new_off = new_data.len() as u32;
                new_data.push(w0);
                new_data.push(size as u32); // capacity := size
                new_data.extend_from_slice(&self.data[off + 2..off + HEADER_WORDS + size]);
                headers += 1;
                // Forwarding address for the GcMap, written into the old
                // buffer (word 2 is dead once the clause has been copied).
                self.data[off] = w0 | FORWARDED_BIT;
                self.data[off + 2] = new_off;
            }
            off += HEADER_WORDS + cap;
        }
        let old = std::mem::replace(&mut self.data, new_data);
        self.wasted = 0;
        self.headers = headers;
        GcMap { old }
    }
}

/// Translates pre-collection [`ClauseRef`]s to their post-collection
/// locations. Refs of clauses that were tombstoned map to `None`.
pub(crate) struct GcMap {
    old: Vec<u32>,
}

impl GcMap {
    pub(crate) fn remap(&self, c: ClauseRef) -> Option<ClauseRef> {
        let i = c.0 as usize;
        (self.old[i] & FORWARDED_BIT != 0).then(|| ClauseRef(self.old[i + 2]))
    }
}

pub(crate) struct ArenaIter<'a> {
    arena: &'a ClauseArena,
    offset: usize,
}

impl Iterator for ArenaIter<'_> {
    type Item = ClauseRef;

    fn next(&mut self) -> Option<ClauseRef> {
        if self.offset >= self.arena.data.len() {
            return None;
        }
        let cref = ClauseRef(self.offset as u32);
        self.offset += HEADER_WORDS + self.arena.capacity(cref);
        Some(cref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i64) -> Lit {
        Lit::from_dimacs(n)
    }

    #[test]
    fn alloc_and_read_back() {
        let mut arena = ClauseArena::new();
        let a = arena.alloc(&[lit(1), lit(-2), lit(3)], false);
        let b = arena.alloc(&[lit(4), lit(5)], true);
        assert_eq!(arena.len(a), 3);
        assert_eq!(arena.len(b), 2);
        assert!(!arena.is_learnt(a));
        assert!(arena.is_learnt(b));
        assert_eq!(
            arena.lits(a).collect::<Vec<_>>(),
            vec![lit(1), lit(-2), lit(3)]
        );
        assert_eq!(arena.lit(b, 1), lit(5));
        assert_eq!(arena.num_headers(), 2);
    }

    #[test]
    fn lbd_and_activity_round_trip() {
        let mut arena = ClauseArena::new();
        let c = arena.alloc(&[lit(1), lit(2)], true);
        arena.set_lbd(c, 7);
        arena.set_activity(c, 3.5);
        assert_eq!(arena.lbd(c), 7);
        assert_eq!(arena.activity(c), 3.5);
    }

    #[test]
    fn swap_and_set_lits() {
        let mut arena = ClauseArena::new();
        let c = arena.alloc(&[lit(1), lit(2), lit(3)], false);
        arena.swap_lits(c, 0, 2);
        assert_eq!(
            arena.lits(c).collect::<Vec<_>>(),
            vec![lit(3), lit(2), lit(1)]
        );
        arena.set_lit(c, 1, lit(-9));
        assert_eq!(arena.lit(c, 1), lit(-9));
    }

    #[test]
    fn shrink_keeps_prefix_and_counts_waste() {
        let mut arena = ClauseArena::new();
        let c = arena.alloc(&[lit(1), lit(2), lit(3), lit(4)], false);
        arena.shrink(c, 2);
        assert_eq!(arena.len(c), 2);
        assert_eq!(arena.lits(c).collect::<Vec<_>>(), vec![lit(1), lit(2)]);
        assert!(arena.wasted_fraction() > 0.0);
    }

    #[test]
    fn free_tombstones_and_collect_compacts() {
        let mut arena = ClauseArena::new();
        let a = arena.alloc(&[lit(1), lit(2)], false);
        let b = arena.alloc(&[lit(3), lit(4), lit(5)], true);
        let c = arena.alloc(&[lit(6), lit(7)], false);
        arena.set_lbd(b, 2);
        arena.set_activity(b, 1.25);
        arena.free(a);
        assert!(arena.is_deleted(a));
        assert_eq!(arena.num_headers(), 3);

        let map = arena.collect();
        assert_eq!(map.remap(a), None);
        let nb = map.remap(b).expect("b survives");
        let nc = map.remap(c).expect("c survives");
        assert_eq!(arena.num_headers(), 2);
        assert_eq!(arena.wasted_fraction(), 0.0);
        assert_eq!(
            arena.lits(nb).collect::<Vec<_>>(),
            vec![lit(3), lit(4), lit(5)]
        );
        assert_eq!(arena.lits(nc).collect::<Vec<_>>(), vec![lit(6), lit(7)]);
        assert_eq!(arena.lbd(nb), 2);
        assert_eq!(arena.activity(nb), 1.25);
        assert!(arena.is_learnt(nb));
        assert!(!arena.is_learnt(nc));
        // Allocation order is preserved by compaction.
        let order: Vec<ClauseRef> = arena.refs().collect();
        assert_eq!(order, vec![nb, nc]);
    }

    #[test]
    fn collect_reclaims_shrunk_tails() {
        let mut arena = ClauseArena::new();
        let a = arena.alloc(&[lit(1), lit(2), lit(3), lit(4), lit(5)], false);
        arena.shrink(a, 2);
        let map = arena.collect();
        let na = map.remap(a).unwrap();
        assert_eq!(arena.len(na), 2);
        assert_eq!(arena.wasted_fraction(), 0.0);
        // A second collect on an already-compact arena is a no-op move.
        let map2 = arena.collect();
        assert_eq!(map2.remap(na), Some(ClauseRef(0)));
    }

    #[test]
    fn refs_walks_all_headers_including_tombstones() {
        let mut arena = ClauseArena::new();
        let a = arena.alloc(&[lit(1), lit(2)], false);
        let b = arena.alloc(&[lit(3), lit(4)], false);
        arena.free(b);
        let all: Vec<ClauseRef> = arena.refs().collect();
        assert_eq!(all, vec![a, b]);
        assert!(!arena.is_deleted(a));
        assert!(arena.is_deleted(b));
    }
}
