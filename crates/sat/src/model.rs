use crate::lit::{Lit, Var};
use std::fmt;

/// A satisfying assignment returned by [`Solver::solve`](crate::Solver::solve).
///
/// Unassigned variables (possible when a variable occurs in no clause) are
/// reported as `false`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    pub(crate) fn new(values: Vec<bool>) -> Self {
        Model { values }
    }

    /// The value assigned to `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not created by the solver that produced this model.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Whether the literal is true under this model.
    pub fn lit_value(&self, lit: Lit) -> bool {
        self.value(lit.var()) == lit.is_positive()
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All values in variable order.
    pub fn values(&self) -> &[bool] {
        &self.values
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", if *v { 1 } else { 0 })?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_value_respects_sign() {
        let m = Model::new(vec![true, false]);
        let v0 = Var::from_index(0);
        let v1 = Var::from_index(1);
        assert!(m.lit_value(Lit::positive(v0)));
        assert!(!m.lit_value(Lit::negative(v0)));
        assert!(m.lit_value(Lit::negative(v1)));
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert_eq!(m.to_string(), "[1 0]");
    }
}
