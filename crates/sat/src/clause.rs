use crate::lit::Lit;

/// Index of a clause in the solver's clause database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ClauseRef(pub(crate) u32);

/// A disjunction of literals plus CDCL bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct Clause {
    pub(crate) lits: Vec<Lit>,
    /// True for clauses learnt from conflicts (candidates for deletion).
    pub(crate) learnt: bool,
    /// Literal block distance at learning time (lower = more valuable).
    pub(crate) lbd: u32,
    /// Bump-decay activity for reduction tie-breaking.
    pub(crate) activity: f64,
    /// Tombstone set by database reduction.
    pub(crate) deleted: bool,
}

impl Clause {
    pub(crate) fn new(lits: Vec<Lit>, learnt: bool) -> Self {
        Clause {
            lits,
            learnt,
            lbd: 0,
            activity: 0.0,
            deleted: false,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.lits.len()
    }
}

/// A watch-list entry: the clause plus a "blocker" literal whose truth lets
/// propagation skip loading the clause at all.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Watcher {
    pub(crate) clause: ClauseRef,
    pub(crate) blocker: Lit,
}
