//! The [`Strategy`] trait and the combinators the workspace uses.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a pure sampling function over a seeded generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it
    /// (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // A finite, sign-symmetric spread; upstream's NaN/infinity corner
        // cases are not exercised by this workspace.
        (rng.gen::<f64>() - 0.5) * 2e9
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// Whole-domain strategy for `T` (proptest's `any::<T>()`).
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// Builds the [`Any`] strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Boxes a strategy for storage in a [`Union`]. Used by `prop_oneof!`.
#[doc(hidden)]
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Builds a [`Union`] from boxed options. Used by `prop_oneof!`.
#[doc(hidden)]
pub fn union_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    Union { options }
}
