//! Vendored subset of the `proptest` 1.x API.
//!
//! The build environment cannot reach the crate registry, so the workspace
//! ships the slice of proptest it actually uses: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`any`], [`prop_oneof!`], and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics: each test samples `ProptestConfig::cases` random inputs from
//! its strategies (deterministically — the stream is a pure function of the
//! test name and attempt number, so failures reproduce exactly on re-run).
//! Unlike upstream proptest there is **no shrinking**: a failure reports the
//! assertion message and the attempt number instead of a minimized input.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{any, Any, Arbitrary, Just, Strategy, Union};

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size` (a range or an exact
    /// `usize`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Per-test runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single sampled case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// The case was vetoed by `prop_assume!` and is resampled.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: samples cases until `config.cases` are accepted.
/// Used by the [`proptest!`] macro expansion; not part of the public API.
#[doc(hidden)]
pub fn __run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let master = fnv1a(name.as_bytes());
    let mut accepted = 0u32;
    let mut attempt = 0u64;
    let max_attempts = config.cases as u64 * 16 + 100;
    while accepted < config.cases {
        attempt += 1;
        assert!(
            attempt <= max_attempts,
            "proptest `{name}`: too many rejected cases ({accepted}/{} accepted \
             after {max_attempts} attempts)",
            config.cases
        );
        let mut rng = StdRng::seed_from_u64(master ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed (attempt {attempt}): {msg}")
            }
        }
    }
}

/// Declares property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__run_cases(&($config), stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::sample(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!{ ($config); $($rest)* }
    };
}

/// `assert!` for property bodies: fails the case instead of panicking
/// directly, so the runner can report the attempt number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Vetoes the current case (it is resampled, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).into(),
            ));
        }
    };
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union_of(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in -2i64..=2, f in 0.5f64..1.5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2..=2).contains(&b));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn flat_map_and_vec_compose(
            (len, items) in (1usize..6).prop_flat_map(|len| {
                crate::collection::vec(0u32..100, len..len + 1)
                    .prop_map(move |items| (len, items))
            })
        ) {
            prop_assert_eq!(items.len(), len);
            prop_assert!(items.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_only_yields_listed_values(v in prop_oneof![Just(1i32), Just(-1i32)]) {
            prop_assert!(v == 1 || v == -1);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn exact_vec_sizes_are_honored(items in crate::collection::vec(any::<bool>(), 6)) {
            prop_assert_eq!(items.len(), 6);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failures_panic_with_context() {
        crate::__run_cases(&ProptestConfig::with_cases(4), "always_fails", |_| {
            Err(crate::TestCaseError::fail("boom"))
        });
    }
}
