use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Index sets of one train/test split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices of training instances.
    pub train: Vec<usize>,
    /// Indices of held-out test instances.
    pub test: Vec<usize>,
}

impl Split {
    /// Selects the elements of `items` indexed by `indices`.
    pub fn take<'a, T>(items: &'a [T], indices: &[usize]) -> Vec<&'a T> {
        indices.iter().map(|&i| &items[i]).collect()
    }
}

/// Shuffled train/test split (Algorithm 1 line 3).
///
/// `test_fraction` of the `n` instances (rounded down, at least 1 when
/// `n >= 2`) go to the test set.
///
/// # Panics
///
/// Panics unless `0 < test_fraction < 1` and `n >= 2`.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> Split {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0, 1)"
    );
    assert!(n >= 2, "need at least 2 instances to split");
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x5917));
    let test_len = ((n as f64 * test_fraction) as usize).clamp(1, n - 1);
    let test = indices.split_off(n - test_len);
    Split {
        train: indices,
        test,
    }
}

/// K-fold cross-validation splits: `k` disjoint folds, each serving once
/// as the test set (an extension over the paper's single split, useful for
/// variance estimates on small datasets).
///
/// # Panics
///
/// Panics unless `2 <= k <= n`.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<Split> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(k <= n, "more folds than instances");
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x000F_01D5));
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (pos, &idx) in indices.iter().enumerate() {
        folds[pos % k].push(idx);
    }
    (0..k)
        .map(|test_fold| {
            let test = folds[test_fold].clone();
            let train = folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != test_fold)
                .flat_map(|(_, f)| f.iter().copied())
                .collect();
            Split { train, test }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_a_partition() {
        let split = train_test_split(50, 0.2, 7);
        assert_eq!(split.test.len(), 10);
        assert_eq!(split.train.len(), 40);
        let mut all: Vec<usize> = split.train.iter().chain(&split.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        assert_eq!(train_test_split(20, 0.25, 1), train_test_split(20, 0.25, 1));
        assert_ne!(train_test_split(20, 0.25, 1), train_test_split(20, 0.25, 2));
    }

    #[test]
    fn tiny_sets_keep_one_test_sample() {
        let split = train_test_split(2, 0.1, 0);
        assert_eq!(split.test.len(), 1);
        assert_eq!(split.train.len(), 1);
    }

    #[test]
    fn kfold_covers_every_instance_exactly_once() {
        let folds = kfold(23, 4, 9);
        assert_eq!(folds.len(), 4);
        let mut seen: Vec<usize> = folds.iter().flat_map(|s| s.test.iter().copied()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
        for split in &folds {
            assert_eq!(split.train.len() + split.test.len(), 23);
            assert!(split.test.iter().all(|t| !split.train.contains(t)));
        }
    }

    #[test]
    fn kfold_is_deterministic() {
        assert_eq!(kfold(10, 5, 1), kfold(10, 5, 1));
        assert_ne!(kfold(10, 5, 1), kfold(10, 5, 2));
    }

    #[test]
    #[should_panic(expected = "more folds than instances")]
    fn kfold_rejects_too_many_folds() {
        let _ = kfold(3, 5, 0);
    }

    #[test]
    fn take_selects_by_index() {
        let items = ["a", "b", "c"];
        let picked = Split::take(&items, &[2, 0]);
        assert_eq!(picked, vec![&"c", &"a"]);
    }
}
