//! Parallel dataset generation with deterministic replay.
//!
//! The sweep fans instances over a scoped worker pool built from
//! `std::thread::scope` and an atomic work index — no thread-pool crate,
//! because each instance already owns an independent RNG seed
//! ([`crate::instance_seed`]), so a shared counter is all the scheduling
//! the problem needs. Instance `i` is a pure function of `(config, i)` and
//! results land in slot `i`, which makes the output **byte-identical to the
//! serial sweep for every worker count** — scheduling order, worker count,
//! and checkpoint reuse cannot leak into the dataset.
//!
//! When a worker fails, the shared [`attack::CancelToken`] stops the other
//! workers' attacks at their next DIP iteration; the first error is the one
//! reported. With a [`CheckpointLog`] attached, every finished attack is
//! persisted immediately and already-recorded instances are reused without
//! re-attacking (re-locking to compute the content hash is milliseconds).

use crate::checkpoint::{instance_key, CheckpointLog};
use crate::error::DatasetError;
use crate::generate::{
    generate_one, label_instance, lock_instance, sweep_circuit, Dataset, DatasetConfig,
};
use crate::instance::Instance;
use attack::{attack_locked, CancelToken};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What one worker did during a sweep.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Instances this worker completed (attacked or reused).
    pub instances: usize,
    /// Of those, how many were reused from the checkpoint log.
    pub reused: usize,
    /// Deterministic solver work this worker expended.
    pub work: u64,
    /// Wall-clock time this worker spent on instances (not idle).
    pub busy: Duration,
}

/// Per-worker counters and totals for one parallel sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// One entry per worker, in worker-id order.
    pub workers: Vec<WorkerStats>,
    /// Wall-clock duration of the whole sweep.
    pub elapsed: Duration,
}

impl SweepReport {
    /// Instances reused from the checkpoint log instead of re-attacked.
    pub fn reused(&self) -> usize {
        self.workers.iter().map(|w| w.reused).sum()
    }

    /// Instances whose attack actually ran.
    pub fn attacked(&self) -> usize {
        let done: usize = self.workers.iter().map(|w| w.instances).sum();
        done - self.reused()
    }

    /// Renders the per-worker table printed at sweep end.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# sweep: {} attacked, {} reused, {:.2?} wall",
            self.attacked(),
            self.reused(),
            self.elapsed
        );
        for (id, w) in self.workers.iter().enumerate() {
            let _ = writeln!(
                out,
                "#   worker {id}: {} instances ({} reused), work {}, busy {:.2?}",
                w.instances, w.reused, w.work, w.busy
            );
        }
        out
    }
}

/// Generates the sweep described by `config` on `jobs` worker threads.
///
/// Produces a dataset byte-identical to [`crate::generate`] — see the
/// module docs for why worker count cannot affect the result.
///
/// # Errors
///
/// Same conditions as [`crate::generate`]; the first worker error wins and
/// the remaining attacks are cancelled.
pub fn generate_parallel(config: &DatasetConfig, jobs: usize) -> Result<Dataset, DatasetError> {
    generate_parallel_with(config, jobs, None).map(|(data, _)| data)
}

/// [`generate_parallel`], optionally resuming from / recording to a
/// [`CheckpointLog`], and returning the per-worker [`SweepReport`].
///
/// Each finished attack is appended to the log before its result is
/// published, so an interrupted sweep loses at most `jobs` in-flight
/// attacks. On resume, instances whose content hash is already on record
/// skip their attack entirely.
///
/// # Errors
///
/// Same conditions as [`crate::generate`], plus [`DatasetError::Io`] when a
/// checkpoint append fails.
pub fn generate_parallel_with(
    config: &DatasetConfig,
    jobs: usize,
    checkpoint: Option<&mut CheckpointLog>,
) -> Result<(Dataset, SweepReport), DatasetError> {
    let jobs = jobs.max(1);
    let circuit = sweep_circuit(config)?;
    let n = config.num_instances;
    let started = Instant::now();

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Instance>>> = Mutex::new(vec![None; n]);
    let first_error: Mutex<Option<DatasetError>> = Mutex::new(None);
    let cancel = CancelToken::new();
    let log = checkpoint.map(Mutex::new);

    let worker = |wid: usize| -> WorkerStats {
        let mut stats = WorkerStats::default();
        // Workers attack under a config that carries the shared cancel
        // token, so one worker's failure stops the others mid-attack.
        let mut cfg = config.clone();
        cfg.attack = cfg.attack.clone().with_cancel(cancel.clone());
        let _ = wid;
        loop {
            if cancel.is_cancelled() {
                break;
            }
            let index = next.fetch_add(1, Ordering::Relaxed);
            if index >= n {
                break;
            }
            let begun = Instant::now();
            let outcome: Result<(Instance, bool), DatasetError> = (|| {
                let locked = lock_instance(config, &circuit, index)?;
                let key = log.as_ref().map(|_| instance_key(config, &locked));
                if let (Some(log), Some(key)) = (&log, key) {
                    if let Some(done) = log.lock().unwrap().lookup(key) {
                        return Ok((done.clone(), true));
                    }
                }
                let result = attack_locked(&locked, &cfg.attack)?;
                if cancel.is_cancelled() {
                    // The attack may have been stopped mid-run; its label
                    // would be wrong. Another worker's error is already on
                    // record, so this result is discarded anyway.
                    return Err(DatasetError::Attack(attack::AttackError::Cancelled));
                }
                let instance = label_instance(config, &locked, &result);
                if let (Some(log), Some(key)) = (&log, key) {
                    log.lock().unwrap().record(key, index, &instance)?;
                }
                Ok((instance, false))
            })();
            match outcome {
                Ok((instance, reused)) => {
                    stats.instances += 1;
                    if reused {
                        stats.reused += 1;
                    } else {
                        stats.work += instance.work;
                    }
                    stats.busy += begun.elapsed();
                    slots.lock().unwrap()[index] = Some(instance);
                }
                Err(e) => {
                    let mut slot = first_error.lock().unwrap();
                    // A cancellation casualty is a symptom, never the cause.
                    let is_echo = matches!(
                        &e,
                        DatasetError::Attack(attack::AttackError::Cancelled)
                    );
                    if slot.is_none() && !is_echo {
                        *slot = Some(e);
                    }
                    drop(slot);
                    cancel.cancel();
                    stats.busy += begun.elapsed();
                    break;
                }
            }
        }
        stats
    };

    let workers: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs).map(|wid| scope.spawn(move || worker(wid))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    if let Some(error) = first_error.into_inner().unwrap() {
        return Err(error);
    }
    let instances: Vec<Instance> = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("every slot filled when no worker errored"))
        .collect();
    let report = SweepReport {
        workers,
        elapsed: started.elapsed(),
    };
    Ok((Dataset { circuit, instances }, report))
}

/// Serial reference sweep through the same code path as the workers —
/// exists so tests can assert `generate == generate_parallel` without
/// trusting either side.
#[allow(dead_code)]
pub(crate) fn generate_serial_reference(config: &DatasetConfig) -> Result<Dataset, DatasetError> {
    let circuit = sweep_circuit(config)?;
    let instances = (0..config.num_instances)
        .map(|i| generate_one(config, &circuit, i))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Dataset { circuit, instances })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    fn small_config() -> DatasetConfig {
        let mut config = DatasetConfig::quick_demo();
        config.num_instances = 6;
        config
    }

    #[test]
    fn parallel_matches_serial_for_every_worker_count() {
        let config = small_config();
        let serial = generate(&config).unwrap();
        for jobs in [1, 2, 4] {
            let parallel = generate_parallel(&config, jobs).unwrap();
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_jobs_degrades_to_one_worker() {
        let config = small_config();
        let (data, report) = generate_parallel_with(&config, 0, None).unwrap();
        assert_eq!(data.instances.len(), 6);
        assert_eq!(report.workers.len(), 1);
    }

    #[test]
    fn report_accounts_for_every_instance() {
        let config = small_config();
        let (data, report) = generate_parallel_with(&config, 3, None).unwrap();
        let done: usize = report.workers.iter().map(|w| w.instances).sum();
        assert_eq!(done, data.instances.len());
        assert_eq!(report.reused(), 0);
        assert_eq!(report.attacked(), 6);
        let total_work: u64 = report.workers.iter().map(|w| w.work).sum();
        let label_work: u64 = data.instances.iter().map(|i| i.work).sum();
        assert_eq!(total_work, label_work);
        assert!(report.summary().contains("worker 0"));
    }

    #[test]
    fn config_errors_surface_from_the_pool() {
        let mut config = small_config();
        config.profile = "c9999".into();
        assert!(matches!(
            generate_parallel(&config, 2),
            Err(DatasetError::UnknownProfile(_))
        ));
    }

    #[test]
    fn checkpointed_run_resumes_without_reattacking() {
        let config = small_config();
        let dir = std::env::temp_dir().join("icnet_parallel_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume_unit.ckpt");
        let _ = std::fs::remove_file(&path);

        let mut log = CheckpointLog::open(&path).unwrap();
        let (first, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
        assert_eq!(report.reused(), 0);
        assert_eq!(log.len(), 6);
        drop(log);

        let mut log = CheckpointLog::open(&path).unwrap();
        let (second, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
        assert_eq!(report.reused(), 6, "every attack skipped on resume");
        assert_eq!(report.attacked(), 0);
        assert_eq!(first, second);
    }
}
