//! Parallel dataset generation with deterministic replay and graceful
//! degradation.
//!
//! The sweep fans instances over a scoped worker pool built from
//! `std::thread::scope` and an atomic work index — no thread-pool crate,
//! because each instance already owns an independent RNG seed
//! ([`crate::instance_seed`]), so a shared counter is all the scheduling
//! the problem needs. Instance `i` is a pure function of `(config, i)` and
//! results land in slot `i`, which makes the output **byte-identical to the
//! serial sweep for every worker count** — scheduling order, worker count,
//! and checkpoint reuse cannot leak into the dataset.
//!
//! Every attack runs under the per-instance supervisor
//! ([`crate::supervise_attack`]): panics are isolated, wall-clock timeouts
//! and panics are retried with escalating deadlines (deterministic budgets
//! stay fixed so retries cannot change a label), and an instance that
//! exhausts its retries is *quarantined*. With
//! [`DatasetConfig::keep_going`] set (the default), the sweep records the
//! typed failure — in the [`CheckpointLog`] when one is attached, and in
//! the [`SweepReport`] always — and moves on, so one sick instance costs
//! its own label, not the sweep. With `keep_going` off, the first
//! quarantine aborts the sweep as [`DatasetError::Quarantined`], and the
//! shared [`attack::CancelToken`] stops the other workers' attacks at
//! their next DIP iteration. A resumed sweep skips both completed *and*
//! quarantined instances already on record.

use crate::checkpoint::{instance_key, supervision_key, CheckpointLog};
use crate::error::DatasetError;
use crate::generate::{
    generate_one, label_instance, lock_instance, sweep_circuit, Dataset, DatasetConfig,
};
use crate::instance::Instance;
use crate::supervise::{supervise_attack, InstanceFailure, Supervised};
use attack::CancelToken;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What one worker did during a sweep.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Instances this worker completed (attacked or reused).
    pub instances: usize,
    /// Of those, how many were reused from the checkpoint log.
    pub reused: usize,
    /// Instances this worker quarantined (fresh failures or failures
    /// reused from the checkpoint log).
    pub failed: usize,
    /// Deterministic solver work this worker expended.
    pub work: u64,
    /// Wall-clock time this worker spent on instances (not idle).
    pub busy: Duration,
}

/// One quarantined instance of a sweep, as reported in [`SweepReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepFailure {
    /// Index of the quarantined instance within the sweep.
    pub index: usize,
    /// The typed failure that exhausted the retry policy.
    pub failure: InstanceFailure,
    /// True when the quarantine was replayed from the checkpoint log
    /// instead of diagnosed by this run.
    pub reused: bool,
}

/// Per-worker counters, quarantine records, and totals for one parallel
/// sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// One entry per worker, in worker-id order.
    pub workers: Vec<WorkerStats>,
    /// Every instance quarantined this sweep, sorted by instance index.
    pub failures: Vec<SweepFailure>,
    /// Wall-clock duration of the whole sweep.
    pub elapsed: Duration,
}

impl SweepReport {
    /// Instances reused from the checkpoint log instead of re-attacked.
    pub fn reused(&self) -> usize {
        self.workers.iter().map(|w| w.reused).sum()
    }

    /// Instances whose attack actually ran and produced a label.
    pub fn attacked(&self) -> usize {
        let done: usize = self.workers.iter().map(|w| w.instances).sum();
        done - self.reused()
    }

    /// Instances quarantined (fresh or replayed from the log).
    pub fn quarantined(&self) -> usize {
        self.failures.len()
    }

    /// Renders the per-worker table printed at sweep end, followed by one
    /// line per quarantined instance when there are any.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# sweep: {} attacked, {} reused, {} quarantined, {:.2?} wall",
            self.attacked(),
            self.reused(),
            self.quarantined(),
            self.elapsed
        );
        for (id, w) in self.workers.iter().enumerate() {
            let _ = writeln!(
                out,
                "#   worker {id}: {} instances ({} reused, {} quarantined), work {}, busy {:.2?}",
                w.instances, w.reused, w.failed, w.work, w.busy
            );
        }
        for f in &self.failures {
            let _ = writeln!(
                out,
                "#   quarantined instance {}: {}{}",
                f.index,
                f.failure,
                if f.reused { " [from checkpoint]" } else { "" }
            );
        }
        out
    }
}

/// Generates the sweep described by `config` on `jobs` worker threads.
///
/// Produces a dataset byte-identical to [`crate::generate`] — see the
/// module docs for why worker count cannot affect the result. When
/// [`DatasetConfig::keep_going`] is set and instances quarantine, the
/// dataset holds the labels of the healthy instances only (use
/// [`generate_parallel_with`] to see which instances were quarantined).
///
/// # Errors
///
/// Same conditions as [`crate::generate`]; the first worker error wins and
/// the remaining attacks are cancelled.
pub fn generate_parallel(config: &DatasetConfig, jobs: usize) -> Result<Dataset, DatasetError> {
    generate_parallel_with(config, jobs, None).map(|(data, _)| data)
}

/// [`generate_parallel`], optionally resuming from / recording to a
/// [`CheckpointLog`], and returning the per-worker [`SweepReport`].
///
/// Each finished attack is appended to the log before its result is
/// published, so an interrupted sweep loses at most `jobs` in-flight
/// attacks. On resume, instances whose content hash is already on record
/// skip their attack entirely — completed instances are reused as labels,
/// quarantined instances are skipped and re-reported in the
/// [`SweepReport`].
///
/// # Errors
///
/// Same conditions as [`crate::generate`], plus [`DatasetError::Io`] when a
/// checkpoint append fails, plus [`DatasetError::Quarantined`] when an
/// instance exhausts its retry policy and `config.keep_going` is off.
pub fn generate_parallel_with(
    config: &DatasetConfig,
    jobs: usize,
    checkpoint: Option<&mut CheckpointLog>,
) -> Result<(Dataset, SweepReport), DatasetError> {
    let jobs = jobs.max(1);
    let circuit = sweep_circuit(config)?;
    let n = config.num_instances;
    let started = Instant::now();

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Instance>>> = Mutex::new(vec![None; n]);
    let failures: Mutex<Vec<SweepFailure>> = Mutex::new(Vec::new());
    let first_error: Mutex<Option<DatasetError>> = Mutex::new(None);
    // The internal worker token is a *child* of the external interrupt
    // token (when one is configured): an operator interrupt stops the
    // workers, but a worker aborting the sweep on an internal error never
    // trips the operator-level token other subsystems share.
    let cancel = config
        .cancel
        .as_ref()
        .map(CancelToken::child)
        .unwrap_or_default();
    let log = checkpoint.map(Mutex::new);
    // Quarantine records are only trusted across runs with the same
    // deadlines and retry policy (see `checkpoint::supervision_key`).
    let supervision = supervision_key(config);
    // One watchdog for the whole sweep (when configured): each worker arms
    // a per-instance heartbeat; a heartbeat that stops advancing for the
    // stall window cancels a per-instance *child* token, so the trip stops
    // exactly one attack, never the sweep.
    let watchdog = config.watchdog_stall.map(|stall| {
        budget::Watchdog::new(budget::WatchdogConfig {
            stall_after: stall,
            poll: (stall / 8).clamp(Duration::from_millis(5), Duration::from_millis(100)),
        })
    });

    // A quarantine is fatal exactly when the operator opted out of
    // keep-going; everything routes through here so the policy lives in
    // one place.
    let quarantine = |index: usize,
                      failure: InstanceFailure,
                      reused: bool,
                      persist: bool|
     -> Result<(), DatasetError> {
        if !config.keep_going {
            return Err(DatasetError::Quarantined {
                instance: index,
                circuit: config.profile.clone(),
                failure,
            });
        }
        if !reused && persist {
            if let Some(log) = &log {
                let locked = lock_instance(config, &circuit, index)?;
                let key = instance_key(config, &locked);
                log.lock()
                    .unwrap()
                    .record_failure(key, index, supervision, &failure)?;
            }
        }
        obs::emit(obs::EventKind::InstanceQuarantined {
            index: index as u64,
            kind: failure.kind.tag(),
            attempts: failure.attempts as u64,
            reused,
        });
        failures.lock().unwrap().push(SweepFailure {
            index,
            failure,
            reused,
        });
        Ok(())
    };

    let worker = |wid: usize| -> WorkerStats {
        let mut stats = WorkerStats::default();
        // Workers attack under a config that carries the shared cancel
        // token, so a fatal failure stops the others mid-attack.
        let mut cfg = config.clone();
        cfg.attack = cfg.attack.clone().with_cancel(cancel.clone());
        loop {
            if cancel.is_cancelled() {
                break;
            }
            let index = next.fetch_add(1, Ordering::Relaxed);
            if index >= n {
                break;
            }
            let begun = Instant::now();
            obs::emit(obs::EventKind::InstanceStarted {
                index: index as u64,
                worker: wid as u64,
            });
            // Attach the instance index to every event (solver snapshots,
            // attack iterations, retries) emitted while working on it, and
            // as the fault-injection context so plans can target one
            // instance deterministically regardless of worker scheduling.
            let _ctx = obs::context(index as u64);
            let _fault_ctx = faults::context(index as u64);
            if let Some(fault) = faults::inject("dataset.worker") {
                match fault.action {
                    faults::Action::Die => {
                        // The worker dies with this instance in flight: the
                        // instance is quarantined (reported, but *not*
                        // persisted — a dead worker is no verdict on the
                        // instance, so a resumed sweep re-attacks it), and
                        // the worker exits its loop for good. Survivors
                        // pick up the remaining work.
                        let failure = InstanceFailure {
                            kind: crate::supervise::FailureKind::Death,
                            attempts: 1,
                            message: format!(
                                "fault site dataset.worker killed worker {wid} \
                                 while attacking instance {index}"
                            ),
                            iterations: 0,
                            work: 0,
                        };
                        match quarantine(index, failure, false, false) {
                            Ok(()) => stats.failed += 1,
                            Err(e) => {
                                let mut slot = first_error.lock().unwrap();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                drop(slot);
                                cancel.cancel();
                            }
                        }
                        stats.busy += begun.elapsed();
                        break;
                    }
                    _ => fault.unsupported("dataset.worker"),
                }
            }
            // Ok(None) = instance quarantined under keep-going; the sweep
            // continues without a label for it.
            let outcome: Result<Option<(Instance, bool)>, DatasetError> = (|| {
                let locked = lock_instance(config, &circuit, index)?;
                let key = log.as_ref().map(|_| instance_key(config, &locked));
                if let (Some(log), Some(key)) = (&log, key) {
                    let log = log.lock().unwrap();
                    if let Some(done) = log.lookup(key) {
                        return Ok(Some((done.clone(), true)));
                    }
                    if let Some(known_bad) = log.lookup_failure(key, supervision) {
                        let failure = known_bad.clone();
                        drop(log);
                        quarantine(index, failure, true, true)?;
                        return Ok(None);
                    }
                }
                // Arm the watchdog for this instance (when configured). The
                // solver and DIP loop beat the heartbeat from inside their
                // hot loops; a hung oracle or livelocked hook stops the
                // beats, the watchdog cancels the per-instance child token,
                // and the attack unwinds as Cancelled — which the tripped
                // heartbeat below reclassifies as a Stalled quarantine.
                let mut attack_cfg = cfg.attack.clone();
                let heartbeat = watchdog.as_ref().map(|dog| {
                    let stall_cancel = cancel.child();
                    attack_cfg = attack_cfg.clone().with_cancel(stall_cancel.clone());
                    let hb = dog.watch(&format!("worker{wid}/instance{index}"), move |_label| {
                        stall_cancel.cancel();
                    });
                    attack_cfg.heartbeat = Some(hb.clone());
                    hb
                });
                match supervise_attack(config, &locked, index, &attack_cfg) {
                    Supervised::Done(result) => {
                        obs::emit(obs::EventKind::MemHighwater {
                            scope: "attack",
                            bytes: result.peak_logical_bytes,
                        });
                        let instance = label_instance(config, &locked, &result);
                        if let (Some(log), Some(key)) = (&log, key) {
                            log.lock().unwrap().record(key, index, &instance)?;
                        }
                        Ok(Some((instance, false)))
                    }
                    Supervised::Failed(failure) => {
                        quarantine(index, failure, false, true)?;
                        Ok(None)
                    }
                    Supervised::Cancelled => {
                        // A tripped heartbeat means the cancellation was the
                        // watchdog's, aimed at this instance alone: the
                        // attack hung somewhere its deadline polling cannot
                        // see. Quarantine as Stalled (persisted under the
                        // supervision fingerprint, like timeouts). A
                        // sweep-level cancel takes precedence — that is a
                        // shutdown, not a verdict on the instance.
                        if let Some(hb) = &heartbeat {
                            if hb.tripped() && !cancel.is_cancelled() {
                                let stall = config
                                    .watchdog_stall
                                    .expect("heartbeat exists only with a stall window");
                                quarantine(
                                    index,
                                    InstanceFailure {
                                        kind: crate::supervise::FailureKind::Stalled,
                                        attempts: 1,
                                        message: format!(
                                            "watchdog: no heartbeat progress for {stall:?}; \
                                             attack cancelled"
                                        ),
                                        iterations: 0,
                                        work: 0,
                                    },
                                    false,
                                    true,
                                )?;
                            }
                        }
                        // Otherwise: another worker's error or an external
                        // cancel — shutdown, nothing to report here.
                        Ok(None)
                    }
                }
            })();
            match outcome {
                Ok(Some((instance, reused))) => {
                    stats.instances += 1;
                    if reused {
                        stats.reused += 1;
                    } else {
                        stats.work += instance.work;
                    }
                    stats.busy += begun.elapsed();
                    obs::emit(obs::EventKind::InstanceFinished {
                        index: index as u64,
                        worker: wid as u64,
                        reused,
                        wall_ns: begun.elapsed().as_nanos() as u64,
                        work: instance.work,
                    });
                    slots.lock().unwrap()[index] = Some(instance);
                }
                Ok(None) => {
                    if cancel.is_cancelled() {
                        stats.busy += begun.elapsed();
                        break;
                    }
                    stats.failed += 1;
                    stats.busy += begun.elapsed();
                }
                Err(e) => {
                    let mut slot = first_error.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    drop(slot);
                    cancel.cancel();
                    stats.busy += begun.elapsed();
                    break;
                }
            }
        }
        stats
    };

    let workers: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|wid| scope.spawn(move || worker(wid)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    if let Some(error) = first_error.into_inner().unwrap() {
        return Err(error);
    }
    if config
        .cancel
        .as_ref()
        .is_some_and(CancelToken::is_cancelled)
    {
        // Operator interrupt: every finished instance is already in the
        // checkpoint log (when one is attached); rerunning resumes there.
        return Err(DatasetError::Interrupted);
    }
    let mut failures = failures.into_inner().unwrap();
    failures.sort_by_key(|f| f.index);
    let quarantined: std::collections::HashSet<usize> = failures.iter().map(|f| f.index).collect();
    let slots = slots.into_inner().unwrap();
    // With no error and no interrupt, every slot must be labeled or
    // quarantined — unless workers died (injected death) with work left.
    let unprocessed = slots
        .iter()
        .enumerate()
        .filter(|(index, slot)| slot.is_none() && !quarantined.contains(index))
        .count();
    if unprocessed > 0 {
        return Err(DatasetError::WorkerLoss { unprocessed });
    }
    let instances: Vec<Instance> = slots.into_iter().flatten().collect();
    let report = SweepReport {
        workers,
        failures,
        elapsed: started.elapsed(),
    };
    Ok((Dataset { circuit, instances }, report))
}

/// Serial reference sweep through the same code path as the workers —
/// exists so tests can assert `generate == generate_parallel` without
/// trusting either side.
#[allow(dead_code)]
pub(crate) fn generate_serial_reference(config: &DatasetConfig) -> Result<Dataset, DatasetError> {
    let circuit = sweep_circuit(config)?;
    let instances = (0..config.num_instances)
        .map(|i| generate_one(config, &circuit, i))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Dataset { circuit, instances })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::supervise::RetryPolicy;
    use attack::AttackError;
    use std::sync::Arc;

    fn small_config() -> DatasetConfig {
        let mut config = DatasetConfig::quick_demo();
        config.num_instances = 6;
        config
    }

    #[test]
    fn parallel_matches_serial_for_every_worker_count() {
        let config = small_config();
        let serial = generate(&config).unwrap();
        for jobs in [1, 2, 4] {
            let parallel = generate_parallel(&config, jobs).unwrap();
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_jobs_degrades_to_one_worker() {
        let config = small_config();
        let (data, report) = generate_parallel_with(&config, 0, None).unwrap();
        assert_eq!(data.instances.len(), 6);
        assert_eq!(report.workers.len(), 1);
    }

    #[test]
    fn report_accounts_for_every_instance() {
        let config = small_config();
        let (data, report) = generate_parallel_with(&config, 3, None).unwrap();
        let done: usize = report.workers.iter().map(|w| w.instances).sum();
        assert_eq!(done, data.instances.len());
        assert_eq!(report.reused(), 0);
        assert_eq!(report.attacked(), 6);
        assert_eq!(report.quarantined(), 0);
        let total_work: u64 = report.workers.iter().map(|w| w.work).sum();
        let label_work: u64 = data.instances.iter().map(|i| i.work).sum();
        assert_eq!(total_work, label_work);
        assert!(report.summary().contains("worker 0"));
    }

    #[test]
    fn config_errors_surface_from_the_pool() {
        let mut config = small_config();
        config.profile = "c9999".into();
        assert!(matches!(
            generate_parallel(&config, 2),
            Err(DatasetError::UnknownProfile(_))
        ));
    }

    #[test]
    fn checkpointed_run_resumes_without_reattacking() {
        let config = small_config();
        let dir = std::env::temp_dir().join("icnet_parallel_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume_unit.ckpt");
        let _ = std::fs::remove_file(&path);

        let mut log = CheckpointLog::open(&path).unwrap();
        let (first, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
        assert_eq!(report.reused(), 0);
        assert_eq!(log.len(), 6);
        drop(log);

        let mut log = CheckpointLog::open(&path).unwrap();
        let (second, report) = generate_parallel_with(&config, 2, Some(&mut log)).unwrap();
        assert_eq!(report.reused(), 6, "every attack skipped on resume");
        assert_eq!(report.attacked(), 0);
        assert_eq!(first, second);
    }

    #[test]
    fn keep_going_quarantines_a_panicking_instance() {
        let mut config = small_config();
        config.retry = RetryPolicy {
            max_attempts: 2,
            escalation: 2,
        };
        config.attack_hook = Some(Arc::new(|index, locked, cfg| {
            if index == 2 {
                panic!("injected fault at instance 2");
            }
            attack::attack_locked(locked, cfg)
        }));
        let (data, report) = generate_parallel_with(&config, 3, None).unwrap();
        assert_eq!(data.instances.len(), 5, "only the sick instance is lost");
        assert_eq!(report.quarantined(), 1);
        let f = &report.failures[0];
        assert_eq!(f.index, 2);
        assert!(f.failure.message.contains("injected fault"));
        assert_eq!(f.failure.attempts, 2);
        assert!(report.summary().contains("quarantined instance 2"));
    }

    #[test]
    fn no_keep_going_aborts_on_the_sick_instance() {
        let mut config = small_config();
        config.keep_going = false;
        config.attack_hook = Some(Arc::new(|index, locked, cfg| {
            if index == 2 {
                return Err(AttackError::OracleInconsistent);
            }
            attack::attack_locked(locked, cfg)
        }));
        match generate_parallel(&config, 2) {
            Err(DatasetError::Quarantined { instance: 2, .. }) => {}
            other => panic!("expected fatal quarantine of instance 2, got {other:?}"),
        }
    }

    /// A logical-byte budget that splits `config`'s sweep: some instances
    /// fit, some exceed. Calibrated from the unbudgeted per-instance peaks
    /// so the test tracks solver evolution instead of hardcoding bytes.
    fn splitting_budget(config: &DatasetConfig) -> u64 {
        let circuit = sweep_circuit(config).unwrap();
        let mut peaks: Vec<u64> = (0..config.num_instances)
            .map(|i| {
                let locked = lock_instance(config, &circuit, i).unwrap();
                attack::attack_locked(&locked, &config.attack)
                    .unwrap()
                    .peak_logical_bytes
            })
            .collect();
        peaks.sort_unstable();
        let (min, max) = (peaks[0], peaks[peaks.len() - 1]);
        assert!(
            min < max,
            "calibration needs peak variance to split the sweep (all peaks = {min})"
        );
        (min + max) / 2
    }

    #[test]
    fn mem_budget_quarantine_set_is_identical_for_every_worker_count() {
        let mut config = small_config();
        config.attack.mem_budget = Some(splitting_budget(&config));
        let (serial, serial_report) = generate_parallel_with(&config, 1, None).unwrap();
        let quarantined: Vec<(usize, crate::supervise::FailureKind)> = serial_report
            .failures
            .iter()
            .map(|f| (f.index, f.failure.kind))
            .collect();
        assert!(
            !quarantined.is_empty() && !serial.instances.is_empty(),
            "calibrated budget must split the sweep \
             ({} quarantined, {} labeled)",
            quarantined.len(),
            serial.instances.len()
        );
        assert!(quarantined
            .iter()
            .all(|(_, k)| *k == crate::supervise::FailureKind::MemoryExceeded));
        for jobs in [2, 4] {
            let (parallel, report) = generate_parallel_with(&config, jobs, None).unwrap();
            let par_quarantined: Vec<(usize, crate::supervise::FailureKind)> = report
                .failures
                .iter()
                .map(|f| (f.index, f.failure.kind))
                .collect();
            assert_eq!(quarantined, par_quarantined, "jobs={jobs}");
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn raised_budget_resume_reattacks_only_quarantined_instances() {
        let mut tight = small_config();
        tight.attack.mem_budget = Some(splitting_budget(&tight));
        let dir = std::env::temp_dir().join("icnet_parallel_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mem_resume_unit.ckpt");
        let _ = std::fs::remove_file(&path);

        let mut log = CheckpointLog::open(&path).unwrap();
        let (_, report) = generate_parallel_with(&tight, 2, Some(&mut log)).unwrap();
        let quarantined = report.quarantined();
        let labeled = report.attacked();
        assert!(
            quarantined > 0 && labeled > 0,
            "budget must split the sweep"
        );
        drop(log);

        // Raising the budget changes the supervision fingerprint, so the
        // quarantine verdicts are stale; completed labels keep their
        // instance keys and are reused as-is.
        let mut roomy = tight.clone();
        roomy.attack.mem_budget = None;
        let mut log = CheckpointLog::open(&path).unwrap();
        let (data, report) = generate_parallel_with(&roomy, 2, Some(&mut log)).unwrap();
        assert_eq!(report.reused(), labeled, "completed labels survive");
        assert_eq!(
            report.attacked(),
            quarantined,
            "exactly the quarantined instances are re-attacked"
        );
        assert_eq!(report.quarantined(), 0);

        // The healed dataset is byte-identical to a never-budgeted run:
        // labels that completed under the budget were never perturbed by it
        // (perturbed completions quarantine instead of labeling).
        let baseline = generate(&small_config()).unwrap();
        assert_eq!(data, baseline);
    }

    #[test]
    fn watchdog_quarantines_a_non_polling_hang_as_stalled() {
        let mut config = small_config();
        config.watchdog_stall = Some(Duration::from_millis(120));
        config.attack_hook = Some(Arc::new(|index, locked, cfg| {
            if index == 2 {
                // A non-polling hang: never beats the heartbeat, ignores
                // deadlines. Only the cancel token — tripped by the
                // watchdog — gets us out.
                while !cfg.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            attack::attack_locked(locked, cfg)
        }));
        let (data, report) = generate_parallel_with(&config, 2, None).unwrap();
        assert_eq!(data.instances.len(), 5, "only the hung instance is lost");
        assert_eq!(report.quarantined(), 1);
        let f = &report.failures[0];
        assert_eq!(f.index, 2);
        assert_eq!(f.failure.kind, crate::supervise::FailureKind::Stalled);
        assert!(
            f.failure.message.contains("watchdog"),
            "{}",
            f.failure.message
        );
    }

    #[test]
    fn healthy_instances_are_identical_with_and_without_a_sick_neighbor() {
        let clean = small_config();
        let baseline = generate(&clean).unwrap();
        let mut sick = clean.clone();
        sick.attack_hook = Some(Arc::new(|index, locked, cfg| {
            if index == 4 {
                panic!("sick neighbor");
            }
            attack::attack_locked(locked, cfg)
        }));
        for jobs in [1, 2, 4] {
            let (data, report) = generate_parallel_with(&sick, jobs, None).unwrap();
            assert_eq!(report.quarantined(), 1, "jobs={jobs}");
            let expected: Vec<_> = baseline
                .instances
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 4)
                .map(|(_, inst)| inst.clone())
                .collect();
            assert_eq!(data.instances, expected, "jobs={jobs}");
        }
    }
}
