use std::fmt;

/// Errors produced by dataset generation or persistence.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DatasetError {
    /// The requested circuit profile does not exist.
    UnknownProfile(String),
    /// The key-count range is empty or exceeds the circuit's eligible gates.
    BadKeyRange {
        /// Configured inclusive range.
        range: (usize, usize),
        /// Eligible gates available.
        available: usize,
    },
    /// A locking operation failed.
    Obfuscate(obfuscate::ObfuscateError),
    /// An attack run failed.
    Attack(attack::AttackError),
    /// A CSV line could not be parsed.
    ParseCsv {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A filesystem operation on a dataset artifact failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, rendered (keeps the type `Clone`).
        message: String,
    },
    /// A checkpoint log record is corrupt.
    Checkpoint {
        /// 1-based line number in the log.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::UnknownProfile(name) => write!(f, "unknown circuit profile `{name}`"),
            DatasetError::BadKeyRange { range, available } => write!(
                f,
                "key-count range {}..={} invalid for {} eligible gates",
                range.0, range.1, available
            ),
            DatasetError::Obfuscate(e) => write!(f, "obfuscation failed: {e}"),
            DatasetError::Attack(e) => write!(f, "attack failed: {e}"),
            DatasetError::ParseCsv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DatasetError::Io { path, message } => {
                write!(f, "io error on `{path}`: {message}")
            }
            DatasetError::Checkpoint { line, message } => {
                write!(f, "corrupt checkpoint record at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Obfuscate(e) => Some(e),
            DatasetError::Attack(e) => Some(e),
            _ => None,
        }
    }
}

impl From<obfuscate::ObfuscateError> for DatasetError {
    fn from(e: obfuscate::ObfuscateError) -> Self {
        DatasetError::Obfuscate(e)
    }
}

impl From<attack::AttackError> for DatasetError {
    fn from(e: attack::AttackError) -> Self {
        DatasetError::Attack(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DatasetError::UnknownProfile("cX".into())
            .to_string()
            .contains("cX"));
        assert!(DatasetError::BadKeyRange {
            range: (1, 400),
            available: 100
        }
        .to_string()
        .contains("400"));
    }
}
