use crate::supervise::InstanceFailure;
use std::fmt;

/// Errors produced by dataset generation or persistence.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DatasetError {
    /// The requested circuit profile does not exist.
    UnknownProfile(String),
    /// The key-count range is empty or exceeds the circuit's eligible gates.
    BadKeyRange {
        /// Configured inclusive range.
        range: (usize, usize),
        /// Eligible gates available.
        available: usize,
    },
    /// A locking operation failed.
    Obfuscate(obfuscate::ObfuscateError),
    /// An attack run failed on one specific instance. `instance` and
    /// `circuit` identify *which* attack died, so a fatal sweep error names
    /// the culprit instead of only the error kind.
    Attack {
        /// Index of the instance whose attack failed.
        instance: usize,
        /// Circuit profile being swept.
        circuit: String,
        /// The underlying attack error.
        source: attack::AttackError,
    },
    /// An instance exhausted its retry policy and the sweep was not running
    /// with keep-going, so the failure is fatal.
    Quarantined {
        /// Index of the failing instance.
        instance: usize,
        /// Circuit profile being swept.
        circuit: String,
        /// The typed failure that exhausted the retries.
        failure: InstanceFailure,
    },
    /// A raw structural feature (gate degree or logic level) exceeded the
    /// fixed-point range of the feature encoding. Raised instead of
    /// silently saturating, so corpora whose gate mix outgrows the ISCAS
    /// assumptions (e.g. wide Anti-SAT comparator trees) fail loudly.
    FeatureRange {
        /// Name of the offending gate.
        gate: String,
        /// Which feature overflowed ("fan-in degree", ...).
        feature: &'static str,
        /// The raw value.
        value: usize,
        /// The encoding's inclusive maximum.
        limit: usize,
    },
    /// A CSV line could not be parsed.
    ParseCsv {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A filesystem operation on a dataset artifact failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, rendered (keeps the type `Clone`).
        message: String,
    },
    /// A checkpoint log record is corrupt.
    Checkpoint {
        /// 1-based line number in the log.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The sweep was cancelled by an external interrupt (operator Ctrl-C)
    /// before every instance was attacked. Work finished so far is already
    /// persisted in the checkpoint log; rerunning resumes from it.
    Interrupted,
    /// Every worker died (injected death or panic escape) before the sweep
    /// covered all instances, leaving some unattacked with no error and no
    /// cancellation to explain them.
    WorkerLoss {
        /// Instances left neither labeled nor quarantined.
        unprocessed: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::UnknownProfile(name) => write!(f, "unknown circuit profile `{name}`"),
            DatasetError::BadKeyRange { range, available } => write!(
                f,
                "key-count range {}..={} invalid for {} eligible gates",
                range.0, range.1, available
            ),
            DatasetError::Obfuscate(e) => write!(f, "obfuscation failed: {e}"),
            DatasetError::Attack {
                instance,
                circuit,
                source,
            } => write!(
                f,
                "attack on instance {instance} of `{circuit}` failed: {source}"
            ),
            DatasetError::Quarantined {
                instance,
                circuit,
                failure,
            } => write!(
                f,
                "instance {instance} of `{circuit}` quarantined: {failure}"
            ),
            DatasetError::FeatureRange {
                gate,
                feature,
                value,
                limit,
            } => write!(
                f,
                "gate `{gate}` has {feature} {value}, beyond the feature encoding limit {limit}"
            ),
            DatasetError::ParseCsv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DatasetError::Io { path, message } => {
                write!(f, "io error on `{path}`: {message}")
            }
            DatasetError::Checkpoint { line, message } => {
                write!(f, "corrupt checkpoint record at line {line}: {message}")
            }
            DatasetError::Interrupted => {
                write!(
                    f,
                    "sweep interrupted before completion (progress checkpointed)"
                )
            }
            DatasetError::WorkerLoss { unprocessed } => write!(
                f,
                "all sweep workers died with {unprocessed} instance(s) unprocessed"
            ),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Obfuscate(e) => Some(e),
            DatasetError::Attack { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<obfuscate::ObfuscateError> for DatasetError {
    fn from(e: obfuscate::ObfuscateError) -> Self {
        DatasetError::Obfuscate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DatasetError::UnknownProfile("cX".into())
            .to_string()
            .contains("cX"));
        assert!(DatasetError::BadKeyRange {
            range: (1, 400),
            available: 100
        }
        .to_string()
        .contains("400"));
    }

    #[test]
    fn attack_error_names_the_instance_and_circuit() {
        let text = DatasetError::Attack {
            instance: 42,
            circuit: "c432".into(),
            source: attack::AttackError::OracleInconsistent,
        }
        .to_string();
        assert!(text.contains("instance 42"), "{text}");
        assert!(text.contains("c432"), "{text}");
        assert!(text.contains("inconsistent"), "{text}");
    }

    #[test]
    fn quarantine_error_names_the_instance() {
        let text = DatasetError::Quarantined {
            instance: 7,
            circuit: "c1529".into(),
            failure: crate::supervise::InstanceFailure {
                kind: crate::supervise::FailureKind::Timeout,
                attempts: 2,
                message: "deadline expired".into(),
                iterations: 3,
                work: 99,
            },
        }
        .to_string();
        assert!(text.contains("instance 7"), "{text}");
        assert!(text.contains("timeout after 2 attempts"), "{text}");
    }
}
