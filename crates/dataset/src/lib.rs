//! Dataset pipeline: obfuscate → attack → label → encode → split.
//!
//! Reproduces the paper's data generation (Section IV-A): take one circuit,
//! repeatedly pick random gates to obfuscate (LUT size 4 in the paper), run
//! the SAT attack, and record the de-obfuscation runtime. Two sweeps are
//! predefined:
//!
//! * **Dataset 1** — encryption locations drawn from 1..=350 (tests
//!   sensitivity to the *quantity* of locked gates);
//! * **Dataset 2** — encryption locations drawn from 1..=3 (tests precision
//!   on very small runtimes).
//!
//! The runtime label defaults to the deterministic solver-work measure (see
//! [`attack::RuntimeMeasure`]); instances whose attack exceeded the work
//! budget carry a lower-bound label and are flagged
//! [`Instance::censored`].
//!
//! # Example
//!
//! ```
//! use dataset::{generate, DatasetConfig};
//!
//! # fn main() -> Result<(), dataset::DatasetError> {
//! let config = DatasetConfig::quick_demo();
//! let data = generate(&config)?;
//! assert_eq!(data.instances.len(), config.num_instances);
//! assert!(data.instances.iter().all(|i| i.log_seconds.is_finite()));
//! # Ok(())
//! # }
//! ```

mod checkpoint;
mod csv;
mod encode;
mod error;
mod generate;
mod instance;
mod parallel;
mod split;
mod supervise;

pub use checkpoint::{instance_key, supervision_key, CheckpointLog};
pub use csv::{dataset_from_csv, dataset_to_csv};
pub use encode::{
    degree_level_features, flat_features, graph_features, FlatAggregation, StructureEncoding,
    MAX_STRUCT_FEATURE,
};
pub use error::DatasetError;
pub use generate::{generate, generate_one, instance_seed, sweep_circuit, Dataset, DatasetConfig};
pub use instance::Instance;
pub use parallel::{
    generate_parallel, generate_parallel_with, SweepFailure, SweepReport, WorkerStats,
};
pub use split::{kfold, train_test_split, Split};
pub use supervise::{
    supervise_attack, AttackHook, FailureKind, InstanceFailure, RetryPolicy, Supervised,
};
