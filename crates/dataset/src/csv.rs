//! Hand-rolled CSV persistence for datasets (keeps the dependency surface
//! at the sanctioned crates only).
//!
//! Format: a header line, then one line per instance:
//! `selected;...,key_bits,iterations,work,seconds,log_seconds,censored`.
//! The circuit itself is not serialized — it is regenerable from the
//! profile name and seed (see [`synth::iscas::circuit`]).

use crate::error::DatasetError;
use crate::instance::Instance;
use netlist::GateId;
use std::fmt::Write as _;

const HEADER: &str = "selected,key_bits,iterations,work,seconds,log_seconds,censored";

/// Serializes one instance as a single CSV line (no trailing newline).
/// Shared with the checkpoint log, which stores one instance per record.
pub(crate) fn instance_to_line(inst: &Instance) -> String {
    let sel: Vec<String> = inst
        .selected
        .iter()
        .map(|g| g.index().to_string())
        .collect();
    format!(
        "{},{},{},{},{},{},{}",
        sel.join(";"),
        inst.key_bits,
        inst.iterations,
        inst.work,
        inst.seconds,
        inst.log_seconds,
        inst.censored
    )
}

/// Serializes instances to CSV text.
pub fn dataset_to_csv(instances: &[Instance]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    for inst in instances {
        let _ = writeln!(out, "{}", instance_to_line(inst));
    }
    out
}

/// Parses instances back from [`dataset_to_csv`] output.
///
/// # Errors
///
/// Returns [`DatasetError::ParseCsv`] for missing fields or bad numbers.
pub fn dataset_from_csv(text: &str) -> Result<Vec<Instance>, DatasetError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == HEADER => {}
        _ => {
            return Err(DatasetError::ParseCsv {
                line: 1,
                message: format!("expected header `{HEADER}`"),
            })
        }
    }
    let mut out = Vec::new();
    for (lineno, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(instance_from_line(line, lineno + 1)?);
    }
    Ok(out)
}

/// Parses one instance from a single CSV line ([`instance_to_line`] format).
/// `lineno` is only used in error messages.
pub(crate) fn instance_from_line(line: &str, lineno: usize) -> Result<Instance, DatasetError> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 7 {
        return Err(DatasetError::ParseCsv {
            line: lineno,
            message: format!("expected 7 fields, found {}", fields.len()),
        });
    }
    let bad = |message: String| DatasetError::ParseCsv {
        line: lineno,
        message,
    };
    let selected: Vec<GateId> = if fields[0].is_empty() {
        Vec::new()
    } else {
        fields[0]
            .split(';')
            .map(|s| {
                s.parse::<usize>()
                    .map(GateId::from_index)
                    .map_err(|_| bad(format!("bad gate index `{s}`")))
            })
            .collect::<Result<_, _>>()?
    };
    Ok(Instance {
        selected,
        key_bits: fields[1]
            .parse()
            .map_err(|_| bad(format!("bad key_bits `{}`", fields[1])))?,
        iterations: fields[2]
            .parse()
            .map_err(|_| bad(format!("bad iterations `{}`", fields[2])))?,
        work: fields[3]
            .parse()
            .map_err(|_| bad(format!("bad work `{}`", fields[3])))?,
        seconds: fields[4]
            .parse()
            .map_err(|_| bad(format!("bad seconds `{}`", fields[4])))?,
        log_seconds: fields[5]
            .parse()
            .map_err(|_| bad(format!("bad log_seconds `{}`", fields[5])))?,
        censored: fields[6]
            .parse()
            .map_err(|_| bad(format!("bad censored `{}`", fields[6])))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Instance> {
        vec![
            Instance {
                selected: vec![GateId::from_index(3), GateId::from_index(14)],
                key_bits: 32,
                iterations: 9,
                work: 123456,
                seconds: 0.0061728,
                log_seconds: 0.0061728f64.ln(),
                censored: false,
            },
            Instance {
                selected: vec![],
                key_bits: 0,
                iterations: 0,
                work: 10,
                seconds: 5e-7,
                log_seconds: (1e-6f64).ln(),
                censored: true,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let original = sample();
        let text = dataset_to_csv(&original);
        let parsed = dataset_from_csv(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn sub_microsecond_labels_round_trip_bit_exactly() {
        // `AttackRuntime::log_seconds` floors seconds at 1e-6 before taking
        // the log, so a sub-microsecond attack produces the irrational label
        // ln(1e-6) alongside an *unfloored* seconds column. Both must
        // survive the CSV round trip bit-for-bit (f64 `to_string` emits the
        // shortest representation that re-parses to the same bits), and the
        // floored label must stay consistent with re-deriving it from the
        // parsed seconds column.
        let measure = attack::RuntimeMeasure::SolverWork;
        for work in [0u64, 1, 7, 19, 20, 21, 12345] {
            let runtime = attack::AttackRuntime {
                work,
                wall: std::time::Duration::ZERO,
            };
            let inst = Instance {
                selected: vec![GateId::from_index(1)],
                key_bits: 1,
                iterations: 0,
                work,
                seconds: runtime.seconds(measure),
                log_seconds: runtime.log_seconds(measure),
                censored: false,
            };
            let parsed = dataset_from_csv(&dataset_to_csv(std::slice::from_ref(&inst))).unwrap();
            assert_eq!(parsed.len(), 1);
            assert_eq!(
                parsed[0].seconds.to_bits(),
                inst.seconds.to_bits(),
                "seconds for work={work}"
            );
            assert_eq!(
                parsed[0].log_seconds.to_bits(),
                inst.log_seconds.to_bits(),
                "log_seconds for work={work}"
            );
            // Flooring commutes with the round trip: re-deriving the label
            // from the parsed seconds gives back the stored label.
            assert_eq!(
                parsed[0].seconds.max(1e-6).ln().to_bits(),
                parsed[0].log_seconds.to_bits(),
                "re-derived label for work={work}"
            );
        }
    }

    #[test]
    fn missing_header_is_error() {
        assert!(matches!(
            dataset_from_csv("1;2,3,4,5,6,7,true\n"),
            Err(DatasetError::ParseCsv { line: 1, .. })
        ));
    }

    #[test]
    fn bad_field_count_is_error() {
        let text = format!("{HEADER}\n1;2,3\n");
        assert!(matches!(
            dataset_from_csv(&text),
            Err(DatasetError::ParseCsv { line: 2, .. })
        ));
    }

    #[test]
    fn bad_number_is_error() {
        let text = format!("{HEADER}\n1;x,3,4,5,6,7,false\n");
        let err = dataset_from_csv(&text).unwrap_err();
        assert!(err.to_string().contains("bad gate index"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("{HEADER}\n\n3,1,2,3,4.0,1.5,false\n\n");
        let parsed = dataset_from_csv(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].selected, vec![GateId::from_index(3)]);
    }
}
