//! Incremental checkpointing for dataset sweeps.
//!
//! Attacking hundreds of locked instances takes hours; losing a sweep to a
//! crash or preemption at instance 340/350 is unacceptable. The checkpoint
//! log persists each labeled instance the moment its attack finishes, as one
//! append-only record, so an interrupted sweep resumes by replaying the log
//! and re-attacking only the missing instances.
//!
//! Records are keyed by a content hash of the *locked circuit* (its
//! canonical `.bench` text plus the key and the attack-relevant
//! configuration) rather than by instance index. Re-locking an instance is
//! milliseconds, so resume re-derives each instance's locked circuit,
//! hashes it, and skips the attack on a hit — which makes the log robust to
//! reordering and immune to config drift: change the seed, scheme, budget,
//! or circuit and every key changes, so stale records are simply never
//! matched (and a sweep can even share a log with other sweeps).
//!
//! Besides completed labels the log also records *quarantined* instances —
//! ones whose attack exhausted its retry policy by timing out, panicking,
//! or erroring (see [`crate::supervise`]). A resumed sweep skips known-bad
//! instances instead of re-diverging on them — but only while the
//! *supervision policy* is unchanged: each `fail` record carries a
//! [`supervision_key`] fingerprint of the deadlines and retry policy it
//! gave up under, and [`CheckpointLog::lookup_failure`] ignores records
//! from a different policy. Rerunning with a raised `--deadline` or
//! `--retries` therefore re-attacks known-bad instances instead of
//! trusting a verdict reached under tighter limits. (Success records need
//! no such guard: a completed or budget-censored label is a deterministic
//! function of the inputs fingerprinted by [`instance_key`]; deadlines can
//! only time an attack out, never change a label it produced.)
//!
//! Format: a header line `# icnet-checkpoint v3`, then one record per line:
//!
//! * success: `<key:016x> <index> ok <instance CSV fields> #<crc:016x>`
//! * failure: `<key:016x> <index> fail <kind>,<attempts>,<iterations>,<work>,<supervision:016x>,<message> #<crc:016x>`
//!
//! (see [`crate::dataset_to_csv`] for the instance field list). The index
//! is informational — the hash is the key. The trailing `#<crc>` is a
//! 64-bit FNV-1a checksum of the record body before it: any single-byte
//! substitution in a record changes the checksum (each FNV step is a
//! bijection on the 64-bit state), so mid-file corruption is detected and
//! reported at open time rather than silently deserialized into a bogus
//! label. A truncated *final* line — the crash-mid-append case — is still
//! recovered, not fatal.

use crate::csv::{instance_from_line, instance_to_line};
use crate::error::DatasetError;
use crate::generate::DatasetConfig;
use crate::instance::Instance;
use crate::supervise::{sanitize_line, FailureKind, InstanceFailure};
use obfuscate::LockedCircuit;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

const MAGIC: &str = "# icnet-checkpoint v3";

// The checksum lives in `faults` so every checkpoint format in the
// workspace (this log, the training checkpoint, the dataset cache footer)
// shares one implementation with identical corruption-detection behavior.
use faults::{fnv1a, FNV_OFFSET};

/// Checksum of one record body (the line text before ` #<crc>`).
fn record_crc(body: &str) -> u64 {
    fnv1a(FNV_OFFSET, body.as_bytes())
}

/// Content hash identifying one attack run: the locked circuit's canonical
/// `.bench` text, its key bits, the scheme identity *with its parameters*
/// (`SchemeKind`'s `Display` carries LUT size / Anti-SAT key width), and
/// every configuration field that changes the attack's *deterministic*
/// outcome (work budget, per-solve conflict cap, runtime measure). Two
/// sweeps produce the same key for an instance exactly when the attack
/// would produce the same label; changing any scheme parameter changes the
/// key, so stale labels from a differently-parameterized scheme are never
/// reused. Wall-clock deadlines and the retry policy are deliberately
/// excluded — they decide whether an attack *finishes*, never what label a
/// finished attack gets — and are fingerprinted separately by
/// [`supervision_key`] for quarantine records.
pub fn instance_key(config: &DatasetConfig, locked: &LockedCircuit) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, locked.locked.to_bench().as_bytes());
    let key_bits: Vec<u8> = locked.key.bits().iter().map(|&b| b as u8).collect();
    h = fnv1a(h, &key_bits);
    let attack_fingerprint = format!(
        "scheme={};budget={:?};conflicts={:?};measure={:?}",
        config.scheme, config.attack.work_budget, config.attack.conflicts_per_solve, config.measure
    );
    fnv1a(h, attack_fingerprint.as_bytes())
}

/// Fingerprint of the supervision policy a quarantine verdict was reached
/// under: the scheme (with its parameters), both wall-clock deadlines, the
/// retry policy, the logical-byte memory budget, and the watchdog stall
/// window. A `fail` record is only authoritative for runs with the *same*
/// fingerprint — raise the deadline, add retries, raise `--mem-budget`, or
/// change a scheme parameter (e.g. the Anti-SAT key width) and the instance
/// deserves another attack, so [`CheckpointLog::lookup_failure`] treats the
/// stale record as absent. The scheme is part of this fingerprint even
/// though it also shapes [`instance_key`]: a quarantine verdict says "this
/// scheme at these parameters was too hard under this policy", and neither
/// half of that statement survives a parameter change.
///
/// The memory budget rides here and *not* in [`instance_key`] for the same
/// reason the deadlines do: it decides whether an attack finishes, and an
/// attack that finished under one budget would have produced the same label
/// under any roomier one (degradation only trades search speed for bytes,
/// never the verdict of a completed run). Completed labels therefore
/// survive a budget change; only quarantine verdicts are invalidated.
pub fn supervision_key(config: &DatasetConfig) -> u64 {
    let fingerprint = format!(
        "scheme={};deadline={:?};per_query={:?};attempts={};escalation={};mem={:?};stall={:?}",
        config.scheme,
        config.attack.deadline,
        config.attack.per_query_deadline,
        config.retry.max_attempts.max(1),
        config.retry.escalation,
        config.attack.mem_budget,
        config.watchdog_stall,
    );
    fnv1a(FNV_OFFSET, fingerprint.as_bytes())
}

/// An append-only log of completed and quarantined instances, keyed by
/// [`instance_key`].
///
/// [`CheckpointLog::open`] loads every valid record already on disk;
/// [`CheckpointLog::record`] / [`CheckpointLog::record_failure`] append and
/// flush one record per finished (or given-up) attack, so a crash loses at
/// most the instance in flight.
#[derive(Debug)]
pub struct CheckpointLog {
    path: PathBuf,
    entries: HashMap<u64, Instance>,
    /// Quarantines, each stored with the [`supervision_key`] of the policy
    /// it was reached under.
    failures: HashMap<u64, (u64, InstanceFailure)>,
    file: File,
    /// Set after a failed append. The on-disk tail may then be a *partial*
    /// line, and a further append — e.g. from another worker still draining
    /// while the sweep unwinds — would concatenate a valid record onto that
    /// partial tail, turning recoverable tail damage into unrecoverable
    /// interior corruption. A poisoned handle refuses all writes; reopening
    /// the log runs recovery and yields a clean handle.
    poisoned: bool,
}

impl CheckpointLog {
    /// Opens (creating if absent) the log at `path` and loads its records.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Io`] when the file cannot be read or created
    /// and [`DatasetError::Checkpoint`] when an existing record is corrupt
    /// (bad checksum, malformed fields, wrong header) — a truncated final
    /// line (the crash case) is *not* an error; it is dropped and
    /// overwritten by the next append.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, DatasetError> {
        let path = path.as_ref().to_path_buf();
        let io_err = |e: std::io::Error| DatasetError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let existing = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(io_err(e)),
        };
        let mut entries = HashMap::new();
        let mut failures = HashMap::new();
        let complete = existing.is_empty() || existing.ends_with('\n');
        let mut lines: Vec<&str> = existing.lines().collect();
        if !complete {
            // Interrupted mid-append: the partial tail record is lost, the
            // attack that produced it simply reruns.
            lines.pop();
        }
        for (i, line) in lines.iter().enumerate() {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            if lineno == 1 {
                if line.trim() != MAGIC {
                    return Err(DatasetError::Checkpoint {
                        line: 1,
                        message: format!("expected header `{MAGIC}`, found `{line}`"),
                    });
                }
                continue;
            }
            match parse_record(line, lineno)? {
                Record::Ok(key, inst) => {
                    entries.insert(key, inst);
                }
                Record::Fail(key, supervision, failure) => {
                    failures.insert(key, (supervision, failure));
                }
            }
        }
        // Byte length of the intact prefix that survives recovery.
        let keep = if complete {
            existing.len()
        } else {
            existing.rfind('\n').map_or(0, |i| i + 1)
        };
        if !complete {
            // Truncate the partial tail so it does not resurface as a
            // corrupt record on a later open.
            OpenOptions::new()
                .write(true)
                .open(&path)
                .and_then(|f| f.set_len(keep as u64))
                .map_err(io_err)?;
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        // The header must be (re)written whenever the surviving prefix is
        // empty — either the file is new, or a crash inside the very first
        // (header) write left a partial line that recovery just dropped.
        // Checking `existing.is_empty()` alone misses the latter and left a
        // headerless log that the *next* open rejected loudly.
        if keep == 0 {
            writeln!(file, "{MAGIC}").map_err(io_err)?;
            file.flush().map_err(io_err)?;
        }
        Ok(CheckpointLog {
            path,
            entries,
            failures,
            file,
            poisoned: false,
        })
    }

    /// Where this log lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of completed (labeled) instances on record.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of quarantined instances on record.
    pub fn num_quarantined(&self) -> usize {
        self.failures.len()
    }

    /// True when no instance has been recorded (labeled or quarantined).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.failures.is_empty()
    }

    /// The recorded instance for `key`, if its attack already completed.
    pub fn lookup(&self, key: u64) -> Option<&Instance> {
        self.entries.get(&key)
    }

    /// The recorded quarantine failure for `key`, if its attack already
    /// exhausted the retry policy in a previous run *under the same
    /// supervision policy* (`supervision` = [`supervision_key`] of the
    /// current config). A record written under different deadlines or a
    /// different retry policy is ignored, so a rerun with a raised
    /// `--deadline` / `--retries` re-attacks the instance instead of
    /// trusting a verdict reached under tighter limits.
    pub fn lookup_failure(&self, key: u64, supervision: u64) -> Option<&InstanceFailure> {
        self.failures
            .get(&key)
            .filter(|(recorded, _)| *recorded == supervision)
            .map(|(_, failure)| failure)
    }

    /// Appends one completed instance and flushes it to disk immediately.
    /// `index` is the instance's position in its sweep (informational).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Io`] when the append fails.
    pub fn record(
        &mut self,
        key: u64,
        index: usize,
        instance: &Instance,
    ) -> Result<(), DatasetError> {
        let body = format!("{key:016x} {index} ok {}", instance_to_line(instance));
        self.append(&body)?;
        self.entries.insert(key, instance.clone());
        Ok(())
    }

    /// Appends one quarantined instance and flushes it to disk immediately,
    /// so a resumed sweep under the same supervision policy (`supervision`
    /// = [`supervision_key`]) skips the known-bad instance.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Io`] when the append fails.
    pub fn record_failure(
        &mut self,
        key: u64,
        index: usize,
        supervision: u64,
        failure: &InstanceFailure,
    ) -> Result<(), DatasetError> {
        let body = format!(
            "{key:016x} {index} fail {},{},{},{},{supervision:016x},{}",
            failure.kind.tag(),
            failure.attempts,
            failure.iterations,
            failure.work,
            sanitize_line(&failure.message),
        );
        self.append(&body)?;
        self.failures.insert(key, (supervision, failure.clone()));
        Ok(())
    }

    fn append(&mut self, body: &str) -> Result<(), DatasetError> {
        let path = self.path.display().to_string();
        if self.poisoned {
            return Err(DatasetError::Io {
                path,
                message: "checkpoint log disabled after an earlier failed append \
                          (the on-disk tail may be partial; reopen to recover)"
                    .into(),
            });
        }
        let io_err = |e: std::io::Error| DatasetError::Io {
            path: path.clone(),
            message: e.to_string(),
        };
        let line = format!("{body} #{:016x}\n", record_crc(body));
        if let Some(fault) = faults::inject("checkpoint.append") {
            // Simulated crash mid-append: some prefix of the record reaches
            // disk, then the write "fails". Recovery on the next open must
            // drop exactly this partial tail.
            self.poisoned = true;
            let written = match fault.action {
                faults::Action::Torn => line.len() / 2,
                faults::Action::Short => line.len().saturating_sub(4),
                faults::Action::Io => 0,
                _ => fault.unsupported("checkpoint.append"),
            };
            self.file
                .write_all(&line.as_bytes()[..written])
                .and_then(|()| self.file.flush())
                .map_err(io_err)?;
            return Err(io_err(std::io::Error::other(format!(
                "injected fault: checkpoint.append {} after {written} of {} bytes \
                 (occurrence {})",
                fault.action,
                line.len(),
                fault.occurrence
            ))));
        }
        let result = self
            .file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush());
        if let Err(e) = result {
            // A failed write may have put any prefix of the line on disk.
            self.poisoned = true;
            return Err(io_err(e));
        }
        Ok(())
    }
}

enum Record {
    Ok(u64, Instance),
    Fail(u64, u64, InstanceFailure),
}

fn parse_record(line: &str, lineno: usize) -> Result<Record, DatasetError> {
    let corrupt = |message: String| DatasetError::Checkpoint {
        line: lineno,
        message,
    };
    let line = line.trim_end();
    let (body, crc_field) = line
        .rsplit_once(" #")
        .ok_or_else(|| corrupt("missing record checksum".into()))?;
    let crc = u64::from_str_radix(crc_field, 16)
        .map_err(|_| corrupt(format!("bad checksum field `{crc_field}`")))?;
    let actual = record_crc(body);
    if actual != crc {
        return Err(corrupt(format!(
            "checksum mismatch: record says {crc:016x}, contents hash to {actual:016x}"
        )));
    }
    let mut parts = body.splitn(4, ' ');
    let key_field = parts.next().unwrap_or("");
    let key = u64::from_str_radix(key_field, 16)
        .map_err(|_| corrupt(format!("bad content-hash key `{key_field}`")))?;
    let index_field = parts
        .next()
        .ok_or_else(|| corrupt("missing index".into()))?;
    index_field
        .parse::<usize>()
        .map_err(|_| corrupt(format!("bad index `{index_field}`")))?;
    let tag = parts
        .next()
        .ok_or_else(|| corrupt("missing record tag".into()))?;
    let rest = parts
        .next()
        .ok_or_else(|| corrupt("missing record payload".into()))?;
    match tag {
        "ok" => {
            let inst = instance_from_line(rest, lineno).map_err(|e| match e {
                DatasetError::ParseCsv { message, .. } => corrupt(message),
                other => other,
            })?;
            Ok(Record::Ok(key, inst))
        }
        "fail" => {
            let (supervision, failure) = parse_failure(rest, lineno)?;
            Ok(Record::Fail(key, supervision, failure))
        }
        other => Err(corrupt(format!("unknown record tag `{other}`"))),
    }
}

fn parse_failure(payload: &str, lineno: usize) -> Result<(u64, InstanceFailure), DatasetError> {
    let corrupt = |message: String| DatasetError::Checkpoint {
        line: lineno,
        message,
    };
    // The message is the free-form tail: split off exactly five structured
    // fields so commas inside the message survive.
    let mut fields = payload.splitn(6, ',');
    let kind_field = fields.next().unwrap_or("");
    let kind = FailureKind::from_tag(kind_field)
        .ok_or_else(|| corrupt(format!("unknown failure kind `{kind_field}`")))?;
    let mut num = |name: &str| -> Result<u64, DatasetError> {
        let field = fields
            .next()
            .ok_or_else(|| corrupt(format!("missing failure field `{name}`")))?;
        field
            .parse::<u64>()
            .map_err(|_| corrupt(format!("bad failure field `{name}`: `{field}`")))
    };
    let attempts = num("attempts")? as usize;
    let iterations = num("iterations")? as usize;
    let work = num("work")?;
    let supervision_field = fields
        .next()
        .ok_or_else(|| corrupt("missing failure field `supervision`".into()))?;
    let supervision = u64::from_str_radix(supervision_field, 16).map_err(|_| {
        corrupt(format!(
            "bad failure field `supervision`: `{supervision_field}`"
        ))
    })?;
    let message = fields
        .next()
        .ok_or_else(|| corrupt("missing failure message".into()))?
        .to_owned();
    Ok((
        supervision,
        InstanceFailure {
            kind,
            attempts,
            message,
            iterations,
            work,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GateId;

    fn inst(n: usize) -> Instance {
        Instance {
            selected: vec![GateId::from_index(n)],
            key_bits: n,
            iterations: 2,
            work: 100 + n as u64,
            seconds: 0.5,
            log_seconds: 0.5f64.ln(),
            censored: false,
        }
    }

    fn fail(n: usize) -> InstanceFailure {
        InstanceFailure {
            kind: FailureKind::Panic,
            attempts: 2,
            message: format!("boom, with a comma, at {n}"),
            iterations: n,
            work: 10 * n as u64,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("icnet_ckpt_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn records_persist_across_reopen() {
        let path = tmp("roundtrip.ckpt");
        let mut log = CheckpointLog::open(&path).unwrap();
        assert!(log.is_empty());
        log.record(0xAB, 0, &inst(1)).unwrap();
        log.record(0xCD, 1, &inst(2)).unwrap();
        drop(log);
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.lookup(0xAB), Some(&inst(1)));
        assert_eq!(log.lookup(0xCD), Some(&inst(2)));
        assert_eq!(log.lookup(0xEF), None);
    }

    /// An arbitrary supervision fingerprint for tests that only need one.
    const SUP: u64 = 0x5E1F;

    #[test]
    fn failures_persist_across_reopen() {
        let path = tmp("failures.ckpt");
        let mut log = CheckpointLog::open(&path).unwrap();
        log.record(0xAB, 0, &inst(1)).unwrap();
        log.record_failure(0xCD, 1, SUP, &fail(7)).unwrap();
        drop(log);
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.len(), 1, "labels count successes only");
        assert_eq!(log.num_quarantined(), 1);
        assert_eq!(log.lookup_failure(0xCD, SUP), Some(&fail(7)));
        assert_eq!(log.lookup(0xCD), None, "a quarantine is not a label");
    }

    #[test]
    fn failures_from_a_different_supervision_policy_are_ignored() {
        let path = tmp("stale_policy.ckpt");
        let mut log = CheckpointLog::open(&path).unwrap();
        log.record_failure(0xCD, 1, SUP, &fail(7)).unwrap();
        drop(log);
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.lookup_failure(0xCD, SUP), Some(&fail(7)));
        assert_eq!(
            log.lookup_failure(0xCD, SUP + 1),
            None,
            "a raised deadline / retry budget must re-attack the instance"
        );
        assert_eq!(log.num_quarantined(), 1, "the record itself survives");
    }

    #[test]
    fn failure_message_keeps_embedded_commas() {
        let path = tmp("commas.ckpt");
        let mut log = CheckpointLog::open(&path).unwrap();
        log.record_failure(0x9, 3, SUP, &fail(3)).unwrap();
        drop(log);
        let log = CheckpointLog::open(&path).unwrap();
        assert_eq!(
            log.lookup_failure(0x9, SUP).unwrap().message,
            "boom, with a comma, at 3"
        );
    }

    #[test]
    fn truncated_tail_record_is_dropped_not_fatal() {
        let path = tmp("truncated.ckpt");
        let mut log = CheckpointLog::open(&path).unwrap();
        log.record(0x1, 0, &inst(1)).unwrap();
        log.record(0x2, 1, &inst(2)).unwrap();
        drop(log);
        // Chop the file mid-record, as a crash during append would.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 7]).unwrap();
        let mut log = CheckpointLog::open(&path).unwrap();
        assert_eq!(log.len(), 1, "partial record dropped");
        // The log still appends cleanly after recovery.
        log.record(0x3, 2, &inst(3)).unwrap();
        drop(log);
        assert_eq!(CheckpointLog::open(&path).unwrap().len(), 2);
    }

    #[test]
    fn missing_checksum_is_reported() {
        let path = tmp("nochecksum.ckpt");
        std::fs::write(&path, format!("{MAGIC}\n00ab 0 ok 1,2,3,4,5,6,false\n")).unwrap();
        match CheckpointLog::open(&path) {
            Err(DatasetError::Checkpoint { line: 2, message }) => {
                assert!(message.contains("checksum"), "{message}");
            }
            other => panic!("expected checkpoint corruption, got {other:?}"),
        }
    }

    #[test]
    fn flipped_byte_fails_the_checksum() {
        let path = tmp("flipped.ckpt");
        let mut log = CheckpointLog::open(&path).unwrap();
        log.record(0xAB, 0, &inst(1)).unwrap();
        drop(log);
        let text = std::fs::read_to_string(&path).unwrap();
        // Corrupt one digit inside the record body (never the checksum or
        // the newline): the reload must notice.
        let target = text.rfind(" ok ").unwrap() + 4;
        let mut bytes = text.into_bytes();
        bytes[target] = if bytes[target] == b'9' { b'7' } else { b'9' };
        std::fs::write(&path, bytes).unwrap();
        match CheckpointLog::open(&path) {
            Err(DatasetError::Checkpoint { line: 2, message }) => {
                assert!(message.contains("checksum mismatch"), "{message}");
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_interior_record_is_reported() {
        let path = tmp("corrupt.ckpt");
        let body = "nothex 0 ok 1,2,3,4,5,6,false";
        std::fs::write(
            &path,
            format!("{MAGIC}\n{body} #{:016x}\n", record_crc(body)),
        )
        .unwrap();
        match CheckpointLog::open(&path) {
            Err(DatasetError::Checkpoint { line: 2, .. }) => {}
            other => panic!("expected checkpoint corruption, got {other:?}"),
        }
    }

    #[test]
    fn wrong_header_is_rejected() {
        let path = tmp("header.ckpt");
        std::fs::write(&path, "not a checkpoint\n").unwrap();
        assert!(matches!(
            CheckpointLog::open(&path),
            Err(DatasetError::Checkpoint { line: 1, .. })
        ));
    }

    #[test]
    fn older_format_logs_are_rejected_as_stale() {
        for version in ["v1", "v2"] {
            let path = tmp(&format!("{version}.ckpt"));
            std::fs::write(&path, format!("# icnet-checkpoint {version}\n")).unwrap();
            assert!(
                matches!(
                    CheckpointLog::open(&path),
                    Err(DatasetError::Checkpoint { line: 1, .. })
                ),
                "{version} must be rejected"
            );
        }
    }

    #[test]
    fn instance_key_separates_configs_and_indices() {
        let config = DatasetConfig::quick_demo();
        let circuit = crate::generate::sweep_circuit(&config).unwrap();
        let a = crate::generate::lock_instance(&config, &circuit, 0).unwrap();
        let b = crate::generate::lock_instance(&config, &circuit, 1).unwrap();
        let ka = instance_key(&config, &a);
        assert_eq!(ka, instance_key(&config, &a), "deterministic");
        assert_ne!(ka, instance_key(&config, &b), "indices differ");
        let mut other = config.clone();
        other.attack = attack::AttackConfig::with_work_budget(1);
        assert_ne!(ka, instance_key(&other, &a), "budget changes the key");
        let mut other = config.clone();
        other.attack.conflicts_per_solve = Some(99);
        assert_ne!(
            ka,
            instance_key(&other, &a),
            "the per-solve conflict cap changes deterministic outcomes, so it changes the key"
        );
    }

    #[test]
    fn supervision_key_tracks_deadlines_and_retries_but_not_labels() {
        let config = DatasetConfig::quick_demo();
        let circuit = crate::generate::sweep_circuit(&config).unwrap();
        let locked = crate::generate::lock_instance(&config, &circuit, 0).unwrap();
        let base = supervision_key(&config);
        assert_eq!(base, supervision_key(&config), "deterministic");

        let mut raised = config.clone();
        raised.attack.deadline = Some(std::time::Duration::from_secs(30));
        assert_ne!(base, supervision_key(&raised), "deadline changes it");
        assert_eq!(
            instance_key(&config, &locked),
            instance_key(&raised, &locked),
            "deadlines never change a finished attack's label, so success records stay valid"
        );

        let mut retried = config.clone();
        retried.retry.max_attempts += 1;
        assert_ne!(base, supervision_key(&retried), "retry policy changes it");

        let mut per_query = config.clone();
        per_query.attack.per_query_deadline = Some(std::time::Duration::from_secs(1));
        assert_ne!(base, supervision_key(&per_query));
    }

    #[test]
    fn scheme_parameters_fingerprint_both_keys() {
        // Satellite (issue 9): a resumed sweep under a different key width
        // must re-attack rather than trust labels or quarantine verdicts
        // reached under other scheme parameters.
        let config = DatasetConfig::quick_demo();
        let circuit = crate::generate::sweep_circuit(&config).unwrap();
        let locked = crate::generate::lock_instance(&config, &circuit, 0).unwrap();

        let mut widened = config.clone();
        widened.scheme = obfuscate::SchemeKind::AntiSat { key_width: 4 };
        assert_ne!(
            supervision_key(&config),
            supervision_key(&widened),
            "scheme identity changes the supervision fingerprint"
        );
        assert_ne!(
            instance_key(&config, &locked),
            instance_key(&widened, &locked),
            "scheme identity changes the instance key even for the same netlist"
        );

        let mut wider = widened.clone();
        wider.scheme = obfuscate::SchemeKind::AntiSat { key_width: 5 };
        assert_ne!(
            supervision_key(&widened),
            supervision_key(&wider),
            "a parameter-only change (key width 4 -> 5) changes the fingerprint"
        );
        assert_ne!(
            instance_key(&widened, &locked),
            instance_key(&wider, &locked)
        );

        let mut lut = config.clone();
        lut.scheme = obfuscate::SchemeKind::LutLock { lut_size: 3 };
        let mut lut4 = config.clone();
        lut4.scheme = obfuscate::SchemeKind::LutLock { lut_size: 4 };
        assert_ne!(supervision_key(&lut), supervision_key(&lut4));
    }
}
