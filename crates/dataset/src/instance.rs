use netlist::GateId;

/// One labeled obfuscation instance: which gates were locked, and how long
/// the SAT attack took.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Gate ids (in the *original* circuit) selected for obfuscation — the
    /// paper's encryption-location vector.
    pub selected: Vec<GateId>,
    /// Key bits of the locked netlist.
    pub key_bits: usize,
    /// DIP iterations the attack used.
    pub iterations: usize,
    /// Deterministic solver work expended.
    pub work: u64,
    /// Runtime label in seconds (under the configured measure).
    pub seconds: f64,
    /// `ln(seconds)` — the regression target (runtime grows exponentially
    /// with key count, so models are trained on the log scale).
    pub log_seconds: f64,
    /// True when the attack hit its budget: `seconds` is a lower bound.
    pub censored: bool,
}

impl Instance {
    /// Number of obfuscated gates.
    pub fn num_selected(&self) -> usize {
        self.selected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let inst = Instance {
            selected: vec![GateId::from_index(3), GateId::from_index(9)],
            key_bits: 32,
            iterations: 7,
            work: 1000,
            seconds: 0.5,
            log_seconds: (0.5f64).ln(),
            censored: false,
        };
        assert_eq!(inst.num_selected(), 2);
        assert!(inst.log_seconds < 0.0);
    }
}
