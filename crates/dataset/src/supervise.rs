//! Per-instance attack supervision: panic isolation, retry with deadline
//! escalation, and typed failure records.
//!
//! The labels this pipeline produces come from SAT attacks whose runtime is
//! heavy-tailed and, on SAT-hard structures, effectively unbounded — the
//! exact pathology ICNet exists to predict. A sweep that fails fast throws
//! away hours of good labels the moment one instance panics or outlives
//! every budget estimate. The supervisor turns each attack into a bounded,
//! isolated attempt sequence:
//!
//! 1. every attempt runs under [`std::panic::catch_unwind`], so a panicking
//!    oracle or solver bug cannot unwind across the sweep's thread scope;
//! 2. a retryable failure (wall-clock timeout or panic) is retried up to
//!    [`RetryPolicy::max_attempts`] times, with both wall-clock deadlines
//!    multiplied by [`RetryPolicy::escalation`] on each retry — transient
//!    slowness gets a second, longer chance. The *deterministic* budgets
//!    (work budget, per-solve conflict cap) are never escalated: a label
//!    must be a pure function of the instance and the configured budgets,
//!    never of which attempt happened to beat the machine-dependent clock;
//! 3. an instance that exhausts its attempts is *quarantined*: the sweep
//!    records a typed [`InstanceFailure`] (kind, attempt count, partial
//!    solver stats) and moves on, and a resumed sweep skips the known-bad
//!    instance instead of re-diverging on it.
//!
//! Deterministic budget exhaustion ([`attack::AttackOutcome::BudgetExceeded`])
//! is *not* a failure — it yields a reproducible censored label, exactly as
//! before. Only wall-clock timeouts, panics, attack errors, memory-budget
//! exhaustion, and watchdog-detected stalls quarantine. Memory exhaustion
//! ([`attack::AttackOutcome::MemoryExceeded`]) is deterministic for a given
//! budget and therefore never retried within a run; like the wall-clock
//! deadlines, the budget rides in the checkpoint's supervision fingerprint,
//! so a resume under a raised budget re-attacks exactly the quarantined
//! instances while completed labels survive.

use crate::generate::DatasetConfig;
use attack::{
    attack_locked, AttackConfig, AttackError, AttackOutcome, AttackResult, ExpiredDeadline,
};
use obfuscate::LockedCircuit;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Pluggable attack runner, mainly for fault-injection tests: receives the
/// instance index, the locked circuit, and the (already escalated) attack
/// config. `None` in [`DatasetConfig::attack_hook`] means the real
/// [`attack::attack_locked`].
pub type AttackHook = Arc<
    dyn Fn(usize, &LockedCircuit, &AttackConfig) -> Result<AttackResult, AttackError> + Send + Sync,
>;

/// How failed attacks are retried before their instance is quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per instance, including the first (minimum 1).
    pub max_attempts: usize,
    /// Multiplier applied to both wall-clock deadlines on each successive
    /// attempt (attempt `k` runs at `escalation^k` times the configured
    /// deadlines). Deterministic budgets are deliberately *not* escalated —
    /// see [`RetryPolicy::escalate`].
    pub escalation: u32,
}

impl Default for RetryPolicy {
    /// One retry at twice the deadlines.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 2,
            escalation: 2,
        }
    }
}

impl RetryPolicy {
    /// `config` with both wall-clock deadlines scaled by
    /// `escalation^attempt` (attempt 0 = the configured deadlines).
    ///
    /// The deterministic budgets (`work_budget`, `conflicts_per_solve`) are
    /// left untouched: they define the label (a censored instance is
    /// "censored at the configured budget"), so escalating them would make
    /// the label depend on wall-clock timing and worker contention —
    /// whichever attempt finished would have been measured under different
    /// budgets, breaking byte-identity across machines, worker counts, and
    /// resumed runs. Only the machine-dependent deadlines grow; a retry
    /// that succeeds therefore yields exactly the label a serial
    /// deadline-free run would have produced.
    pub fn escalate(&self, config: &AttackConfig, attempt: usize) -> AttackConfig {
        let factor = u64::from(self.escalation).saturating_pow(attempt as u32);
        let factor = u32::try_from(factor).unwrap_or(u32::MAX);
        let mut out = config.clone();
        out.deadline = out.deadline.map(|d| d.saturating_mul(factor));
        out.per_query_deadline = out.per_query_deadline.map(|d| d.saturating_mul(factor));
        out
    }
}

/// Why an instance was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Every attempt hit its wall-clock deadline.
    Timeout,
    /// Every attempt panicked (oracle or solver bug).
    Panic,
    /// The attack returned a hard error (e.g. an inconsistent oracle).
    Error,
    /// The worker servicing the instance died mid-attack (injected fault or
    /// external kill); the instance got no verdict of its own.
    Death,
    /// The attack exceeded its logical-byte memory budget even after staged
    /// degradation. Deterministic for a given budget, so never retried; a
    /// resume under a raised `--mem-budget` re-attacks the instance (the
    /// budget rides in the supervision fingerprint, not the instance key).
    MemoryExceeded,
    /// The watchdog saw the worker's heartbeat stop advancing: the attack
    /// hung somewhere deadline polling cannot reach (e.g. a stuck oracle).
    Stalled,
}

impl FailureKind {
    /// Stable single-word tag used in checkpoint records.
    pub fn tag(&self) -> &'static str {
        match self {
            FailureKind::Timeout => "timeout",
            FailureKind::Panic => "panic",
            FailureKind::Error => "error",
            FailureKind::Death => "death",
            FailureKind::MemoryExceeded => "memory",
            FailureKind::Stalled => "stalled",
        }
    }

    /// Parses [`FailureKind::tag`] output.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "timeout" => Some(FailureKind::Timeout),
            "panic" => Some(FailureKind::Panic),
            "error" => Some(FailureKind::Error),
            "death" => Some(FailureKind::Death),
            "memory" => Some(FailureKind::MemoryExceeded),
            "stalled" => Some(FailureKind::Stalled),
            _ => None,
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// The typed quarantine record for one instance that exhausted its retry
/// policy. Persisted in the checkpoint log so resume skips the instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceFailure {
    /// What kind of failure won on the final attempt.
    pub kind: FailureKind,
    /// Attempts spent before giving up.
    pub attempts: usize,
    /// One-line human-readable cause (panic payload / error / deadline).
    pub message: String,
    /// DIP iterations completed by the final attempt, when it got that far.
    pub iterations: usize,
    /// Solver work expended by the final attempt, when it got that far.
    pub work: u64,
}

impl fmt::Display for InstanceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} attempt{} ({})",
            self.kind,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

/// What supervising one instance's attack produced.
#[derive(Debug)]
pub enum Supervised {
    /// The attack completed (key recovered or deterministic budget hit);
    /// the result is labelable.
    Done(AttackResult),
    /// Every attempt failed; the instance should be quarantined.
    Failed(InstanceFailure),
    /// The sweep's cancel token fired mid-attack — shutdown, not a verdict
    /// on the instance.
    Cancelled,
}

/// Renders a `catch_unwind` payload as a one-line message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let text = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    };
    sanitize_line(&text)
}

/// Collapses a message onto one line (checkpoint records are line-oriented).
pub(crate) fn sanitize_line(text: &str) -> String {
    text.replace(['\n', '\r'], " ")
}

/// One-line quarantine message naming the wall-clock bound that actually
/// expired (the attack reports which via [`ExpiredDeadline`]).
pub(crate) fn timeout_message(which: ExpiredDeadline, config: &AttackConfig) -> String {
    let bound = match which {
        ExpiredDeadline::Attack => config.deadline,
        ExpiredDeadline::PerQuery => config.per_query_deadline,
    };
    format!("wall-clock {} {:?} expired", which.describe(), bound)
}

/// Runs the attack for instance `index` of `config` under full supervision:
/// panic isolation, retry with escalation, and failure typing. The attack
/// config `base` must already carry the sweep's cancel token (when any).
pub fn supervise_attack(
    config: &DatasetConfig,
    locked: &LockedCircuit,
    index: usize,
    base: &AttackConfig,
) -> Supervised {
    let policy = config.retry;
    let max_attempts = policy.max_attempts.max(1);
    let mut last_failure = None;
    for attempt in 0..max_attempts {
        if base.is_cancelled() {
            return Supervised::Cancelled;
        }
        let attack_cfg = policy.escalate(base, attempt);
        let run = catch_unwind(AssertUnwindSafe(|| match &config.attack_hook {
            Some(hook) => hook(index, locked, &attack_cfg),
            None => attack_locked(locked, &attack_cfg),
        }));
        let failure = match run {
            Ok(Ok(result)) => match result.outcome {
                AttackOutcome::KeyRecovered(_) | AttackOutcome::BudgetExceeded => {
                    // A completion whose search was perturbed by memory
                    // pressure (aggressive learnt-DB shedding fired at least
                    // once) carries a budget-dependent work measure: the
                    // degraded search explored a different clause database
                    // than an unbudgeted run would have. Labeling it would
                    // make the label a function of `--mem-budget`, breaking
                    // the contract that completed labels survive a budget
                    // raise. Quarantine instead — deterministic for the
                    // budget, so no retry — and let a roomier resume produce
                    // the true (unperturbed) label.
                    if attack_cfg.mem_budget.is_some()
                        && result.solver_stats.mem_pressure_events > 0
                    {
                        return Supervised::Failed(InstanceFailure {
                            kind: FailureKind::MemoryExceeded,
                            attempts: attempt + 1,
                            message: format!(
                                "completed under memory pressure ({} degradation round{}, \
                                 budget {:?}, peak {} bytes); label withheld",
                                result.solver_stats.mem_pressure_events,
                                if result.solver_stats.mem_pressure_events == 1 {
                                    ""
                                } else {
                                    "s"
                                },
                                attack_cfg.mem_budget,
                                result.peak_logical_bytes,
                            ),
                            iterations: result.iterations,
                            work: result.solver_stats.work(),
                        });
                    }
                    return Supervised::Done(result);
                }
                AttackOutcome::Cancelled => return Supervised::Cancelled,
                AttackOutcome::MemoryExceeded => {
                    // Deterministic for the configured budget: the solver
                    // degraded as far as it could and still did not fit, and
                    // retrying under the same budget replays the same search.
                    // Quarantine immediately; only a raised budget (a new
                    // supervision fingerprint) re-attacks the instance.
                    return Supervised::Failed(InstanceFailure {
                        kind: FailureKind::MemoryExceeded,
                        attempts: attempt + 1,
                        message: format!(
                            "logical-byte budget {:?} exceeded after {} degradation round{} (peak {} bytes)",
                            attack_cfg.mem_budget,
                            result.solver_stats.mem_pressure_events,
                            if result.solver_stats.mem_pressure_events == 1 { "" } else { "s" },
                            result.peak_logical_bytes,
                        ),
                        iterations: result.iterations,
                        work: result.solver_stats.work(),
                    });
                }
                AttackOutcome::TimedOut(which) => InstanceFailure {
                    kind: FailureKind::Timeout,
                    attempts: attempt + 1,
                    message: timeout_message(which, &attack_cfg),
                    iterations: result.iterations,
                    work: result.solver_stats.work(),
                },
            },
            Ok(Err(AttackError::Cancelled)) => return Supervised::Cancelled,
            Ok(Err(error)) => {
                // Attack errors are deterministic properties of the instance
                // (bad netlist, inconsistent oracle): retrying cannot help.
                return Supervised::Failed(InstanceFailure {
                    kind: FailureKind::Error,
                    attempts: attempt + 1,
                    message: sanitize_line(&error.to_string()),
                    iterations: 0,
                    work: 0,
                });
            }
            Err(payload) => InstanceFailure {
                kind: FailureKind::Panic,
                attempts: attempt + 1,
                message: panic_message(payload.as_ref()),
                iterations: 0,
                work: 0,
            },
        };
        if attempt + 1 < max_attempts {
            obs::emit(obs::EventKind::InstanceRetry {
                index: index as u64,
                // 1-based number of the attempt about to run.
                attempt: (attempt + 2) as u64,
                reason: failure.kind.tag(),
            });
        }
        last_failure = Some(failure);
    }
    Supervised::Failed(last_failure.expect("max_attempts >= 1 ran at least one attempt"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{lock_instance, sweep_circuit};
    use attack::CancelToken;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn demo_locked() -> (DatasetConfig, LockedCircuit) {
        let config = DatasetConfig::quick_demo();
        let circuit = sweep_circuit(&config).unwrap();
        let locked = lock_instance(&config, &circuit, 0).unwrap();
        (config, locked)
    }

    #[test]
    fn healthy_attack_is_done_first_attempt() {
        let (config, locked) = demo_locked();
        match supervise_attack(&config, &locked, 0, &config.attack) {
            Supervised::Done(result) => assert!(result.key().is_some()),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn panics_are_isolated_and_retried_to_quarantine() {
        let (mut config, locked) = demo_locked();
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = calls.clone();
        config.retry = RetryPolicy {
            max_attempts: 3,
            escalation: 2,
        };
        config.attack_hook = Some(Arc::new(move |_, _, _| {
            seen.fetch_add(1, Ordering::SeqCst);
            panic!("deliberate oracle explosion");
        }));
        match supervise_attack(&config, &locked, 0, &config.attack.clone()) {
            Supervised::Failed(failure) => {
                assert_eq!(failure.kind, FailureKind::Panic);
                assert_eq!(failure.attempts, 3);
                assert!(failure.message.contains("oracle explosion"));
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3, "every attempt isolated");
    }

    #[test]
    fn timeout_retries_escalate_deadlines_but_never_budgets() {
        let (mut config, locked) = demo_locked();
        config.attack.work_budget = Some(5_000_000);
        config.attack.deadline = Some(Duration::from_secs(60));
        config.retry = RetryPolicy {
            max_attempts: 3,
            escalation: 4,
        };
        let attempts = Arc::new(std::sync::Mutex::new(Vec::new()));
        let seen = attempts.clone();
        config.attack_hook = Some(Arc::new(move |index, locked, cfg| {
            seen.lock().unwrap().push((cfg.work_budget, cfg.deadline));
            if seen.lock().unwrap().len() < 3 {
                // Simulate a wall-clock timeout through the real code path.
                let mut timed = cfg.clone();
                timed.deadline = Some(Duration::ZERO);
                attack_locked(locked, &timed)
            } else {
                let _ = index;
                attack_locked(locked, cfg)
            }
        }));
        match supervise_attack(&config, &locked, 0, &config.attack.clone()) {
            Supervised::Done(result) => {
                assert!(result.key().is_some());
                // The label the escalated attempt produced is byte-identical
                // to a first-try run under the base config: escalation only
                // buys wall-clock, never a different measurement.
                let reference = attack_locked(&locked, &config.attack).unwrap();
                assert_eq!(result.outcome, reference.outcome);
                assert_eq!(result.iterations, reference.iterations);
                assert_eq!(result.solver_stats.work(), reference.solver_stats.work());
            }
            other => panic!("expected Done on third attempt, got {other:?}"),
        }
        assert_eq!(
            *attempts.lock().unwrap(),
            vec![
                (Some(5_000_000), Some(Duration::from_secs(60))),
                (Some(5_000_000), Some(Duration::from_secs(240))),
                (Some(5_000_000), Some(Duration::from_secs(960))),
            ],
            "deadlines escalate 4x per attempt; the deterministic budget never moves"
        );
    }

    #[test]
    fn attack_errors_quarantine_without_retry() {
        let (mut config, locked) = demo_locked();
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = calls.clone();
        config.attack_hook = Some(Arc::new(move |_, _, _| {
            seen.fetch_add(1, Ordering::SeqCst);
            Err(AttackError::OracleInconsistent)
        }));
        match supervise_attack(&config, &locked, 0, &config.attack.clone()) {
            Supervised::Failed(failure) => {
                assert_eq!(failure.kind, FailureKind::Error);
                assert_eq!(failure.attempts, 1);
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "hard errors do not retry");
    }

    #[test]
    fn cancellation_is_not_a_failure() {
        let (config, locked) = demo_locked();
        let token = CancelToken::new();
        token.cancel();
        let base = config.attack.clone().with_cancel(token);
        assert!(matches!(
            supervise_attack(&config, &locked, 0, &base),
            Supervised::Cancelled
        ));
    }

    #[test]
    fn escalation_saturates_instead_of_overflowing() {
        let policy = RetryPolicy {
            max_attempts: 80,
            escalation: u32::MAX,
        };
        let mut cfg = AttackConfig::with_work_budget(1000);
        cfg.deadline = Some(Duration::from_secs(1));
        let escalated = policy.escalate(&cfg, 79);
        assert_eq!(
            escalated.deadline,
            Some(Duration::from_secs(1).saturating_mul(u32::MAX)),
            "the factor clamps and the deadline saturates instead of wrapping"
        );
        assert_eq!(escalated.work_budget, Some(1000), "budgets never escalate");
    }

    #[test]
    fn huge_escalation_factors_clamp_instead_of_truncating_to_zero() {
        // 2^40 overflows u32; a plain `as u32` cast would truncate it to 0
        // and turn every later attempt's deadline into Duration::ZERO.
        let policy = RetryPolicy {
            max_attempts: 64,
            escalation: 2,
        };
        let cfg = AttackConfig {
            deadline: Some(Duration::from_millis(1)),
            per_query_deadline: Some(Duration::from_millis(1)),
            ..AttackConfig::default()
        };
        let escalated = policy.escalate(&cfg, 40);
        let clamped = Duration::from_millis(1).saturating_mul(u32::MAX);
        assert_eq!(escalated.deadline, Some(clamped));
        assert_eq!(escalated.per_query_deadline, Some(clamped));
    }

    #[test]
    fn failure_kind_tags_round_trip() {
        for kind in [
            FailureKind::Timeout,
            FailureKind::Panic,
            FailureKind::Error,
            FailureKind::Death,
            FailureKind::MemoryExceeded,
            FailureKind::Stalled,
        ] {
            assert_eq!(FailureKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(FailureKind::from_tag("nonsense"), None);
    }

    #[test]
    fn failure_display_is_one_line() {
        let failure = InstanceFailure {
            kind: FailureKind::Panic,
            attempts: 2,
            message: sanitize_line("boom\nwith newline"),
            iterations: 0,
            work: 0,
        };
        let text = failure.to_string();
        assert!(text.contains("panic after 2 attempts"));
        assert!(!text.contains('\n'));
    }
}
