//! Per-instance attack supervision: panic isolation, retry with budget
//! escalation, and typed failure records.
//!
//! The labels this pipeline produces come from SAT attacks whose runtime is
//! heavy-tailed and, on SAT-hard structures, effectively unbounded — the
//! exact pathology ICNet exists to predict. A sweep that fails fast throws
//! away hours of good labels the moment one instance panics or outlives
//! every budget estimate. The supervisor turns each attack into a bounded,
//! isolated attempt sequence:
//!
//! 1. every attempt runs under [`std::panic::catch_unwind`], so a panicking
//!    oracle or solver bug cannot unwind across the sweep's thread scope;
//! 2. a retryable failure (wall-clock timeout or panic) is retried up to
//!    [`RetryPolicy::max_attempts`] times, with the work budget, conflict
//!    cap, and deadlines all multiplied by [`RetryPolicy::escalation`] on
//!    each retry — transient slowness gets a second, bigger chance;
//! 3. an instance that exhausts its attempts is *quarantined*: the sweep
//!    records a typed [`InstanceFailure`] (kind, attempt count, partial
//!    solver stats) and moves on, and a resumed sweep skips the known-bad
//!    instance instead of re-diverging on it.
//!
//! Deterministic budget exhaustion ([`attack::AttackOutcome::BudgetExceeded`])
//! is *not* a failure — it yields a reproducible censored label, exactly as
//! before. Only wall-clock timeouts, panics, and attack errors quarantine.

use crate::generate::DatasetConfig;
use attack::{attack_locked, AttackConfig, AttackError, AttackOutcome, AttackResult};
use obfuscate::LockedCircuit;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Pluggable attack runner, mainly for fault-injection tests: receives the
/// instance index, the locked circuit, and the (already escalated) attack
/// config. `None` in [`DatasetConfig::attack_hook`] means the real
/// [`attack::attack_locked`].
pub type AttackHook = Arc<
    dyn Fn(usize, &LockedCircuit, &AttackConfig) -> Result<AttackResult, AttackError> + Send + Sync,
>;

/// How failed attacks are retried before their instance is quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per instance, including the first (minimum 1).
    pub max_attempts: usize,
    /// Multiplier applied to the work budget, per-solve conflict cap, and
    /// both deadlines on each successive attempt (attempt `k` runs at
    /// `escalation^k` times the configured budgets).
    pub escalation: u32,
}

impl Default for RetryPolicy {
    /// One retry at twice the budgets.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 2,
            escalation: 2,
        }
    }
}

impl RetryPolicy {
    /// `config` with every budget and deadline scaled by
    /// `escalation^attempt` (attempt 0 = the configured budgets).
    pub fn escalate(&self, config: &AttackConfig, attempt: usize) -> AttackConfig {
        let factor = u64::from(self.escalation).saturating_pow(attempt as u32);
        let mut out = config.clone();
        out.work_budget = out.work_budget.map(|b| b.saturating_mul(factor));
        out.conflicts_per_solve = out.conflicts_per_solve.map(|c| c.saturating_mul(factor));
        out.deadline = out.deadline.map(|d| d.saturating_mul(factor as u32));
        out.per_query_deadline = out
            .per_query_deadline
            .map(|d| d.saturating_mul(factor as u32));
        out
    }
}

/// Why an instance was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Every attempt hit its wall-clock deadline.
    Timeout,
    /// Every attempt panicked (oracle or solver bug).
    Panic,
    /// The attack returned a hard error (e.g. an inconsistent oracle).
    Error,
}

impl FailureKind {
    /// Stable single-word tag used in checkpoint records.
    pub fn tag(&self) -> &'static str {
        match self {
            FailureKind::Timeout => "timeout",
            FailureKind::Panic => "panic",
            FailureKind::Error => "error",
        }
    }

    /// Parses [`FailureKind::tag`] output.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "timeout" => Some(FailureKind::Timeout),
            "panic" => Some(FailureKind::Panic),
            "error" => Some(FailureKind::Error),
            _ => None,
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// The typed quarantine record for one instance that exhausted its retry
/// policy. Persisted in the checkpoint log so resume skips the instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceFailure {
    /// What kind of failure won on the final attempt.
    pub kind: FailureKind,
    /// Attempts spent before giving up.
    pub attempts: usize,
    /// One-line human-readable cause (panic payload / error / deadline).
    pub message: String,
    /// DIP iterations completed by the final attempt, when it got that far.
    pub iterations: usize,
    /// Solver work expended by the final attempt, when it got that far.
    pub work: u64,
}

impl fmt::Display for InstanceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} attempt{} ({})",
            self.kind,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

/// What supervising one instance's attack produced.
#[derive(Debug)]
pub enum Supervised {
    /// The attack completed (key recovered or deterministic budget hit);
    /// the result is labelable.
    Done(AttackResult),
    /// Every attempt failed; the instance should be quarantined.
    Failed(InstanceFailure),
    /// The sweep's cancel token fired mid-attack — shutdown, not a verdict
    /// on the instance.
    Cancelled,
}

/// Renders a `catch_unwind` payload as a one-line message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let text = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    };
    sanitize_line(&text)
}

/// Collapses a message onto one line (checkpoint records are line-oriented).
pub(crate) fn sanitize_line(text: &str) -> String {
    text.replace(['\n', '\r'], " ")
}

/// Runs the attack for instance `index` of `config` under full supervision:
/// panic isolation, retry with escalation, and failure typing. The attack
/// config `base` must already carry the sweep's cancel token (when any).
pub fn supervise_attack(
    config: &DatasetConfig,
    locked: &LockedCircuit,
    index: usize,
    base: &AttackConfig,
) -> Supervised {
    let policy = config.retry;
    let max_attempts = policy.max_attempts.max(1);
    let mut last_failure = None;
    for attempt in 0..max_attempts {
        if base.is_cancelled() {
            return Supervised::Cancelled;
        }
        let attack_cfg = policy.escalate(base, attempt);
        let run = catch_unwind(AssertUnwindSafe(|| match &config.attack_hook {
            Some(hook) => hook(index, locked, &attack_cfg),
            None => attack_locked(locked, &attack_cfg),
        }));
        let failure = match run {
            Ok(Ok(result)) => match result.outcome {
                AttackOutcome::KeyRecovered(_) | AttackOutcome::BudgetExceeded => {
                    return Supervised::Done(result)
                }
                AttackOutcome::Cancelled => return Supervised::Cancelled,
                AttackOutcome::TimedOut => InstanceFailure {
                    kind: FailureKind::Timeout,
                    attempts: attempt + 1,
                    message: format!(
                        "wall-clock deadline {:?} expired",
                        attack_cfg.deadline.or(attack_cfg.per_query_deadline)
                    ),
                    iterations: result.iterations,
                    work: result.solver_stats.work(),
                },
            },
            Ok(Err(AttackError::Cancelled)) => return Supervised::Cancelled,
            Ok(Err(error)) => {
                // Attack errors are deterministic properties of the instance
                // (bad netlist, inconsistent oracle): retrying cannot help.
                return Supervised::Failed(InstanceFailure {
                    kind: FailureKind::Error,
                    attempts: attempt + 1,
                    message: sanitize_line(&error.to_string()),
                    iterations: 0,
                    work: 0,
                });
            }
            Err(payload) => InstanceFailure {
                kind: FailureKind::Panic,
                attempts: attempt + 1,
                message: panic_message(payload.as_ref()),
                iterations: 0,
                work: 0,
            },
        };
        last_failure = Some(failure);
    }
    Supervised::Failed(last_failure.expect("max_attempts >= 1 ran at least one attempt"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{lock_instance, sweep_circuit};
    use attack::CancelToken;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn demo_locked() -> (DatasetConfig, LockedCircuit) {
        let config = DatasetConfig::quick_demo();
        let circuit = sweep_circuit(&config).unwrap();
        let locked = lock_instance(&config, &circuit, 0).unwrap();
        (config, locked)
    }

    #[test]
    fn healthy_attack_is_done_first_attempt() {
        let (config, locked) = demo_locked();
        match supervise_attack(&config, &locked, 0, &config.attack) {
            Supervised::Done(result) => assert!(result.key().is_some()),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn panics_are_isolated_and_retried_to_quarantine() {
        let (mut config, locked) = demo_locked();
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = calls.clone();
        config.retry = RetryPolicy {
            max_attempts: 3,
            escalation: 2,
        };
        config.attack_hook = Some(Arc::new(move |_, _, _| {
            seen.fetch_add(1, Ordering::SeqCst);
            panic!("deliberate oracle explosion");
        }));
        match supervise_attack(&config, &locked, 0, &config.attack.clone()) {
            Supervised::Failed(failure) => {
                assert_eq!(failure.kind, FailureKind::Panic);
                assert_eq!(failure.attempts, 3);
                assert!(failure.message.contains("oracle explosion"));
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3, "every attempt isolated");
    }

    #[test]
    fn timeout_retries_with_escalated_budgets_then_succeeds() {
        let (mut config, locked) = demo_locked();
        config.attack.work_budget = Some(1000);
        config.retry = RetryPolicy {
            max_attempts: 3,
            escalation: 4,
        };
        let budgets = Arc::new(std::sync::Mutex::new(Vec::new()));
        let seen = budgets.clone();
        config.attack_hook = Some(Arc::new(move |index, locked, cfg| {
            seen.lock().unwrap().push(cfg.work_budget);
            if seen.lock().unwrap().len() < 3 {
                // Simulate a wall-clock timeout through the real code path.
                let mut timed = cfg.clone();
                timed.deadline = Some(Duration::ZERO);
                attack_locked(locked, &timed)
            } else {
                let _ = index;
                attack_locked(locked, cfg)
            }
        }));
        match supervise_attack(&config, &locked, 0, &config.attack.clone()) {
            Supervised::Done(result) => assert!(result.key().is_some()),
            other => panic!("expected Done on third attempt, got {other:?}"),
        }
        assert_eq!(
            *budgets.lock().unwrap(),
            vec![Some(1000), Some(4000), Some(16000)],
            "budgets escalate 4x per attempt"
        );
    }

    #[test]
    fn attack_errors_quarantine_without_retry() {
        let (mut config, locked) = demo_locked();
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = calls.clone();
        config.attack_hook = Some(Arc::new(move |_, _, _| {
            seen.fetch_add(1, Ordering::SeqCst);
            Err(AttackError::OracleInconsistent)
        }));
        match supervise_attack(&config, &locked, 0, &config.attack.clone()) {
            Supervised::Failed(failure) => {
                assert_eq!(failure.kind, FailureKind::Error);
                assert_eq!(failure.attempts, 1);
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "hard errors do not retry");
    }

    #[test]
    fn cancellation_is_not_a_failure() {
        let (config, locked) = demo_locked();
        let token = CancelToken::new();
        token.cancel();
        let base = config.attack.clone().with_cancel(token);
        assert!(matches!(
            supervise_attack(&config, &locked, 0, &base),
            Supervised::Cancelled
        ));
    }

    #[test]
    fn escalation_saturates_instead_of_overflowing() {
        let policy = RetryPolicy {
            max_attempts: 80,
            escalation: u32::MAX,
        };
        let cfg = AttackConfig::with_work_budget(u64::MAX / 2);
        let escalated = policy.escalate(&cfg, 79);
        assert_eq!(escalated.work_budget, Some(u64::MAX));
    }

    #[test]
    fn failure_kind_tags_round_trip() {
        for kind in [FailureKind::Timeout, FailureKind::Panic, FailureKind::Error] {
            assert_eq!(FailureKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(FailureKind::from_tag("nonsense"), None);
    }

    #[test]
    fn failure_display_is_one_line() {
        let failure = InstanceFailure {
            kind: FailureKind::Panic,
            attempts: 2,
            message: sanitize_line("boom\nwith newline"),
            iterations: 0,
            work: 0,
        };
        let text = failure.to_string();
        assert!(text.contains("panic after 2 attempts"));
        assert!(!text.contains('\n'));
    }
}
