//! Feature encodings: graph-structured for the GNN models, flattened for
//! the classical baselines.
//!
//! The paper feeds the classical regressors "mean or sum on concatenation of
//! Laplacian or adjacency matrix and gate features": per gate, the structure
//! row (length `n`) is concatenated with the feature row (length `F`), and
//! the `n` per-gate vectors are aggregated by sum or mean into a single
//! `(n + F)`-dimensional vector per instance.

use crate::instance::Instance;
use icnet::{CircuitGraph, FeatureSet};
use netlist::Circuit;
use tensor::Matrix;

/// Which structural matrix enters the flat encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureEncoding {
    /// Symmetrized adjacency matrix.
    Adjacency,
    /// Combinatorial graph Laplacian `L = D - A`.
    Laplacian,
}

/// How the per-gate rows collapse into one flat vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlatAggregation {
    /// Column-wise sum over gates.
    Sum,
    /// Column-wise mean over gates.
    Mean,
}

impl FlatAggregation {
    /// Table label used by the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            FlatAggregation::Sum => "Sum",
            FlatAggregation::Mean => "Mean",
        }
    }
}

/// Encodes every instance as a graph-feature matrix (`n x F` each) for the
/// GNN models.
pub fn graph_features(circuit: &Circuit, instances: &[Instance], fs: FeatureSet) -> Vec<Matrix> {
    instances
        .iter()
        .map(|inst| icnet::encode_features(circuit, &inst.selected, fs))
        .collect()
}

/// Encodes every instance as one flat `(n + F)`-dimensional row for the
/// classical baselines (design matrix: `instances x (n + F)`).
pub fn flat_features(
    circuit: &Circuit,
    instances: &[Instance],
    fs: FeatureSet,
    structure: StructureEncoding,
    agg: FlatAggregation,
) -> Matrix {
    let n = circuit.num_gates();
    let graph = CircuitGraph::from_circuit(circuit);
    let adj = graph.adjacency(false);

    // Column aggregate of the structure matrix — identical for every
    // instance (the circuit is fixed), computed once.
    let mut struct_cols = vec![0.0f64; n];
    match structure {
        StructureEncoding::Adjacency => {
            for (_, c, v) in adj.iter() {
                struct_cols[c] += v;
            }
        }
        StructureEncoding::Laplacian => {
            // L = D - A: column sums are deg(c) - deg(c) = 0, but the
            // mean/sum aggregation still sees the diagonal through the
            // per-gate rows; aggregate of column c is d_c - d_c = 0.
            // Computing it explicitly keeps the encoding honest.
            let degrees = adj.row_sums();
            for (r, c, v) in adj.iter() {
                struct_cols[c] -= v;
                let _ = r;
            }
            for (c, d) in degrees.iter().enumerate() {
                struct_cols[c] += d;
            }
        }
    }
    let divisor = match agg {
        FlatAggregation::Sum => 1.0,
        FlatAggregation::Mean => n as f64,
    };

    let f = fs.width();
    let mut out = Matrix::zeros(instances.len(), n + f);
    for (row, inst) in instances.iter().enumerate() {
        for (col, &s) in struct_cols.iter().enumerate() {
            out.set(row, col, s / divisor);
        }
        let x = icnet::encode_features(circuit, &inst.selected, fs);
        let feat_cols = x.col_sums();
        for j in 0..f {
            out.set(row, n + j, feat_cols.get(0, j) / divisor);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GateId;

    fn instances() -> (Circuit, Vec<Instance>) {
        let c = netlist::c17();
        let mk = |sel: Vec<usize>| Instance {
            selected: sel.into_iter().map(GateId::from_index).collect(),
            key_bits: 1,
            iterations: 1,
            work: 1,
            seconds: 1.0,
            log_seconds: 0.0,
            censored: false,
        };
        let insts = vec![mk(vec![5]), mk(vec![5, 6, 7])];
        (c, insts)
    }

    #[test]
    fn graph_features_shapes() {
        let (c, insts) = instances();
        let xs = graph_features(&c, &insts, FeatureSet::All);
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].shape(), (11, 7));
        assert_eq!(xs[0].get(5, 0), 1.0);
        assert_eq!(xs[1].get(7, 0), 1.0);
    }

    #[test]
    fn flat_features_shape_and_mask_sum() {
        let (c, insts) = instances();
        let x = flat_features(
            &c,
            &insts,
            FeatureSet::Location,
            StructureEncoding::Adjacency,
            FlatAggregation::Sum,
        );
        assert_eq!(x.shape(), (2, 12));
        // Mask column aggregates to the number of selected gates.
        assert_eq!(x.get(0, 11), 1.0);
        assert_eq!(x.get(1, 11), 3.0);
        // Structure columns equal gate degrees (same in both rows).
        for col in 0..11 {
            assert_eq!(x.get(0, col), x.get(1, col));
        }
    }

    #[test]
    fn mean_divides_by_gate_count() {
        let (c, insts) = instances();
        let sum = flat_features(
            &c,
            &insts,
            FeatureSet::Location,
            StructureEncoding::Adjacency,
            FlatAggregation::Sum,
        );
        let mean = flat_features(
            &c,
            &insts,
            FeatureSet::Location,
            StructureEncoding::Adjacency,
            FlatAggregation::Mean,
        );
        for col in 0..12 {
            assert!((mean.get(0, col) - sum.get(0, col) / 11.0).abs() < 1e-12);
        }
    }

    #[test]
    fn laplacian_structure_columns_are_zero() {
        let (c, insts) = instances();
        let x = flat_features(
            &c,
            &insts,
            FeatureSet::All,
            StructureEncoding::Laplacian,
            FlatAggregation::Sum,
        );
        for col in 0..11 {
            assert_eq!(x.get(0, col), 0.0, "Laplacian columns sum to zero");
        }
        // Feature columns still carry signal.
        assert!(x.get(0, 11) > 0.0);
    }
}
