//! Feature encodings: graph-structured for the GNN models, flattened for
//! the classical baselines.
//!
//! The paper feeds the classical regressors "mean or sum on concatenation of
//! Laplacian or adjacency matrix and gate features": per gate, the structure
//! row (length `n`) is concatenated with the feature row (length `F`), and
//! the `n` per-gate vectors are aggregated by sum or mean into a single
//! `(n + F)`-dimensional vector per instance.

use crate::error::DatasetError;
use crate::instance::Instance;
use icnet::{CircuitGraph, FeatureSet};
use netlist::Circuit;
use tensor::Matrix;

/// Largest raw value a structural (degree/level) feature may take before
/// normalization. The cap matches an 8-bit fixed-point layout sized for the
/// ISCAS-85 profiles, whose gates have 2–3 fan-ins and whose logic depth
/// stays far below it. SAT-resilient schemes break that assumption — an
/// Anti-SAT comparator is a single AND over `key_width` taps, and nothing
/// in the netlist model bounds fan-in at all — so [`degree_level_features`]
/// reports an overflowing gate as a typed error instead of silently
/// saturating the column.
pub const MAX_STRUCT_FEATURE: usize = 255;

/// Which structural matrix enters the flat encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureEncoding {
    /// Symmetrized adjacency matrix.
    Adjacency,
    /// Combinatorial graph Laplacian `L = D - A`.
    Laplacian,
}

/// How the per-gate rows collapse into one flat vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlatAggregation {
    /// Column-wise sum over gates.
    Sum,
    /// Column-wise mean over gates.
    Mean,
}

impl FlatAggregation {
    /// Table label used by the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            FlatAggregation::Sum => "Sum",
            FlatAggregation::Mean => "Mean",
        }
    }
}

/// Encodes every instance as a graph-feature matrix (`n x F` each) for the
/// GNN models.
pub fn graph_features(circuit: &Circuit, instances: &[Instance], fs: FeatureSet) -> Vec<Matrix> {
    instances
        .iter()
        .map(|inst| icnet::encode_features(circuit, &inst.selected, fs))
        .collect()
}

/// Encodes every instance as one flat `(n + F)`-dimensional row for the
/// classical baselines (design matrix: `instances x (n + F)`).
pub fn flat_features(
    circuit: &Circuit,
    instances: &[Instance],
    fs: FeatureSet,
    structure: StructureEncoding,
    agg: FlatAggregation,
) -> Matrix {
    let n = circuit.num_gates();
    let graph = CircuitGraph::from_circuit(circuit);
    let adj = graph.adjacency(false);

    // Column aggregate of the structure matrix — identical for every
    // instance (the circuit is fixed), computed once.
    let mut struct_cols = vec![0.0f64; n];
    match structure {
        StructureEncoding::Adjacency => {
            for (_, c, v) in adj.iter() {
                struct_cols[c] += v;
            }
        }
        StructureEncoding::Laplacian => {
            // L = D - A: column sums are deg(c) - deg(c) = 0, but the
            // mean/sum aggregation still sees the diagonal through the
            // per-gate rows; aggregate of column c is d_c - d_c = 0.
            // Computing it explicitly keeps the encoding honest.
            let degrees = adj.row_sums();
            for (r, c, v) in adj.iter() {
                struct_cols[c] -= v;
                let _ = r;
            }
            for (c, d) in degrees.iter().enumerate() {
                struct_cols[c] += d;
            }
        }
    }
    let divisor = match agg {
        FlatAggregation::Sum => 1.0,
        FlatAggregation::Mean => n as f64,
    };

    let f = fs.width();
    let mut out = Matrix::zeros(instances.len(), n + f);
    for (row, inst) in instances.iter().enumerate() {
        for (col, &s) in struct_cols.iter().enumerate() {
            out.set(row, col, s / divisor);
        }
        let x = icnet::encode_features(circuit, &inst.selected, fs);
        let feat_cols = x.col_sums();
        for j in 0..f {
            out.set(row, n + j, feat_cols.get(0, j) / divisor);
        }
    }
    out
}

/// Per-gate structural features — fan-in degree, fan-out degree, and
/// topological level — normalized to `[0, 1]` by [`MAX_STRUCT_FEATURE`]
/// (row per gate, columns in that order).
///
/// Unlike [`graph_features`], which encodes the *original* circuit, this
/// runs on arbitrary netlists including locked ones, so it must survive the
/// gate mix SAT-resilient schemes introduce: wide-fanin AND/NAND comparator
/// trees whose degree exceeds anything in the ISCAS-85 profiles.
///
/// # Errors
///
/// Returns [`DatasetError::FeatureRange`] naming the gate and feature when
/// any raw value exceeds [`MAX_STRUCT_FEATURE`] — a typed refusal instead
/// of silent saturation, so a corpus whose structure outgrows the encoding
/// fails loudly at encode time rather than feeding clipped features to a
/// model.
pub fn degree_level_features(circuit: &Circuit) -> Result<Matrix, DatasetError> {
    let n = circuit.num_gates();
    let fanouts = circuit.fanouts();
    let mut levels = vec![0usize; n];
    let mut out = Matrix::zeros(n, 3);
    let encode = |gate: &str, feature: &'static str, value: usize| -> Result<f64, DatasetError> {
        if value > MAX_STRUCT_FEATURE {
            return Err(DatasetError::FeatureRange {
                gate: gate.to_owned(),
                feature,
                value,
                limit: MAX_STRUCT_FEATURE,
            });
        }
        Ok(value as f64 / MAX_STRUCT_FEATURE as f64)
    };
    // Gate ids are topological, so every fan-in's level is already known.
    for (id, gate) in circuit.iter() {
        let level = gate
            .fanin()
            .iter()
            .map(|f| levels[f.index()] + 1)
            .max()
            .unwrap_or(0);
        levels[id.index()] = level;
        let row = id.index();
        out.set(
            row,
            0,
            encode(gate.name(), "fan-in degree", gate.fanin().len())?,
        );
        out.set(
            row,
            1,
            encode(gate.name(), "fan-out degree", fanouts[row].len())?,
        );
        out.set(row, 2, encode(gate.name(), "logic level", level)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GateId;

    fn instances() -> (Circuit, Vec<Instance>) {
        let c = netlist::c17();
        let mk = |sel: Vec<usize>| Instance {
            selected: sel.into_iter().map(GateId::from_index).collect(),
            key_bits: 1,
            iterations: 1,
            work: 1,
            seconds: 1.0,
            log_seconds: 0.0,
            censored: false,
        };
        let insts = vec![mk(vec![5]), mk(vec![5, 6, 7])];
        (c, insts)
    }

    #[test]
    fn graph_features_shapes() {
        let (c, insts) = instances();
        let xs = graph_features(&c, &insts, FeatureSet::All);
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].shape(), (11, 7));
        assert_eq!(xs[0].get(5, 0), 1.0);
        assert_eq!(xs[1].get(7, 0), 1.0);
    }

    #[test]
    fn flat_features_shape_and_mask_sum() {
        let (c, insts) = instances();
        let x = flat_features(
            &c,
            &insts,
            FeatureSet::Location,
            StructureEncoding::Adjacency,
            FlatAggregation::Sum,
        );
        assert_eq!(x.shape(), (2, 12));
        // Mask column aggregates to the number of selected gates.
        assert_eq!(x.get(0, 11), 1.0);
        assert_eq!(x.get(1, 11), 3.0);
        // Structure columns equal gate degrees (same in both rows).
        for col in 0..11 {
            assert_eq!(x.get(0, col), x.get(1, col));
        }
    }

    #[test]
    fn mean_divides_by_gate_count() {
        let (c, insts) = instances();
        let sum = flat_features(
            &c,
            &insts,
            FeatureSet::Location,
            StructureEncoding::Adjacency,
            FlatAggregation::Sum,
        );
        let mean = flat_features(
            &c,
            &insts,
            FeatureSet::Location,
            StructureEncoding::Adjacency,
            FlatAggregation::Mean,
        );
        for col in 0..12 {
            assert!((mean.get(0, col) - sum.get(0, col) / 11.0).abs() < 1e-12);
        }
    }

    #[test]
    fn degree_level_features_cover_c17() {
        let c = netlist::c17();
        let x = degree_level_features(&c).unwrap();
        assert_eq!(x.shape(), (11, 3));
        let scale = MAX_STRUCT_FEATURE as f64;
        // Primary inputs: no fan-in, level 0.
        assert_eq!(x.get(0, 0), 0.0);
        assert_eq!(x.get(0, 2), 0.0);
        // Every c17 NAND has exactly two fan-ins.
        for row in 5..11 {
            assert!((x.get(row, 0) - 2.0 / scale).abs() < 1e-12);
        }
        // The deepest gates sit at level 3.
        let max_level = (0..11).map(|r| x.get(r, 2)).fold(0.0f64, f64::max);
        assert!((max_level - 3.0 / scale).abs() < 1e-12);
    }

    #[test]
    fn degree_level_features_handle_anti_sat_gate_mix() {
        // Locked Anti-SAT netlists contain wide comparator AND/NAND trees;
        // they stay well under the cap and must encode cleanly.
        let locked = obfuscate::lock_random(
            &netlist::c17(),
            obfuscate::SchemeKind::AntiSat { key_width: 4 },
            1,
            5,
        )
        .unwrap();
        let x = degree_level_features(&locked.locked).unwrap();
        assert_eq!(x.shape(), (locked.locked.num_gates(), 3));
        let widest = (0..locked.locked.num_gates())
            .map(|r| x.get(r, 0))
            .fold(0.0f64, f64::max);
        assert!(
            (widest - 4.0 / MAX_STRUCT_FEATURE as f64).abs() < 1e-12,
            "the comparator AND over 4 taps is the widest gate"
        );
    }

    #[test]
    fn fanin_overflow_is_a_typed_error_not_saturation() {
        // Nothing in the netlist model bounds fan-in; a 300-wide AND
        // (fan-in past the ISCAS-profile assumption) must be refused.
        let mut b = netlist::CircuitBuilder::new("wide");
        let ins: Vec<netlist::GateId> = (0..300)
            .map(|i| b.add_input(format!("in{i}")).unwrap())
            .collect();
        let g = b
            .add_gate("wide_and", netlist::GateKind::And, &ins)
            .unwrap();
        b.mark_output(g);
        let c = b.finish().unwrap();
        match degree_level_features(&c) {
            Err(DatasetError::FeatureRange {
                gate,
                feature,
                value,
                limit,
            }) => {
                assert_eq!(gate, "wide_and");
                assert_eq!(feature, "fan-in degree");
                assert_eq!(value, 300);
                assert_eq!(limit, MAX_STRUCT_FEATURE);
            }
            other => panic!("expected FeatureRange, got {other:?}"),
        }
    }

    #[test]
    fn level_overflow_is_a_typed_error() {
        let mut b = netlist::CircuitBuilder::new("deep");
        let mut prev = b.add_input("in0").unwrap();
        for i in 0..MAX_STRUCT_FEATURE + 1 {
            prev = b
                .add_gate(format!("n{i}"), netlist::GateKind::Not, &[prev])
                .unwrap();
        }
        b.mark_output(prev);
        let c = b.finish().unwrap();
        assert!(matches!(
            degree_level_features(&c),
            Err(DatasetError::FeatureRange {
                feature: "logic level",
                ..
            })
        ));
    }

    #[test]
    fn laplacian_structure_columns_are_zero() {
        let (c, insts) = instances();
        let x = flat_features(
            &c,
            &insts,
            FeatureSet::All,
            StructureEncoding::Laplacian,
            FlatAggregation::Sum,
        );
        for col in 0..11 {
            assert_eq!(x.get(0, col), 0.0, "Laplacian columns sum to zero");
        }
        // Feature columns still carry signal.
        assert!(x.get(0, 11) > 0.0);
    }
}
