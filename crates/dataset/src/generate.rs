use crate::error::DatasetError;
use crate::instance::Instance;
use crate::supervise::{AttackHook, RetryPolicy};
use attack::{attack_locked, AttackConfig, AttackOutcome, AttackResult, RuntimeMeasure};
use netlist::Circuit;
use obfuscate::{eligible_gates, lut_lock, select_gates, LockedCircuit, SchemeKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Full parameterization of one dataset sweep.
#[derive(Clone)]
pub struct DatasetConfig {
    /// Circuit profile name (see [`synth::iscas`]); the paper uses one
    /// 1529-gate circuit (`"c1529"`).
    pub profile: String,
    /// Seed of the synthetic circuit.
    pub circuit_seed: u64,
    /// Locking scheme (the paper: LUT locking with LUT size 4).
    pub scheme: SchemeKind,
    /// Number of labeled instances to generate.
    pub num_instances: usize,
    /// Inclusive range the per-instance key-gate count is drawn from
    /// (Dataset 1: `(1, 350)`; Dataset 2: `(1, 3)`).
    pub key_range: (usize, usize),
    /// Master seed for gate selection and locking.
    pub seed: u64,
    /// Resource limits for each attack run.
    pub attack: AttackConfig,
    /// Which runtime measure becomes the label.
    pub measure: RuntimeMeasure,
    /// How timed-out / panicking attacks are retried before quarantine.
    pub retry: RetryPolicy,
    /// When true (the default), a sweep quarantines instances that exhaust
    /// their retries and keeps going, completing with a partial dataset and
    /// a failure report; when false, the first such failure aborts the
    /// sweep with [`DatasetError::Quarantined`].
    pub keep_going: bool,
    /// When set, a parallel sweep runs a [`budget::Watchdog`] and gives each
    /// worker a heartbeat the solver beats from inside its search loop; a
    /// worker whose heartbeat stops advancing for this long has hung
    /// somewhere deadline polling cannot reach (a stuck oracle, a livelocked
    /// hook) and its instance is quarantined as
    /// [`crate::supervise::FailureKind::Stalled`]. Wall-clock by nature —
    /// like the deadlines, it decides whether an attack finishes, never what
    /// label it gets. `None` = no watchdog.
    pub watchdog_stall: Option<std::time::Duration>,
    /// Optional replacement attack runner (fault injection in tests);
    /// `None` = the real [`attack::attack_locked`].
    pub attack_hook: Option<AttackHook>,
    /// External interrupt token (operator Ctrl-C). A parallel sweep derives
    /// its internal worker token as a *child* of this one, so the sweep can
    /// abort its own workers on an internal error without tripping the
    /// operator-level token. `None` = the sweep is not interruptible from
    /// outside.
    pub cancel: Option<attack::CancelToken>,
}

impl fmt::Debug for DatasetConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DatasetConfig")
            .field("profile", &self.profile)
            .field("circuit_seed", &self.circuit_seed)
            .field("scheme", &self.scheme)
            .field("num_instances", &self.num_instances)
            .field("key_range", &self.key_range)
            .field("seed", &self.seed)
            .field("attack", &self.attack)
            .field("measure", &self.measure)
            .field("retry", &self.retry)
            .field("keep_going", &self.keep_going)
            .field("watchdog_stall", &self.watchdog_stall)
            .field("attack_hook", &self.attack_hook.as_ref().map(|_| "<hook>"))
            .field("cancel", &self.cancel)
            .finish()
    }
}

impl DatasetConfig {
    /// The paper's Dataset 1 sweep (1..=350 key gates, LUT-4) on `profile`.
    pub fn dataset1(profile: &str, num_instances: usize) -> Self {
        DatasetConfig {
            profile: profile.to_owned(),
            circuit_seed: 0,
            scheme: SchemeKind::LutLock { lut_size: 4 },
            num_instances,
            key_range: (1, 350),
            seed: 1,
            attack: AttackConfig::with_work_budget(50_000_000),
            measure: RuntimeMeasure::SolverWork,
            retry: RetryPolicy::default(),
            keep_going: true,
            watchdog_stall: None,
            attack_hook: None,
            cancel: None,
        }
    }

    /// The paper's Dataset 2 sweep (1..=3 key gates, LUT-4) on `profile`.
    pub fn dataset2(profile: &str, num_instances: usize) -> Self {
        DatasetConfig {
            key_range: (1, 3),
            seed: 2,
            ..DatasetConfig::dataset1(profile, num_instances)
        }
    }

    /// A seconds-scale configuration for tests and doc examples: a small
    /// circuit, few instances, XOR locking (cheapest to attack).
    pub fn quick_demo() -> Self {
        DatasetConfig {
            profile: "c432".to_owned(),
            circuit_seed: 0,
            scheme: SchemeKind::XorLock,
            num_instances: 8,
            key_range: (1, 6),
            seed: 3,
            attack: AttackConfig::with_work_budget(5_000_000),
            measure: RuntimeMeasure::SolverWork,
            retry: RetryPolicy::default(),
            keep_going: true,
            watchdog_stall: None,
            attack_hook: None,
            cancel: None,
        }
    }
}

/// A generated dataset: the (shared) original circuit plus labeled
/// instances.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// The unlocked base circuit every instance obfuscates.
    pub circuit: Circuit,
    /// Labeled obfuscation instances.
    pub instances: Vec<Instance>,
}

impl Dataset {
    /// The log-runtime labels, in instance order.
    pub fn labels(&self) -> Vec<f64> {
        self.instances.iter().map(|i| i.log_seconds).collect()
    }

    /// Fraction of instances whose attack hit the budget.
    pub fn censored_fraction(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        self.instances.iter().filter(|i| i.censored).count() as f64 / self.instances.len() as f64
    }
}

/// Derives the RNG seed for instance `index` of a sweep with master seed
/// `master` (a SplitMix64 mix).
///
/// Each instance owns an independent seed, so any subset of instances can be
/// (re)generated in any order — by any number of worker threads — and the
/// result is identical to the serial sweep (see [`crate::generate_parallel`]).
pub fn instance_seed(master: u64, index: usize) -> u64 {
    let mut z = master
        .wrapping_add(0x0DA7_A5E7)
        .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Validates `config` and builds the base circuit every instance locks.
///
/// # Errors
///
/// Returns [`DatasetError::UnknownProfile`] for a bad profile name and
/// [`DatasetError::BadKeyRange`] when the sweep asks for more locked gates
/// than the circuit can supply.
pub fn sweep_circuit(config: &DatasetConfig) -> Result<Circuit, DatasetError> {
    let circuit = synth::iscas::circuit(&config.profile, config.circuit_seed)
        .ok_or_else(|| DatasetError::UnknownProfile(config.profile.clone()))?;
    let available = eligible_gates(&circuit, config.scheme).len();
    let (lo, hi) = config.key_range;
    if lo == 0 || lo > hi || hi > available {
        return Err(DatasetError::BadKeyRange {
            range: config.key_range,
            available,
        });
    }
    Ok(circuit)
}

/// Draws the key-gate selection and locks `circuit` for instance `index` —
/// the cheap half of [`generate_one`], reused by checkpointing to identify
/// an instance without re-running its attack.
///
/// # Errors
///
/// Wraps locking failures as [`DatasetError::Obfuscate`].
pub(crate) fn lock_instance(
    config: &DatasetConfig,
    circuit: &Circuit,
    index: usize,
) -> Result<LockedCircuit, DatasetError> {
    let mut rng = StdRng::seed_from_u64(instance_seed(config.seed, index));
    let (lo, hi) = config.key_range;
    let count = rng.gen_range(lo..=hi);
    let selected = select_gates(circuit, config.scheme, count, &mut rng)?;
    let locked = match config.scheme {
        SchemeKind::LutLock { lut_size } => lut_lock(circuit, &selected, lut_size, &mut rng)?,
        SchemeKind::XorLock => obfuscate::xor_lock(circuit, &selected, &mut rng)?,
        SchemeKind::MuxLock => obfuscate::mux_lock(circuit, &selected, &mut rng)?,
        SchemeKind::AntiSat { key_width } => {
            obfuscate::anti_sat_lock(circuit, &selected, key_width, &mut rng)?
        }
    };
    Ok(locked)
}

/// Builds the label for an already locked and attacked instance.
pub(crate) fn label_instance(
    config: &DatasetConfig,
    locked: &LockedCircuit,
    result: &AttackResult,
) -> Instance {
    let seconds = result.runtime.seconds(config.measure);
    Instance {
        selected: locked.selected.clone(),
        key_bits: locked.key_len(),
        iterations: result.iterations,
        work: result.runtime.work,
        seconds,
        log_seconds: seconds.max(1e-6).ln(),
        censored: matches!(
            result.outcome,
            AttackOutcome::BudgetExceeded | AttackOutcome::TimedOut(_)
        ),
    }
}

/// Generates the single labeled instance `index` of the sweep described by
/// `config`, independent of every other instance.
///
/// This is a pure function of `(config, index)`: the per-instance RNG seed
/// is derived via [`instance_seed`], so instances can be computed serially,
/// in parallel, or re-computed individually with identical results.
/// `circuit` must be the output of [`sweep_circuit`] for `config`.
///
/// # Errors
///
/// Wraps locking failures as [`DatasetError::Obfuscate`] and attack failures
/// as [`DatasetError::Attack`] (carrying the instance index and circuit
/// name). A wall-clock timeout or cancellation surfaces as
/// [`DatasetError::Quarantined`] / [`DatasetError::Attack`] respectively —
/// this fail-fast entry point never labels a machine-dependent partial run
/// (retry and quarantine live in the supervised sweep,
/// [`crate::generate_parallel_with`]).
pub fn generate_one(
    config: &DatasetConfig,
    circuit: &Circuit,
    index: usize,
) -> Result<Instance, DatasetError> {
    let locked = lock_instance(config, circuit, index)?;
    let result = match &config.attack_hook {
        Some(hook) => hook(index, &locked, &config.attack),
        None => attack_locked(&locked, &config.attack),
    }
    .map_err(|source| DatasetError::Attack {
        instance: index,
        circuit: config.profile.clone(),
        source,
    })?;
    match result.outcome {
        AttackOutcome::Cancelled => Err(DatasetError::Attack {
            instance: index,
            circuit: config.profile.clone(),
            source: attack::AttackError::Cancelled,
        }),
        AttackOutcome::TimedOut(which) => Err(DatasetError::Quarantined {
            instance: index,
            circuit: config.profile.clone(),
            failure: crate::supervise::InstanceFailure {
                kind: crate::supervise::FailureKind::Timeout,
                attempts: 1,
                message: crate::supervise::timeout_message(which, &config.attack),
                iterations: result.iterations,
                work: result.solver_stats.work(),
            },
        }),
        AttackOutcome::MemoryExceeded => Err(DatasetError::Quarantined {
            instance: index,
            circuit: config.profile.clone(),
            failure: crate::supervise::InstanceFailure {
                kind: crate::supervise::FailureKind::MemoryExceeded,
                attempts: 1,
                message: format!(
                    "logical-byte budget {:?} exceeded (peak {} bytes)",
                    config.attack.mem_budget, result.peak_logical_bytes
                ),
                iterations: result.iterations,
                work: result.solver_stats.work(),
            },
        }),
        // A completion perturbed by memory pressure never labels (its work
        // measure depends on the budget); see `supervise_attack` for the
        // full argument.
        _ if config.attack.mem_budget.is_some() && result.solver_stats.mem_pressure_events > 0 => {
            Err(DatasetError::Quarantined {
                instance: index,
                circuit: config.profile.clone(),
                failure: crate::supervise::InstanceFailure {
                    kind: crate::supervise::FailureKind::MemoryExceeded,
                    attempts: 1,
                    message: format!(
                        "completed under memory pressure (budget {:?}, peak {} bytes); \
                         label withheld",
                        config.attack.mem_budget, result.peak_logical_bytes
                    ),
                    iterations: result.iterations,
                    work: result.solver_stats.work(),
                },
            })
        }
        _ => Ok(label_instance(config, &locked, &result)),
    }
}

/// Runs the full pipeline described in the paper's Section IV-A, serially.
///
/// Produces byte-identical results to [`crate::generate_parallel`] with any
/// worker count.
///
/// # Errors
///
/// Returns [`DatasetError::UnknownProfile`] for a bad profile name,
/// [`DatasetError::BadKeyRange`] when the sweep asks for more locked gates
/// than the circuit can supply, and wraps locking/attack failures.
pub fn generate(config: &DatasetConfig) -> Result<Dataset, DatasetError> {
    let circuit = sweep_circuit(config)?;
    let mut instances = Vec::with_capacity(config.num_instances);
    for index in 0..config.num_instances {
        instances.push(generate_one(config, &circuit, index)?);
    }
    Ok(Dataset { circuit, instances })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_demo_generates_labeled_instances() {
        let config = DatasetConfig::quick_demo();
        let data = generate(&config).unwrap();
        assert_eq!(data.instances.len(), 8);
        for inst in &data.instances {
            assert!(inst.num_selected() >= 1 && inst.num_selected() <= 6);
            assert!(inst.seconds > 0.0);
            assert!(inst.log_seconds.is_finite());
            assert_eq!(inst.key_bits, inst.num_selected()); // XOR lock: 1 bit/gate
        }
        assert_eq!(data.labels().len(), 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let config = DatasetConfig::quick_demo();
        let a = generate(&config).unwrap();
        let b = generate(&config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn runtime_grows_with_key_count_on_average() {
        // The premise of the whole paper, checked end to end. LUT locking
        // gives the labels real dynamic range on c432; XOR-locked attacks
        // there finish in a near-constant few DIP rounds, so their
        // key-count/runtime correlation is sampling noise.
        let mut config = DatasetConfig::quick_demo();
        config.num_instances = 12;
        config.scheme = SchemeKind::LutLock { lut_size: 2 };
        config.key_range = (1, 12);
        let data = generate(&config).unwrap();
        let counts: Vec<f64> = data
            .instances
            .iter()
            .map(|i| i.num_selected() as f64)
            .collect();
        let corr = regress_corr(&counts, &data.labels());
        assert!(corr > 0.3, "key-count/runtime correlation {corr}");
    }

    fn regress_corr(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(&x, &y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|&x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|&y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt()).max(1e-12)
    }

    #[test]
    fn bad_profile_and_range_are_rejected() {
        let mut config = DatasetConfig::quick_demo();
        config.profile = "c9999".into();
        assert!(matches!(
            generate(&config),
            Err(DatasetError::UnknownProfile(_))
        ));
        let mut config = DatasetConfig::quick_demo();
        config.key_range = (1, 100_000);
        assert!(matches!(
            generate(&config),
            Err(DatasetError::BadKeyRange { .. })
        ));
        let mut config = DatasetConfig::quick_demo();
        config.key_range = (0, 3);
        assert!(matches!(
            generate(&config),
            Err(DatasetError::BadKeyRange { .. })
        ));
    }

    #[test]
    fn dataset_presets_have_paper_ranges() {
        let d1 = DatasetConfig::dataset1("c1529", 100);
        assert_eq!(d1.key_range, (1, 350));
        assert_eq!(d1.scheme, SchemeKind::LutLock { lut_size: 4 });
        let d2 = DatasetConfig::dataset2("c1529", 100);
        assert_eq!(d2.key_range, (1, 3));
    }
}
