//! Zero-dependency structured observability for the attack→dataset→training
//! pipeline.
//!
//! The paper's headline deployment claim is an observability claim — ICNet
//! inference costs ~1.13 s against up to 2411 s of solver time — so the
//! pipeline needs per-stage visibility to substantiate it. This crate is a
//! process-global event sink:
//!
//! * Instrumented code calls [`emit`] with a typed [`EventKind`]. When the
//!   sink is disabled (the default) this is a single relaxed atomic load —
//!   cheap enough for solver-inner-loop call sites.
//! * When enabled via [`init`], events are timestamped against a monotonic
//!   process epoch and pushed into a per-thread buffer (one short mutex, no
//!   contention between worker threads).
//! * [`finish`] drains every buffer, merges events in deterministic order
//!   (stable sort by timestamp, ties broken by thread id and emission order),
//!   writes the optional JSONL trace, and returns an aggregated [`Summary`].
//!
//! The sink is **observation-only**: instrumented code only *reads* program
//! state (counters, sizes, clocks) when emitting, so enabling tracing cannot
//! perturb labels, datasets, or trained parameters. The integration test
//! `integration_observability` in the bench crate asserts this end to end.
//!
//! ```
//! let dir = std::env::temp_dir().join("obs-doc-example");
//! std::fs::create_dir_all(&dir).unwrap();
//! let trace = dir.join("trace.jsonl");
//! obs::init(obs::ObsConfig {
//!     trace: Some(trace.display().to_string()),
//!     progress: false,
//! });
//! let timer = obs::stage("doc-example");
//! drop(timer); // emits a `stage` event with the elapsed wall time
//! let summary = obs::finish().unwrap();
//! assert_eq!(summary.events, 1);
//! ```

mod event;
mod summary;

pub use event::{fmt_wall, Event, EventKind};
pub use summary::{StageRow, Summary};

use std::cell::{Cell, OnceCell};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Sink configuration for [`init`].
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Write the merged event stream as JSON Lines to this path on [`finish`].
    pub trace: Option<String>,
    /// Echo coarse events (instances, cells, stages…) to stderr as they happen.
    pub progress: bool,
}

/// Collection switch. Relaxed is enough: emission is advisory and the flag
/// only transitions on `init`/`finish`, which fully synchronise via `STATE`.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Live progress echo switch (subset of ENABLED).
static PROGRESS: AtomicBool = AtomicBool::new(false);
/// Monotonic zero point for all timestamps, fixed at first `init`.
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Registry of every thread buffer ever created. Entries are never removed
/// (thread-locals keep pointing at them across `finish`/`init` cycles); only
/// their contents are drained or cleared.
static REGISTRY: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());
/// Active sink configuration; `None` when the sink was never initialised or
/// has been finished.
static STATE: Mutex<Option<ObsConfig>> = Mutex::new(None);
/// Serialises progress lines from concurrent workers.
static PROGRESS_LOCK: Mutex<()> = Mutex::new(());

struct ThreadBuf {
    id: u32,
    events: Mutex<Vec<Event>>,
}

thread_local! {
    /// This thread's buffer, registered on first use and reused forever.
    static BUF: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
    /// Ambient instance index attached to every event this thread emits.
    static CTX: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Is the sink currently collecting? A single relaxed atomic load, suitable
/// for guarding instrumentation in hot loops.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record one event. No-op (one atomic load) when the sink is disabled.
pub fn emit(kind: EventKind) {
    if !enabled() {
        return;
    }
    let ts_ns = EPOCH
        .get()
        .map(|epoch| epoch.elapsed().as_nanos() as u64)
        .unwrap_or(0);
    if PROGRESS.load(Ordering::Relaxed) {
        if let Some(line) = kind.progress_line() {
            let guard = PROGRESS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            eprintln!("\u{b7} {line}");
            drop(guard);
        }
    }
    let event = Event {
        ts_ns,
        thread: 0, // patched below with the registered id
        ctx: CTX.with(Cell::get),
        kind,
    };
    BUF.with(|cell| {
        let buf = cell.get_or_init(|| {
            let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
            let entry = Arc::new(ThreadBuf {
                id: registry.len() as u32,
                events: Mutex::new(Vec::new()),
            });
            registry.push(Arc::clone(&entry));
            entry
        });
        let mut events = buf.events.lock().unwrap_or_else(|e| e.into_inner());
        events.push(Event {
            thread: buf.id,
            ..event
        });
    });
}

/// Guard that attaches an instance index to every event emitted by this
/// thread while it is alive. Nests: dropping restores the previous context.
pub struct ContextGuard {
    prev: Option<u64>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// Attach `instance` as the ambient context for this thread.
pub fn context(instance: u64) -> ContextGuard {
    let prev = CTX.with(|c| c.replace(Some(instance)));
    ContextGuard { prev }
}

/// RAII wall-clock timer: emits a [`EventKind::StageFinished`] on drop.
pub struct StageTimer {
    name: String,
    started: Instant,
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        emit(EventKind::StageFinished {
            stage: std::mem::take(&mut self.name),
            wall_ns: self.started.elapsed().as_nanos() as u64,
        });
    }
}

/// Start a named coarse stage; the elapsed wall time is recorded when the
/// returned timer drops.
pub fn stage(name: &str) -> StageTimer {
    StageTimer {
        name: name.to_string(),
        started: Instant::now(),
    }
}

/// Start collecting events. Clears any events left over from a previous
/// collection window in this process. Idempotent with respect to the
/// timestamp epoch: the zero point is fixed at the first `init` ever.
pub fn init(config: ObsConfig) {
    let mut state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    EPOCH.get_or_init(Instant::now);
    for buf in REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        buf.events.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
    PROGRESS.store(config.progress, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
    *state = Some(config);
}

/// Stop collecting, merge all thread buffers in deterministic order, write
/// the JSONL trace if one was configured, and return the profile. Returns
/// `None` if the sink was never initialised (or already finished).
pub fn finish() -> Option<Summary> {
    let mut state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let config = state.take()?;
    ENABLED.store(false, Ordering::Relaxed);
    PROGRESS.store(false, Ordering::Relaxed);

    let mut events: Vec<Event> = Vec::new();
    {
        let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        // Deterministic merge: concatenate buffers in registration order
        // (each buffer is already in emission order with nondecreasing
        // timestamps), then stable-sort by timestamp so ties keep the
        // (thread id, emission order) tie-break.
        for buf in registry.iter() {
            let mut local = buf.events.lock().unwrap_or_else(|e| e.into_inner());
            events.append(&mut local);
        }
    }
    events.sort_by_key(|ev| ev.ts_ns);

    let mut summary = Summary::from_events(&events);
    if let Some(path) = &config.trace {
        summary.trace_path = Some(path.clone());
        summary.trace_error = write_trace(path, &events).err().map(|e| e.to_string());
    }
    Some(summary)
}

fn write_trace(path: &str, events: &[Event]) -> std::io::Result<()> {
    // Trace emission failures must never take the run down, so the injected
    // error here only surfaces through `Summary::trace_error`.
    let injected = faults::inject("obs.trace.write");
    if let Some(fault) = &injected {
        match fault.action {
            faults::Action::Io => {
                return Err(std::io::Error::other(format!(
                    "injected fault: obs.trace.write io (occurrence {})",
                    fault.occurrence
                )));
            }
            faults::Action::Torn => {}
            _ => fault.unsupported("obs.trace.write"),
        }
    }
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    for (i, ev) in events.iter().enumerate() {
        if let Some(fault) = &injected {
            // A torn trace: half the events reach disk, then the writer dies.
            if fault.action == faults::Action::Torn && i >= events.len() / 2 {
                writer.flush()?;
                return Err(std::io::Error::other(format!(
                    "injected fault: obs.trace.write torn after {i} events \
                     (occurrence {})",
                    fault.occurrence
                )));
            }
        }
        writer.write_all(ev.to_json().as_bytes())?;
        writer.write_all(b"\n")?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is process-global; serialise tests that toggle it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn emit_without_init_is_a_noop_and_finish_returns_none() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        emit(EventKind::StageFinished {
            stage: "ignored".into(),
            wall_ns: 1,
        });
        assert!(finish().is_none());
    }

    #[test]
    fn collect_merge_and_trace_roundtrip() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("obs-unit-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl").display().to_string();

        init(ObsConfig {
            trace: Some(trace.clone()),
            progress: false,
        });
        assert!(enabled());
        {
            let _ctx = context(3);
            emit(EventKind::InstanceStarted {
                index: 3,
                worker: 0,
            });
            {
                let _inner = context(4);
                emit(EventKind::InstanceStarted {
                    index: 4,
                    worker: 0,
                });
            }
            emit(EventKind::InstanceFinished {
                index: 3,
                worker: 0,
                reused: false,
                wall_ns: 10,
                work: 20,
            });
        }
        let handle = std::thread::spawn(|| {
            emit(EventKind::StageFinished {
                stage: "worker-stage".into(),
                wall_ns: 7,
            });
        });
        handle.join().unwrap();

        let summary = finish().expect("sink was initialised");
        assert!(!enabled());
        assert_eq!(summary.events, 4);
        assert!(summary.threads >= 2);
        assert!(summary.trace_error.is_none(), "{:?}", summary.trace_error);

        let text = std::fs::read_to_string(&trace).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Monotone timestamps across the merged stream.
        let ts: Vec<u64> = lines
            .iter()
            .map(|l| {
                let rest = l.strip_prefix("{\"ts\":").unwrap();
                rest[..rest.find(',').unwrap()].parse().unwrap()
            })
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
        // Context guard nesting: start(3) has ctx 3, start(4) has ctx 4,
        // finish(3) back to ctx 3.
        assert_eq!(
            text.matches("\"ctx\":3").count(),
            2,
            "outer context restored after nested guard"
        );
        assert_eq!(text.matches("\"ctx\":4").count(), 1);
        assert!(text.contains("\"kind\":\"stage\""));

        // Re-init clears the previous window.
        init(ObsConfig::default());
        emit(EventKind::StageFinished {
            stage: "second-window".into(),
            wall_ns: 1,
        });
        let summary = finish().unwrap();
        assert_eq!(summary.events, 1);
        assert_eq!(summary.stages[0].name, "second-window");
    }
}
