//! Typed observability events and their JSONL serialization.
//!
//! Every event is one line of JSON in the trace file. The envelope carries a
//! monotonic timestamp (nanoseconds since `obs::init`), the id of the emitting
//! thread, and the instance index from the ambient [`crate::context`] guard if
//! one was active. Serialization is hand-rolled so the crate stays free of
//! external dependencies; non-finite floats are written as `null` because JSON
//! has no NaN/Inf literals.

/// One recorded event: envelope plus payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Nanoseconds since the sink was initialised (monotonic clock).
    pub ts_ns: u64,
    /// Registration id of the emitting thread (dense, starts at 0).
    pub thread: u32,
    /// Instance index from the ambient context guard, if any.
    pub ctx: Option<u64>,
    /// The typed payload.
    pub kind: EventKind,
}

/// The typed event payloads emitted across the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Periodic `sat::Solver` counter snapshot (also emitted once per solve).
    SolverProgress {
        decisions: u64,
        propagations: u64,
        conflicts: u64,
        restarts: u64,
        /// Live learnt clauses (learnt minus deleted).
        learnt_live: u64,
    },
    /// One DIP iteration of the oracle-guided attack.
    AttackIteration {
        iteration: u64,
        /// Solver work spent on this iteration's distinguishing query.
        query_work: u64,
        /// Cumulative solver work across the attack so far.
        total_work: u64,
        /// Miter size when the iteration finished (vars / clause slots).
        miter_vars: u64,
        miter_clauses: u64,
        wall_ns: u64,
    },
    /// A sweep worker picked up an instance.
    InstanceStarted { index: u64, worker: u64 },
    /// A sweep worker finished an instance (freshly attacked or reused).
    InstanceFinished {
        index: u64,
        worker: u64,
        reused: bool,
        wall_ns: u64,
        /// Deterministic solver work recorded in the instance label.
        work: u64,
    },
    /// A supervised attempt failed and will be retried.
    InstanceRetry {
        index: u64,
        /// 1-based attempt number that is about to run.
        attempt: u64,
        reason: &'static str,
    },
    /// An instance exhausted its retry budget and was quarantined.
    InstanceQuarantined {
        index: u64,
        kind: &'static str,
        attempts: u64,
        /// True when the quarantine record was replayed from a checkpoint.
        reused: bool,
    },
    /// One training epoch completed.
    TrainEpoch {
        epoch: u64,
        loss: f64,
        grad_norm: f64,
        wall_ns: u64,
    },
    /// A cell of the Table I/II evaluation grid started.
    CellStarted { label: String },
    /// A cell of the Table I/II evaluation grid finished.
    CellFinished { label: String, wall_ns: u64 },
    /// Dataset cache probe outcome in `bench::harness`.
    Cache { hit: bool, path: String },
    /// A training epoch checkpoint was durably written.
    TrainCheckpointSaved { epoch: u64 },
    /// An armed fault plan fired at a named site.
    FaultInjected {
        site: String,
        action: &'static str,
        occurrence: u64,
    },
    /// A named coarse stage (RAII timer) finished.
    StageFinished { stage: String, wall_ns: u64 },
    /// Peak logical bytes observed for one metered scope (an attack's
    /// solver, a training run's tape buffers, a serve request's inference).
    /// Logical bytes are bytes *requested*, not allocator overhead, so the
    /// value is deterministic and machine-independent (see `budget`).
    MemHighwater {
        /// What was metered: `"attack"`, `"train"`, `"serve"`, ...
        scope: &'static str,
        /// Peak logical bytes over the scope's lifetime.
        bytes: u64,
    },
    /// One request handled (or shed) by the prediction service.
    ServeRequest {
        /// Connection sequence number assigned at accept time.
        seq: u64,
        /// Admission-queue depth observed when the outcome was recorded.
        queue_depth: u64,
        /// Time spent queued before a worker picked the request up.
        wait_ns: u64,
        /// Wall time of the inference pipeline (zero for shed requests).
        infer_ns: u64,
        /// Total request wall time (queue wait + inference + reply).
        wall_ns: u64,
        /// Outcome tag: `"ok"` or a `serve::ErrorCode` tag such as
        /// `"overloaded"` / `"deadline_exceeded"`.
        outcome: &'static str,
    },
}

impl EventKind {
    /// Stable machine-readable tag written to the `kind` JSON field.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::SolverProgress { .. } => "solver.progress",
            EventKind::AttackIteration { .. } => "attack.iteration",
            EventKind::InstanceStarted { .. } => "dataset.instance.start",
            EventKind::InstanceFinished { .. } => "dataset.instance.finish",
            EventKind::InstanceRetry { .. } => "dataset.instance.retry",
            EventKind::InstanceQuarantined { .. } => "dataset.instance.quarantine",
            EventKind::TrainEpoch { .. } => "train.epoch",
            EventKind::CellStarted { .. } => "bench.cell.start",
            EventKind::CellFinished { .. } => "bench.cell.finish",
            EventKind::Cache { .. } => "bench.cache",
            EventKind::TrainCheckpointSaved { .. } => "train.checkpoint",
            EventKind::FaultInjected { .. } => "fault.injected",
            EventKind::StageFinished { .. } => "stage",
            EventKind::MemHighwater { .. } => "mem.highwater",
            EventKind::ServeRequest { .. } => "serve.request",
        }
    }

    /// Human-readable one-liner for the live progress sink, or `None` for
    /// high-frequency kinds that would flood a terminal.
    pub fn progress_line(&self) -> Option<String> {
        match self {
            EventKind::InstanceStarted { index, worker } => {
                Some(format!("instance {index} started (worker {worker})"))
            }
            EventKind::InstanceFinished {
                index,
                worker,
                reused,
                wall_ns,
                work,
            } => Some(format!(
                "instance {index} {} in {} (worker {worker}, work {work})",
                if *reused { "reused" } else { "done" },
                fmt_wall(*wall_ns),
            )),
            EventKind::InstanceRetry {
                index,
                attempt,
                reason,
            } => Some(format!("instance {index} retry #{attempt} after {reason}")),
            EventKind::InstanceQuarantined {
                index,
                kind,
                attempts,
                reused,
            } => Some(format!(
                "instance {index} quarantined ({kind}, {attempts} attempts{})",
                if *reused { ", replayed" } else { "" },
            )),
            EventKind::TrainEpoch {
                epoch,
                loss,
                grad_norm,
                ..
            } if epoch % 50 == 0 => Some(format!(
                "epoch {epoch}: loss {loss:.6}, |grad| {grad_norm:.4}"
            )),
            EventKind::CellStarted { label } => Some(format!("cell {label} started")),
            EventKind::CellFinished { label, wall_ns } => {
                Some(format!("cell {label} finished in {}", fmt_wall(*wall_ns)))
            }
            EventKind::Cache { hit, path } => Some(format!(
                "dataset cache {}: {path}",
                if *hit { "hit" } else { "miss" },
            )),
            EventKind::FaultInjected {
                site,
                action,
                occurrence,
            } => Some(format!(
                "fault injected at {site}: {action} (occurrence {occurrence})"
            )),
            EventKind::StageFinished { stage, wall_ns } => {
                Some(format!("stage {stage} finished in {}", fmt_wall(*wall_ns)))
            }
            // Successful predictions are the hot path and would flood the
            // terminal; degraded outcomes are rare and worth a line each.
            EventKind::ServeRequest {
                seq,
                queue_depth,
                outcome,
                ..
            } if *outcome != "ok" => Some(format!(
                "request {seq} -> {outcome} (queue depth {queue_depth})"
            )),
            _ => None,
        }
    }
}

impl Event {
    /// Serialize as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push('{');
        push_u64(&mut out, "ts", self.ts_ns);
        out.push(',');
        push_u64(&mut out, "thread", u64::from(self.thread));
        if let Some(ctx) = self.ctx {
            out.push(',');
            push_u64(&mut out, "ctx", ctx);
        }
        out.push(',');
        push_str(&mut out, "kind", self.kind.tag());
        match &self.kind {
            EventKind::SolverProgress {
                decisions,
                propagations,
                conflicts,
                restarts,
                learnt_live,
            } => {
                for (k, v) in [
                    ("decisions", decisions),
                    ("propagations", propagations),
                    ("conflicts", conflicts),
                    ("restarts", restarts),
                    ("learnt_live", learnt_live),
                ] {
                    out.push(',');
                    push_u64(&mut out, k, *v);
                }
            }
            EventKind::AttackIteration {
                iteration,
                query_work,
                total_work,
                miter_vars,
                miter_clauses,
                wall_ns,
            } => {
                for (k, v) in [
                    ("iteration", iteration),
                    ("query_work", query_work),
                    ("total_work", total_work),
                    ("miter_vars", miter_vars),
                    ("miter_clauses", miter_clauses),
                    ("wall_ns", wall_ns),
                ] {
                    out.push(',');
                    push_u64(&mut out, k, *v);
                }
            }
            EventKind::InstanceStarted { index, worker } => {
                out.push(',');
                push_u64(&mut out, "index", *index);
                out.push(',');
                push_u64(&mut out, "worker", *worker);
            }
            EventKind::InstanceFinished {
                index,
                worker,
                reused,
                wall_ns,
                work,
            } => {
                out.push(',');
                push_u64(&mut out, "index", *index);
                out.push(',');
                push_u64(&mut out, "worker", *worker);
                out.push(',');
                push_bool(&mut out, "reused", *reused);
                out.push(',');
                push_u64(&mut out, "wall_ns", *wall_ns);
                out.push(',');
                push_u64(&mut out, "work", *work);
            }
            EventKind::InstanceRetry {
                index,
                attempt,
                reason,
            } => {
                out.push(',');
                push_u64(&mut out, "index", *index);
                out.push(',');
                push_u64(&mut out, "attempt", *attempt);
                out.push(',');
                push_str(&mut out, "reason", reason);
            }
            EventKind::InstanceQuarantined {
                index,
                kind,
                attempts,
                reused,
            } => {
                out.push(',');
                push_u64(&mut out, "index", *index);
                out.push(',');
                push_str(&mut out, "failure", kind);
                out.push(',');
                push_u64(&mut out, "attempts", *attempts);
                out.push(',');
                push_bool(&mut out, "reused", *reused);
            }
            EventKind::TrainEpoch {
                epoch,
                loss,
                grad_norm,
                wall_ns,
            } => {
                out.push(',');
                push_u64(&mut out, "epoch", *epoch);
                out.push(',');
                push_f64(&mut out, "loss", *loss);
                out.push(',');
                push_f64(&mut out, "grad_norm", *grad_norm);
                out.push(',');
                push_u64(&mut out, "wall_ns", *wall_ns);
            }
            EventKind::CellStarted { label } => {
                out.push(',');
                push_str(&mut out, "label", label);
            }
            EventKind::CellFinished { label, wall_ns } => {
                out.push(',');
                push_str(&mut out, "label", label);
                out.push(',');
                push_u64(&mut out, "wall_ns", *wall_ns);
            }
            EventKind::Cache { hit, path } => {
                out.push(',');
                push_bool(&mut out, "hit", *hit);
                out.push(',');
                push_str(&mut out, "path", path);
            }
            EventKind::TrainCheckpointSaved { epoch } => {
                out.push(',');
                push_u64(&mut out, "epoch", *epoch);
            }
            EventKind::FaultInjected {
                site,
                action,
                occurrence,
            } => {
                out.push(',');
                push_str(&mut out, "site", site);
                out.push(',');
                push_str(&mut out, "action", action);
                out.push(',');
                push_u64(&mut out, "occurrence", *occurrence);
            }
            EventKind::StageFinished { stage, wall_ns } => {
                out.push(',');
                push_str(&mut out, "stage", stage);
                out.push(',');
                push_u64(&mut out, "wall_ns", *wall_ns);
            }
            EventKind::MemHighwater { scope, bytes } => {
                out.push(',');
                push_str(&mut out, "scope", scope);
                out.push(',');
                push_u64(&mut out, "bytes", *bytes);
            }
            EventKind::ServeRequest {
                seq,
                queue_depth,
                wait_ns,
                infer_ns,
                wall_ns,
                outcome,
            } => {
                for (k, v) in [
                    ("seq", seq),
                    ("queue_depth", queue_depth),
                    ("wait_ns", wait_ns),
                    ("infer_ns", infer_ns),
                    ("wall_ns", wall_ns),
                ] {
                    out.push(',');
                    push_u64(&mut out, k, *v);
                }
                out.push(',');
                push_str(&mut out, "outcome", outcome);
            }
        }
        out.push('}');
        out
    }
}

fn push_key(out: &mut String, key: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
}

fn push_u64(out: &mut String, key: &str, value: u64) {
    push_key(out, key);
    out.push_str(&value.to_string());
}

fn push_bool(out: &mut String, key: &str, value: bool) {
    push_key(out, key);
    out.push_str(if value { "true" } else { "false" });
}

fn push_f64(out: &mut String, key: &str, value: f64) {
    push_key(out, key);
    if value.is_finite() {
        // `to_string` produces the shortest representation that round-trips.
        out.push_str(&value.to_string());
        // Bare integers like `3` are valid JSON numbers; keep them as-is.
    } else {
        out.push_str("null");
    }
}

fn push_str(out: &mut String, key: &str, value: &str) {
    push_key(out, key);
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a wall-clock duration in nanoseconds as a short human string.
pub fn fmt_wall(ns: u64) -> String {
    let secs = ns as f64 / 1e9;
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.0}\u{b5}s", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_envelope_and_payload() {
        let ev = Event {
            ts_ns: 42,
            thread: 1,
            ctx: Some(7),
            kind: EventKind::InstanceFinished {
                index: 7,
                worker: 1,
                reused: false,
                wall_ns: 1_500_000,
                work: 999,
            },
        };
        assert_eq!(
            ev.to_json(),
            "{\"ts\":42,\"thread\":1,\"ctx\":7,\"kind\":\"dataset.instance.finish\",\
             \"index\":7,\"worker\":1,\"reused\":false,\"wall_ns\":1500000,\"work\":999}"
        );
    }

    #[test]
    fn json_escapes_strings_and_nan_floats() {
        let ev = Event {
            ts_ns: 0,
            thread: 0,
            ctx: None,
            kind: EventKind::StageFinished {
                stage: "we\"ird\\st\nage".into(),
                wall_ns: 5,
            },
        };
        assert_eq!(
            ev.to_json(),
            "{\"ts\":0,\"thread\":0,\"kind\":\"stage\",\
             \"stage\":\"we\\\"ird\\\\st\\nage\",\"wall_ns\":5}"
        );

        let nan = Event {
            ts_ns: 0,
            thread: 0,
            ctx: None,
            kind: EventKind::TrainEpoch {
                epoch: 3,
                loss: f64::NAN,
                grad_norm: 0.5,
                wall_ns: 10,
            },
        };
        assert!(nan.to_json().contains("\"loss\":null"));
        assert!(nan.to_json().contains("\"grad_norm\":0.5"));
    }

    #[test]
    fn progress_lines_skip_hot_kinds() {
        let hot = EventKind::SolverProgress {
            decisions: 1,
            propagations: 2,
            conflicts: 3,
            restarts: 0,
            learnt_live: 0,
        };
        assert!(hot.progress_line().is_none());
        let attack = EventKind::AttackIteration {
            iteration: 1,
            query_work: 1,
            total_work: 1,
            miter_vars: 1,
            miter_clauses: 1,
            wall_ns: 1,
        };
        assert!(attack.progress_line().is_none());
        let cell = EventKind::CellFinished {
            label: "gcn d=2".into(),
            wall_ns: 2_000_000_000,
        };
        assert_eq!(
            cell.progress_line().unwrap(),
            "cell gcn d=2 finished in 2.00s"
        );
    }

    #[test]
    fn wall_formatting() {
        assert_eq!(fmt_wall(2_500_000_000), "2.50s");
        assert_eq!(fmt_wall(2_500_000), "2.50ms");
        assert_eq!(fmt_wall(900), "1\u{b5}s");
    }
}
