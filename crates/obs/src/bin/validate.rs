//! Validate a JSONL trace emitted by the obs sink.
//!
//! Usage: `validate <trace.jsonl> [required-kind ...]`
//!
//! Checks that every line parses as a JSON object, that `ts` fields are
//! monotone nondecreasing across the file, and that every required `kind`
//! tag appears at least once. Exits non-zero with a diagnostic on failure.
//! Used by the CI smoke job; the parser is a minimal self-contained JSON
//! reader so the crate stays dependency-free.

use std::process::ExitCode;

#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_document(mut self) -> Result<Json, String> {
        self.skip_ws();
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing garbage"));
        }
        Ok(value)
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogate pairs never appear in our traces;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from a &str, so
                    // byte-level copying is safe; find the char boundary).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let ch = rest.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(self.error("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("bad number"))
    }
}

fn field<'j>(object: &'j Json, key: &str) -> Option<&'j Json> {
    match object {
        Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let path = args
        .first()
        .ok_or_else(|| "usage: validate <trace.jsonl> [required-kind ...]".to_string())?;
    let required: Vec<&str> = args[1..].iter().map(String::as_str).collect();
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;

    let mut last_ts: u64 = 0;
    let mut seen: Vec<String> = Vec::new();
    let mut lines = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        lines += 1;
        let value = Parser::new(line)
            .parse_document()
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let ts = match field(&value, "ts") {
            Some(Json::Number(n)) if *n >= 0.0 => *n as u64,
            _ => return Err(format!("{path}:{}: missing numeric 'ts'", lineno + 1)),
        };
        if ts < last_ts {
            return Err(format!(
                "{path}:{}: timestamp {ts} goes backwards (previous {last_ts})",
                lineno + 1
            ));
        }
        last_ts = ts;
        match field(&value, "kind") {
            Some(Json::String(kind)) => {
                if !seen.iter().any(|k| k == kind) {
                    seen.push(kind.clone());
                }
            }
            _ => return Err(format!("{path}:{}: missing string 'kind'", lineno + 1)),
        }
    }
    if lines == 0 {
        return Err(format!("{path}: trace is empty"));
    }
    let missing: Vec<&&str> = required
        .iter()
        .filter(|want| !seen.iter().any(|k| k == **want))
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "{path}: missing required event kinds {missing:?} (saw {seen:?})"
        ));
    }
    Ok(format!(
        "ok: {lines} events, monotone timestamps, kinds {seen:?}"
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("validate: {err}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> String {
        let dir = std::env::temp_dir().join("obs-validate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path.display().to_string()
    }

    #[test]
    fn accepts_a_well_formed_trace() {
        let path = write_temp(
            "good.jsonl",
            "{\"ts\":1,\"thread\":0,\"kind\":\"stage\",\"stage\":\"a\",\"wall_ns\":5}\n\
             {\"ts\":2,\"thread\":0,\"kind\":\"train.epoch\",\"epoch\":0,\"loss\":null,\"grad_norm\":1.5,\"wall_ns\":9}\n",
        );
        let report = run(&[path, "stage".into(), "train.epoch".into()]).unwrap();
        assert!(report.starts_with("ok: 2 events"));
    }

    #[test]
    fn rejects_backwards_timestamps() {
        let path = write_temp(
            "backwards.jsonl",
            "{\"ts\":5,\"kind\":\"stage\"}\n{\"ts\":4,\"kind\":\"stage\"}\n",
        );
        let err = run(&[path]).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn rejects_missing_required_kind_and_garbage() {
        let path = write_temp("short.jsonl", "{\"ts\":1,\"kind\":\"stage\"}\n");
        let err = run(&[path, "attack.iteration".into()]).unwrap_err();
        assert!(err.contains("missing required event kinds"), "{err}");

        let path = write_temp("torn.jsonl", "{\"ts\":1,\"kind\":\"st");
        let err = run(&[path]).unwrap_err();
        assert!(err.contains("unterminated string"), "{err}");
    }
}
