//! End-of-run profile: aggregate events into per-stage wall / solver-work
//! totals and render the "top stages" report every binary prints on exit.

use crate::event::{fmt_wall, Event, EventKind};

/// Aggregated totals for one named stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    pub name: String,
    /// Number of spans (events) aggregated into this row.
    pub spans: u64,
    /// Total wall time in nanoseconds.
    pub wall_ns: u64,
    /// Total deterministic solver work attributed to this stage.
    pub work: u64,
}

/// The end-of-run profile returned by [`crate::finish`].
#[derive(Debug, Clone)]
pub struct Summary {
    /// Total events recorded (all kinds).
    pub events: u64,
    /// Number of distinct threads that emitted at least one event.
    pub threads: u64,
    /// Per-stage aggregates, unsorted.
    pub stages: Vec<StageRow>,
    /// Path the JSONL trace was written to, if a trace sink was configured.
    pub trace_path: Option<String>,
    /// Error encountered while writing the trace, if any.
    pub trace_error: Option<String>,
}

impl Summary {
    /// Build a profile from the merged, time-ordered event list.
    pub fn from_events(events: &[Event]) -> Self {
        let mut stages: Vec<StageRow> = Vec::new();
        let mut add = |name: &str, wall_ns: u64, work: u64| {
            if let Some(row) = stages.iter_mut().find(|r| r.name == name) {
                row.spans += 1;
                row.wall_ns += wall_ns;
                row.work += work;
            } else {
                stages.push(StageRow {
                    name: name.to_string(),
                    spans: 1,
                    wall_ns,
                    work,
                });
            }
        };
        let mut threads = Vec::new();
        for ev in events {
            if !threads.contains(&ev.thread) {
                threads.push(ev.thread);
            }
            match &ev.kind {
                EventKind::AttackIteration {
                    query_work,
                    wall_ns,
                    ..
                } => add("attack.query", *wall_ns, *query_work),
                EventKind::InstanceFinished { wall_ns, work, .. } => {
                    add("dataset.instance", *wall_ns, *work)
                }
                EventKind::TrainEpoch { wall_ns, .. } => add("train.epoch", *wall_ns, 0),
                EventKind::CellFinished { wall_ns, .. } => add("bench.cell", *wall_ns, 0),
                EventKind::StageFinished { stage, wall_ns } => add(stage, *wall_ns, 0),
                EventKind::ServeRequest {
                    wall_ns, outcome, ..
                } => add(&format!("serve.{outcome}"), *wall_ns, 0),
                _ => {}
            }
        }
        Summary {
            events: events.len() as u64,
            threads: threads.len() as u64,
            stages,
            trace_path: None,
            trace_error: None,
        }
    }

    /// Render the human-readable profile printed at the end of every run.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# ---- observability profile ----\n");
        out.push_str(&format!(
            "# events: {} across {} thread{}\n",
            self.events,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        ));
        if let Some(path) = &self.trace_path {
            match &self.trace_error {
                None => out.push_str(&format!("# trace written to {path}\n")),
                Some(err) => out.push_str(&format!("# trace write to {path} FAILED: {err}\n")),
            }
        }
        let mut by_wall = self.stages.clone();
        by_wall.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then(a.name.cmp(&b.name)));
        if !by_wall.is_empty() {
            out.push_str("# top stages by wall time:\n");
            for row in by_wall.iter().take(8) {
                out.push_str(&format!(
                    "#   {:<24} {:>10}  ({} span{})\n",
                    row.name,
                    fmt_wall(row.wall_ns),
                    row.spans,
                    if row.spans == 1 { "" } else { "s" },
                ));
            }
        }
        let mut by_work: Vec<&StageRow> = self.stages.iter().filter(|r| r.work > 0).collect();
        by_work.sort_by(|a, b| b.work.cmp(&a.work).then(a.name.cmp(&b.name)));
        if !by_work.is_empty() {
            out.push_str("# top stages by solver work:\n");
            for row in by_work.iter().take(8) {
                out.push_str(&format!(
                    "#   {:<24} {:>14} work  ({} span{})\n",
                    row.name,
                    row.work,
                    row.spans,
                    if row.spans == 1 { "" } else { "s" },
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: u32, kind: EventKind) -> Event {
        Event {
            ts_ns: 0,
            thread,
            ctx: None,
            kind,
        }
    }

    #[test]
    fn aggregates_by_stage_and_counts_threads() {
        let events = vec![
            ev(
                0,
                EventKind::AttackIteration {
                    iteration: 1,
                    query_work: 100,
                    total_work: 100,
                    miter_vars: 10,
                    miter_clauses: 20,
                    wall_ns: 1_000,
                },
            ),
            ev(
                1,
                EventKind::AttackIteration {
                    iteration: 2,
                    query_work: 50,
                    total_work: 150,
                    miter_vars: 10,
                    miter_clauses: 25,
                    wall_ns: 500,
                },
            ),
            ev(
                0,
                EventKind::StageFinished {
                    stage: "generate".into(),
                    wall_ns: 9_000,
                },
            ),
            ev(
                0,
                EventKind::SolverProgress {
                    decisions: 1,
                    propagations: 1,
                    conflicts: 0,
                    restarts: 0,
                    learnt_live: 0,
                },
            ),
        ];
        let summary = Summary::from_events(&events);
        assert_eq!(summary.events, 4);
        assert_eq!(summary.threads, 2);
        let attack = summary
            .stages
            .iter()
            .find(|r| r.name == "attack.query")
            .unwrap();
        assert_eq!(attack.spans, 2);
        assert_eq!(attack.wall_ns, 1_500);
        assert_eq!(attack.work, 150);
        let rendered = summary.render();
        assert!(rendered.contains("top stages by wall time"));
        assert!(rendered.contains("generate"));
        assert!(rendered.contains("top stages by solver work"));
    }
}
