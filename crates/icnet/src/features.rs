//! The paper's gate-feature encoding (Section IV-B).

use netlist::stats::paper_type_index;
use netlist::{Circuit, GateId};
use tensor::Matrix;

/// Feature width of [`FeatureSet::Location`].
pub const NUM_FEATURES_LOCATION: usize = 1;
/// Feature width of [`FeatureSet::All`] (gate mask + 6 one-hot gate types).
pub const NUM_FEATURES_ALL: usize = 7;

/// Which per-gate features to encode — the two settings of Tables I/II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FeatureSet {
    /// Only the gate mask ("Location" columns): 1 iff the gate is selected
    /// for obfuscation.
    Location,
    /// Gate mask plus the one-hot gate type over
    /// {AND, NOR, NOT, NAND, OR, XOR} ("All feat" columns).
    #[default]
    All,
}

impl FeatureSet {
    /// Number of feature columns this setting produces.
    pub fn width(&self) -> usize {
        match self {
            FeatureSet::Location => NUM_FEATURES_LOCATION,
            FeatureSet::All => NUM_FEATURES_ALL,
        }
    }

    /// Table label used by the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            FeatureSet::Location => "Location",
            FeatureSet::All => "All feat",
        }
    }
}

/// Encodes the `n x F` gate-feature matrix for one obfuscation instance:
/// the circuit is the (fixed) original netlist and `selected` lists the
/// gates chosen for obfuscation (the encryption locations).
///
/// Gate kinds outside the paper's six types (buffers, MUXes, LUTs) encode
/// as all-zero type columns.
///
/// # Panics
///
/// Panics if a selected id is out of range for the circuit.
pub fn encode_features(circuit: &Circuit, selected: &[GateId], fs: FeatureSet) -> Matrix {
    let n = circuit.num_gates();
    let mut mask = vec![false; n];
    for &id in selected {
        mask[id.index()] = true;
    }
    let mut x = Matrix::zeros(n, fs.width());
    for (i, gate) in circuit.gates().enumerate() {
        if mask[i] {
            x.set(i, 0, 1.0);
        }
        if fs == FeatureSet::All {
            if let Some(t) = paper_type_index(gate.kind()) {
                x.set(i, 1 + t, 1.0);
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_encoding_is_a_mask() {
        let c = netlist::c17();
        let sel = vec![c.find("n10").unwrap(), c.find("n23").unwrap()];
        let x = encode_features(&c, &sel, FeatureSet::Location);
        assert_eq!(x.shape(), (11, 1));
        assert_eq!(x.sum(), 2.0);
        assert_eq!(x.get(c.find("n10").unwrap().index(), 0), 1.0);
        assert_eq!(x.get(c.find("n22").unwrap().index(), 0), 0.0);
    }

    #[test]
    fn all_features_one_hot_types() {
        let c = netlist::c17();
        let x = encode_features(&c, &[], FeatureSet::All);
        assert_eq!(x.shape(), (11, 7));
        // Inputs have no type bits; NANDs set index 1 + 3.
        for (i, gate) in c.gates().enumerate() {
            let type_sum: f64 = (1..7).map(|j| x.get(i, j)).sum();
            if gate.kind().is_input() {
                assert_eq!(type_sum, 0.0);
            } else {
                assert_eq!(type_sum, 1.0);
                assert_eq!(x.get(i, 4), 1.0, "NAND one-hot at paper index 3");
            }
        }
    }

    #[test]
    fn widths_and_labels() {
        assert_eq!(FeatureSet::Location.width(), 1);
        assert_eq!(FeatureSet::All.width(), 7);
        assert_eq!(FeatureSet::All.label(), "All feat");
        assert_eq!(FeatureSet::default(), FeatureSet::All);
    }
}
