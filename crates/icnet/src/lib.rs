//! ICNet: graph deep learning for de-obfuscation runtime prediction.
//!
//! This is the paper's primary contribution (Chen et al., DATE 2020): an
//! end-to-end graph regressor that maps an obfuscated circuit — its topology
//! plus per-gate features (encryption mask ⊕ one-hot gate type) — to the
//! predicted SAT-attack runtime.
//!
//! Three model families share one skeleton (two graph convolutions with
//! ReLU, an aggregation stage, a linear/exponential head) and differ in the
//! graph operator:
//!
//! * [`ModelKind::Gcn`] — Kipf-Welling GCN on the symmetric-normalized
//!   adjacency with self-loops (the paper's GCN baseline, which inherits the
//!   Laplacian smoothness assumption);
//! * [`ModelKind::ChebNet`] — Chebyshev polynomial filters of order `k` on
//!   the scaled Laplacian (Defferrard et al.);
//! * [`ModelKind::ICNet`] — the paper's model: the **raw adjacency matrix**
//!   (plus self-loops) replaces the Laplacian, avoiding label-propagation
//!   smoothing that does not hold for circuits, with learned soft-attention
//!   aggregation over features ([`Aggregation::Nn`]'s `Θfeat`) and gates
//!   (`Θgate`).
//!
//! # Example
//!
//! ```
//! use icnet::{Aggregation, FeatureSet, GraphModel, ModelKind, TrainConfig};
//! use icnet::{encode_features, CircuitGraph};
//! use std::sync::Arc;
//!
//! let circuit = netlist::c17();
//! let graph = CircuitGraph::from_circuit(&circuit);
//! let op = Arc::new(icnet::ModelKind::ICNet.operator(&graph));
//!
//! // Two toy instances: different encryption locations, different runtimes.
//! let sel_a = vec![circuit.find("n10").unwrap()];
//! let sel_b = vec![circuit.find("n22").unwrap(), circuit.find("n23").unwrap()];
//! let xs = vec![
//!     encode_features(&circuit, &sel_a, FeatureSet::All),
//!     encode_features(&circuit, &sel_b, FeatureSet::All),
//! ];
//! let ys = vec![0.5, 1.5];
//!
//! let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 8, 1);
//! let report = icnet::train(&mut model, &op, &xs, &ys, &TrainConfig::quick());
//! assert!(report.final_loss.is_finite());
//! let pred = model.predict(&op, &xs[0]);
//! assert!(pred.is_finite());
//! ```

mod aggregate;
mod batch;
mod checkpoint;
mod features;
mod graph;
mod model;
mod persist;
mod pool_lease;
mod trainer;

pub use aggregate::Aggregation;
pub use batch::BatchedGraph;
pub use features::{encode_features, FeatureSet, NUM_FEATURES_ALL, NUM_FEATURES_LOCATION};
pub use graph::CircuitGraph;
pub use model::{GraphModel, ModelKind, OutputHead};
pub use persist::ParseModelError;
pub use trainer::{
    train, train_with, GradEngine, TrainCheckpointSpec, TrainConfig, TrainControl, TrainReport,
};
