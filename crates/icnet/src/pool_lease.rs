//! A thread-local standing [`BufferPool`] shared by consecutive tapes.
//!
//! One training run recycles buffers across its batches via the pool a tape
//! surrenders on completion — but a *fresh* pool per run still pays the
//! kernel for every large buffer once (mmap plus first-touch page faults),
//! which on short runs rivals the arithmetic itself. The serve loop and the
//! evaluation harness call [`train`](crate::train) and
//! [`GraphModel::predict_batched`](crate::GraphModel) over and over, so the
//! pool is parked in a thread-local between calls: the first run on a thread
//! warms it, every later run allocates nothing on the hot path.
//!
//! Pooling never changes what is computed — buffers only change provenance,
//! and every kernel writing into them is write-once (see
//! [`tensor::BufferPool`]).

use std::cell::RefCell;
use tensor::BufferPool;

thread_local! {
    static STANDING_POOL: RefCell<BufferPool> = RefCell::new(BufferPool::new());
}

/// Exclusive use of the thread's standing pool for the duration of one
/// training or inference call; returns the (grown) pool on drop, including
/// on panic and early-return paths.
///
/// A nested lease on the same thread finds the pool already taken and runs
/// cold — correct, merely unwarmed; the outer lease's buffers win on
/// restore.
pub(crate) struct PoolLease(Option<BufferPool>);

impl PoolLease {
    /// Takes the thread's pool (empty if another lease holds it).
    pub(crate) fn acquire() -> Self {
        PoolLease(Some(
            STANDING_POOL.with(|p| std::mem::take(&mut *p.borrow_mut())),
        ))
    }

    /// The leased pool.
    pub(crate) fn pool(&mut self) -> &mut BufferPool {
        self.0.as_mut().expect("pool present until drop")
    }
}

impl Drop for PoolLease {
    fn drop(&mut self) {
        if let Some(pool) = self.0.take() {
            STANDING_POOL.with(|p| *p.borrow_mut() = pool);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Matrix;

    #[test]
    fn lease_restores_the_pool_on_drop() {
        {
            let mut lease = PoolLease::acquire();
            lease.pool().absorb(Matrix::zeros(64, 64));
        }
        let mut lease = PoolLease::acquire();
        assert_eq!(lease.pool().len(), 1, "buffer survived the first lease");
        let m = lease.pool().alloc(64, 64);
        assert_eq!(m.shape(), (64, 64));
    }

    #[test]
    fn nested_lease_runs_cold_and_outer_restore_wins() {
        let mut outer = PoolLease::acquire();
        outer.pool().absorb(Matrix::zeros(64, 64));
        {
            let mut inner = PoolLease::acquire();
            assert!(inner.pool().is_empty(), "inner lease sees a taken pool");
        }
        drop(outer);
        let mut lease = PoolLease::acquire();
        assert_eq!(lease.pool().len(), 1, "outer pool restored last");
    }
}
