//! Crash-safe training checkpoints.
//!
//! One file per training run, rewritten at the end of every epoch via
//! temp-file + rename, so the file on disk is always a *complete* epoch
//! state: either the rename happened and the new epoch is fully there, or
//! it did not and the previous epoch's file is untouched. The framing
//! mirrors `dataset::checkpoint` v3 — a versioned header and one
//! ` #<crc:016x>` FNV-1a checksum per line — so corruption detection
//! behaves identically across both checkpoint formats.
//!
//! Every float (parameters, ADAM moments, loss history, best loss) is
//! serialized as its IEEE-754 bit pattern in hex. Training resumed from a
//! checkpoint must produce **bit-identical** parameters to an uninterrupted
//! run, and a shortest-round-trip decimal rendering would already be exact
//! for f64 — but bit patterns make the intent auditable and the comparison
//! trivial.
//!
//! A checkpoint is only valid for the exact training run that wrote it:
//! the `fingerprint` line hashes every hyper-parameter that feeds the
//! update sequence (a trajectory-semantics version tag, seed, lr, batch
//! size, tolerance, patience, epoch cap, training-set size, parameter
//! shapes). `jobs` and the gradient engine are deliberately excluded —
//! parallel and batched gradient accumulation are bit-identical to the
//! serial per-instance reference (DESIGN.md §6d/§10), so a run checkpointed
//! at `--jobs 8` may resume at `--jobs 1` and an engine switch is equally
//! safe. The version tag (`v2` since the partial-final-batch weighting fix)
//! changes whenever the update rule itself changes, so checkpoints written
//! under older trajectory semantics are refused loudly instead of silently
//! continuing on a different loss surface.

use crate::trainer::TrainConfig;
use faults::{fnv1a, FNV_OFFSET};
use std::io::Write as _;
use std::path::Path;
use tensor::Matrix;

const MAGIC: &str = "# icnet-train-ckpt v1";

/// Full end-of-epoch training state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TrainCheckpoint {
    /// Hash of the hyper-parameters and shapes this state belongs to.
    pub fingerprint: u64,
    /// Epochs fully completed (the resume point).
    pub epochs_done: usize,
    /// Whether the tolerance criterion fired on the final epoch.
    pub converged: bool,
    /// Consecutive sub-tolerance epochs at checkpoint time.
    pub stall: usize,
    /// Best (lowest) epoch loss seen, as tracked by the loop.
    pub best: f64,
    /// Per-epoch mean training loss so far.
    pub history: Vec<f64>,
    /// Model parameters after `epochs_done` epochs.
    pub params: Vec<Matrix>,
    /// ADAM step count.
    pub adam_t: u64,
    /// ADAM first moments (empty iff no step has run).
    pub adam_m: Vec<Matrix>,
    /// ADAM second moments.
    pub adam_v: Vec<Matrix>,
}

/// Hash of everything that determines the parameter trajectory: the
/// hyper-parameters, the training-set size, and the parameter shapes.
pub(crate) fn fingerprint(config: &TrainConfig, num_instances: usize, params: &[Matrix]) -> u64 {
    let mut text = format!(
        "v2;seed={};lr={:016x};batch={};tol={:016x};patience={};max_epochs={};n={}",
        config.seed,
        config.lr.to_bits(),
        config.batch_size,
        config.tol.to_bits(),
        config.patience,
        config.max_epochs,
        num_instances,
    );
    for p in params {
        text.push_str(&format!(";{}x{}", p.rows(), p.cols()));
    }
    fnv1a(FNV_OFFSET, text.as_bytes())
}

fn push_line(out: &mut String, body: &str) {
    out.push_str(body);
    out.push_str(&format!(" #{:016x}\n", fnv1a(FNV_OFFSET, body.as_bytes())));
}

fn matrix_body(tag: &str, index: usize, m: &Matrix) -> String {
    let mut body = format!("{tag} {index} {} {}", m.rows(), m.cols());
    for v in m.as_slice() {
        body.push_str(&format!(" {:016x}", v.to_bits()));
    }
    body
}

fn render(ckpt: &TrainCheckpoint) -> String {
    let mut out = String::new();
    push_line(&mut out, MAGIC);
    push_line(&mut out, &format!("fingerprint {:016x}", ckpt.fingerprint));
    push_line(
        &mut out,
        &format!(
            "epoch {} {} {} {:016x}",
            ckpt.epochs_done,
            u8::from(ckpt.converged),
            ckpt.stall,
            ckpt.best.to_bits()
        ),
    );
    let mut history = String::from("history");
    for v in &ckpt.history {
        history.push_str(&format!(" {:016x}", v.to_bits()));
    }
    push_line(&mut out, &history);
    for (i, p) in ckpt.params.iter().enumerate() {
        push_line(&mut out, &matrix_body("param", i, p));
    }
    push_line(&mut out, &format!("adam {}", ckpt.adam_t));
    for (i, m) in ckpt.adam_m.iter().enumerate() {
        push_line(&mut out, &matrix_body("adam_m", i, m));
    }
    for (i, v) in ckpt.adam_v.iter().enumerate() {
        push_line(&mut out, &matrix_body("adam_v", i, v));
    }
    out
}

/// Durably replaces the checkpoint at `path` with `ckpt`: full rewrite to a
/// sibling temp file, flush, then atomic rename. A crash at any point
/// leaves either the previous checkpoint or the new one, never a mix.
///
/// # Errors
///
/// Returns a one-line message; the previous checkpoint (if any) survives.
pub(crate) fn save(path: &str, ckpt: &TrainCheckpoint) -> Result<(), String> {
    let describe = |e: std::io::Error| format!("writing training checkpoint `{path}`: {e}");
    let contents = render(ckpt);
    let injected = faults::inject("train.checkpoint");
    if let Some(fault) = &injected {
        match fault.action {
            faults::Action::Io => {
                return Err(format!(
                    "injected fault: train.checkpoint io (occurrence {})",
                    fault.occurrence
                ));
            }
            faults::Action::Torn | faults::Action::Short => {}
            _ => fault.unsupported("train.checkpoint"),
        }
    }
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(describe)?;
        }
    }
    let tmp = format!("{path}.tmp.{}", std::process::id());
    let mut file = std::fs::File::create(&tmp).map_err(describe)?;
    if let Some(fault) = &injected {
        // Simulated crash mid-write: a prefix of the temp file reaches disk
        // and the rename never happens, so the previous checkpoint stays
        // authoritative — this is the torn-write case atomicity exists for.
        let written = match fault.action {
            faults::Action::Torn => contents.len() / 2,
            _ => contents.len().saturating_sub(4),
        };
        file.write_all(&contents.as_bytes()[..written])
            .and_then(|()| file.flush())
            .map_err(describe)?;
        return Err(format!(
            "injected fault: train.checkpoint {} after {written} of {} bytes \
             (occurrence {})",
            fault.action,
            contents.len(),
            fault.occurrence
        ));
    }
    file.write_all(contents.as_bytes()).map_err(describe)?;
    file.flush().map_err(describe)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(describe)
}

/// Loads the checkpoint at `path`. `Ok(None)` when the file does not exist
/// (a fresh run); `Err` when it exists but is unusable — truncated,
/// corrupted, or from a different format version. There is no silent
/// partial recovery here: unlike the append-only dataset log, this file is
/// replaced atomically, so *any* damage means something outside the trainer
/// touched it and resuming from it could silently diverge.
pub(crate) fn load(path: &str) -> Result<Option<TrainCheckpoint>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("reading training checkpoint `{path}`: {e}")),
    };
    parse(&text).map(Some)
}

fn parse(text: &str) -> Result<TrainCheckpoint, String> {
    if !text.ends_with('\n') {
        return Err("truncated file (no final newline)".into());
    }
    let mut bodies = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let (body, crc_field) = line
            .rsplit_once(" #")
            .ok_or_else(|| format!("line {lineno}: missing checksum"))?;
        let crc = u64::from_str_radix(crc_field, 16)
            .map_err(|_| format!("line {lineno}: bad checksum field `{crc_field}`"))?;
        let actual = fnv1a(FNV_OFFSET, body.as_bytes());
        if actual != crc {
            return Err(format!(
                "line {lineno}: checksum mismatch (record says {crc:016x}, \
                 contents hash to {actual:016x})"
            ));
        }
        bodies.push((lineno, body));
    }
    let mut lines = bodies.into_iter();
    let (_, header) = lines.next().ok_or("empty file")?;
    if header != MAGIC {
        return Err(format!("expected header `{MAGIC}`, found `{header}`"));
    }

    let mut fingerprint = None;
    let mut epoch = None;
    let mut history = None;
    let mut adam_t = None;
    let mut params: Vec<Matrix> = Vec::new();
    let mut adam_m: Vec<Matrix> = Vec::new();
    let mut adam_v: Vec<Matrix> = Vec::new();
    for (lineno, body) in lines {
        let at = |msg: String| format!("line {lineno}: {msg}");
        let (tag, rest) = body.split_once(' ').unwrap_or((body, ""));
        match tag {
            "fingerprint" => {
                fingerprint = Some(
                    u64::from_str_radix(rest, 16)
                        .map_err(|_| at(format!("bad fingerprint `{rest}`")))?,
                );
            }
            "epoch" => {
                let fields: Vec<&str> = rest.split(' ').collect();
                if fields.len() != 4 {
                    return Err(at(format!(
                        "epoch line needs 4 fields, has {}",
                        fields.len()
                    )));
                }
                let epochs_done: usize = fields[0]
                    .parse()
                    .map_err(|_| at(format!("bad epoch count `{}`", fields[0])))?;
                let converged = match fields[1] {
                    "0" => false,
                    "1" => true,
                    other => return Err(at(format!("bad converged flag `{other}`"))),
                };
                let stall: usize = fields[2]
                    .parse()
                    .map_err(|_| at(format!("bad stall count `{}`", fields[2])))?;
                let best = f64::from_bits(
                    u64::from_str_radix(fields[3], 16)
                        .map_err(|_| at(format!("bad best-loss bits `{}`", fields[3])))?,
                );
                epoch = Some((epochs_done, converged, stall, best));
            }
            "history" => {
                let values = rest
                    .split(' ')
                    .filter(|f| !f.is_empty())
                    .map(|f| {
                        u64::from_str_radix(f, 16)
                            .map(f64::from_bits)
                            .map_err(|_| at(format!("bad history bits `{f}`")))
                    })
                    .collect::<Result<Vec<f64>, String>>()?;
                history = Some(values);
            }
            "adam" => {
                adam_t = Some(
                    rest.parse::<u64>()
                        .map_err(|_| at(format!("bad adam step count `{rest}`")))?,
                );
            }
            "param" | "adam_m" | "adam_v" => {
                let (index, matrix) = parse_matrix(rest).map_err(at)?;
                let list = match tag {
                    "param" => &mut params,
                    "adam_m" => &mut adam_m,
                    _ => &mut adam_v,
                };
                if index != list.len() {
                    return Err(at(format!(
                        "{tag} index {index} out of order (expected {})",
                        list.len()
                    )));
                }
                list.push(matrix);
            }
            other => return Err(at(format!("unknown record tag `{other}`"))),
        }
    }

    let fingerprint = fingerprint.ok_or("missing fingerprint record")?;
    let (epochs_done, converged, stall, best) = epoch.ok_or("missing epoch record")?;
    let history = history.ok_or("missing history record")?;
    let adam_t = adam_t.ok_or("missing adam record")?;
    if params.is_empty() {
        return Err("missing param records".into());
    }
    if adam_m.len() != adam_v.len() {
        return Err(format!(
            "adam moment count mismatch: {} first vs {} second",
            adam_m.len(),
            adam_v.len()
        ));
    }
    Ok(TrainCheckpoint {
        fingerprint,
        epochs_done,
        converged,
        stall,
        best,
        history,
        params,
        adam_t,
        adam_m,
        adam_v,
    })
}

fn parse_matrix(rest: &str) -> Result<(usize, Matrix), String> {
    let mut fields = rest.split(' ').filter(|f| !f.is_empty());
    let mut num = |name: &str| -> Result<usize, String> {
        let field = fields.next().ok_or_else(|| format!("missing {name}"))?;
        field.parse().map_err(|_| format!("bad {name} `{field}`"))
    };
    let index = num("matrix index")?;
    let rows = num("row count")?;
    let cols = num("column count")?;
    let data = fields
        .map(|f| {
            u64::from_str_radix(f, 16)
                .map(f64::from_bits)
                .map_err(|_| format!("bad value bits `{f}`"))
        })
        .collect::<Result<Vec<f64>, String>>()?;
    if data.len() != rows * cols {
        return Err(format!(
            "matrix {index} has {} values for a {rows}x{cols} shape",
            data.len()
        ));
    }
    Ok((index, Matrix::from_vec(rows, cols, data)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainCheckpoint {
        TrainCheckpoint {
            fingerprint: 0xDEAD_BEEF,
            epochs_done: 7,
            converged: false,
            stall: 2,
            best: 0.125,
            history: vec![1.5, 0.5, 0.125],
            params: vec![
                Matrix::from_vec(2, 2, vec![1.0, -2.5, 0.0, f64::MIN_POSITIVE]),
                Matrix::from_vec(1, 3, vec![3.0, 4.0, 5.0]),
            ],
            adam_t: 21,
            adam_m: vec![
                Matrix::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]),
                Matrix::from_vec(1, 3, vec![0.5, 0.6, 0.7]),
            ],
            adam_v: vec![
                Matrix::from_vec(2, 2, vec![0.01, 0.02, 0.03, 0.04]),
                Matrix::from_vec(1, 3, vec![0.05, 0.06, 0.07]),
            ],
        }
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("icnet_train_ckpt_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path.display().to_string()
    }

    #[test]
    fn round_trips_bit_exactly() {
        let path = tmp("roundtrip.ckpt");
        let ckpt = sample();
        save(&path, &ckpt).unwrap();
        let loaded = load(&path).unwrap().expect("file exists");
        assert_eq!(loaded, ckpt);
    }

    #[test]
    fn absent_file_is_a_fresh_run() {
        assert_eq!(load(&tmp("absent.ckpt")).unwrap(), None);
    }

    #[test]
    fn save_replaces_atomically() {
        let path = tmp("replace.ckpt");
        let mut ckpt = sample();
        save(&path, &ckpt).unwrap();
        ckpt.epochs_done = 8;
        ckpt.history.push(0.1);
        save(&path, &ckpt).unwrap();
        assert_eq!(load(&path).unwrap().unwrap().epochs_done, 8);
    }

    #[test]
    fn non_finite_floats_survive_the_round_trip() {
        let path = tmp("nonfinite.ckpt");
        let mut ckpt = sample();
        ckpt.best = f64::INFINITY;
        save(&path, &ckpt).unwrap();
        assert_eq!(load(&path).unwrap().unwrap().best, f64::INFINITY);
    }

    #[test]
    fn flipped_byte_is_loudly_rejected() {
        let path = tmp("flipped.ckpt");
        save(&path, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a digit inside the epoch record's body.
        let text = String::from_utf8(bytes.clone()).unwrap();
        let target = text.find("epoch ").unwrap() + 6;
        bytes[target] = if bytes[target] == b'7' { b'8' } else { b'7' };
        std::fs::write(&path, bytes).unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn truncation_is_loudly_rejected() {
        let path = tmp("truncated.ckpt");
        save(&path, &sample()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 9]).unwrap();
        assert!(load(&path).is_err());
    }

    #[test]
    fn wrong_header_is_rejected() {
        let path = tmp("header.ckpt");
        let body = "# some-other-format v9";
        std::fs::write(
            &path,
            format!("{body} #{:016x}\n", fnv1a(FNV_OFFSET, body.as_bytes())),
        )
        .unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.contains("expected header"), "{err}");
    }

    #[test]
    fn fingerprint_tracks_hypers_and_shapes_but_not_jobs() {
        let config = TrainConfig::quick();
        let params = sample().params;
        let base = fingerprint(&config, 32, &params);
        assert_eq!(base, fingerprint(&config, 32, &params), "deterministic");

        let mut jobs = config.clone();
        jobs.jobs = 8;
        assert_eq!(
            base,
            fingerprint(&jobs, 32, &params),
            "parallel training is bit-identical to serial, so jobs must not invalidate"
        );

        let mut engine = config.clone();
        engine.engine = crate::trainer::GradEngine::PerInstance;
        assert_eq!(
            base,
            fingerprint(&engine, 32, &params),
            "the engines are bit-identical, so switching must not invalidate"
        );

        let mut seeded = config.clone();
        seeded.seed += 1;
        assert_ne!(base, fingerprint(&seeded, 32, &params));
        let mut lr = config.clone();
        lr.lr *= 2.0;
        assert_ne!(base, fingerprint(&lr, 32, &params));
        assert_ne!(base, fingerprint(&config, 33, &params));
        assert_ne!(base, fingerprint(&config, 32, &params[..1]));
    }
}
